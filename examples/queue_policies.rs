//! Local batch-system queue policies side by side (§5).
//!
//! Runs the same random job stream through one cluster under FCFS, LWF,
//! EASY backfilling and conservative backfilling — with and without an
//! advance reservation — and prints mean waits and start-forecast errors.
//!
//! Run with: `cargo run --example queue_policies`

use gridsched::batch::cluster::{AdvanceReservation, ClusterConfig};
use gridsched::batch::policy::QueuePolicy;
use gridsched::metrics::table::{ratio, Table};
use gridsched::model::window::TimeWindow;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::batch::{generate_batch_jobs, BatchWorkloadConfig};

fn main() {
    let capacity = 8;
    let workload = BatchWorkloadConfig {
        jobs: 300,
        width_max: 6,
        ..BatchWorkloadConfig::default()
    };
    let mut rng = SimRng::seed_from(42);
    let jobs = generate_batch_jobs(&workload, &mut rng);
    println!(
        "cluster of {capacity} nodes, {} jobs (widths 1..={}, user estimates 2-3x spread)",
        jobs.len(),
        workload.width_max
    );

    let mut table = Table::new(vec![
        "policy",
        "mean wait",
        "wait + reservation",
        "forecast error",
        "makespan",
    ]);
    for policy in QueuePolicy::ALL {
        let plain = ClusterConfig::new(capacity, policy).run(&jobs);
        // Same cluster with a recurring advance reservation taking half the
        // nodes for 20 ticks every 100 ticks.
        let mut reserved_cfg = ClusterConfig::new(capacity, policy);
        for k in 0..20u64 {
            reserved_cfg.reserve(AdvanceReservation {
                window: TimeWindow::new(
                    SimTime::from_ticks(50 + 100 * k),
                    SimTime::from_ticks(70 + 100 * k),
                )
                .expect("valid window"),
                width: capacity / 2,
            });
        }
        let reserved = reserved_cfg.run(&jobs);
        table.row(vec![
            policy.name().to_owned(),
            ratio(plain.mean_wait()),
            ratio(reserved.mean_wait()),
            ratio(plain.mean_forecast_error()),
            plain.makespan().to_string(),
        ]);
    }
    println!("\n{table}");

    // Gang scheduling (also named in §5) time-shares instead of
    // space-sharing, so it runs through its own simulator.
    let gang = gridsched::batch::gang::run_gang(
        gridsched::batch::gang::GangConfig::new(
            capacity,
            gridsched::sim::time::SimDuration::from_ticks(5),
        ),
        &jobs,
    );
    let gang_wait: f64 =
        gang.iter().map(|o| o.wait().ticks() as f64).sum::<f64>() / gang.len() as f64;
    println!("GANG (quantum 5): mean wait until first quantum = {gang_wait:.2}");
    println!(
        "\nobservations: backfilling cuts waiting versus FCFS; advance\n\
         reservations lengthen queues under every policy; gang scheduling\n\
         bounds the time to first service by time-slicing (§5)."
    );
}
