//! The online serving layer end to end: streamed arrivals, deadline-aware
//! admission control, incremental replanning.
//!
//! Runs one instrumented online campaign — Poisson arrivals paced by a
//! seeded arrival process, each probed for deadline feasibility before
//! its full strategy sweep runs — and prints the admission stories, the
//! queue-wait histogram and the online QoS counters.
//!
//! Run with: `cargo run --example online_serving`

use gridsched::flow::online::{run_online_instrumented, AdmissionOutcome, OnlineConfig};
use gridsched::flow::simulation::CampaignConfig;
use gridsched::metrics::table::Table;
use gridsched::metrics::telemetry::Telemetry;
use gridsched::workload::arrivals::ArrivalProcess;

fn main() {
    let config = OnlineConfig {
        base: CampaignConfig {
            jobs: 25,
            perturbations: 20,
            collect_trace: true,
            seed: 42,
            ..CampaignConfig::default()
        },
        arrivals: ArrivalProcess::Poisson { rate: 0.1 },
        queue_capacity: 6,
        ..OnlineConfig::default()
    };
    let telemetry = Telemetry::new();
    let report = run_online_instrumented(&config, &telemetry);

    // 1. Per-arrival admission stories.
    let mut t = Table::new(vec!["job", "arrival", "outcome", "probes"]);
    for a in &report.admission {
        let outcome = match a.outcome {
            AdmissionOutcome::Admitted { at } if at > a.arrival => {
                format!(
                    "admitted at {at} (waited {})",
                    at.saturating_since(a.arrival)
                )
            }
            AdmissionOutcome::Admitted { .. } => "admitted on arrival".to_owned(),
            AdmissionOutcome::Rejected { at, reason } => {
                format!("rejected at {at} ({reason})")
            }
            AdmissionOutcome::Deferred => "still queued at horizon".to_owned(),
        };
        t.row(vec![
            a.job_id.to_string(),
            a.arrival.to_string(),
            outcome,
            a.probes.to_string(),
        ]);
    }
    println!("admission stories (seed {}):\n{t}", config.base.seed);

    // 2. The aggregate summary and its conservation law.
    let s = report.summary;
    println!(
        "arrived {} = admitted {} + rejected {} + deferred {}  (reconciles: {})",
        s.arrived,
        s.admitted,
        s.rejected,
        s.deferred,
        report.counters_reconcile()
    );
    println!(
        "probes {}, incremental replans {}, queue peak {}/{}",
        s.probes, s.incremental_replans, s.queue_peak, config.queue_capacity
    );
    if let Some(p50) = report.queue_wait.quantile(0.5) {
        println!("queue wait p50: {p50:.0} ticks");
    }

    // 3. The online QoS counters, straight from telemetry.
    let snapshot = telemetry.snapshot();
    println!("\nonline QoS counters:");
    for (name, value) in snapshot.counters() {
        if matches!(
            *name,
            "jobs_arrived"
                | "jobs_admitted"
                | "jobs_rejected"
                | "admission_probes"
                | "queue_peak_depth"
                | "incremental_replans"
        ) {
            println!("  {name:<22} {value}");
        }
    }

    // 4. The campaign beneath behaves like any other: drops, breaks and
    // completions are all in the trace, and the oracle has already
    // audited it in debug builds.
    println!(
        "\ncampaign: {} records, admissible share {:.2}, drop share {:.2}",
        report.report.records.len(),
        report.report.admissible_share(),
        report.report.drop_share()
    );
}
