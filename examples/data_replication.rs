//! The data-grid substrate on its own: replica catalogs and access costs.
//!
//! Walks a produced dataset through the three data policies of §4 and
//! shows how an active replica catalog turns expensive cross-domain reads
//! into cheap local ones — the effect behind strategy S1's behaviour.
//!
//! Run with: `cargo run --example data_replication`

use gridsched::data::catalog::ReplicaCatalog;
use gridsched::data::network::TransferModel;
use gridsched::data::policy::DataPolicy;
use gridsched::metrics::table::Table;
use gridsched::model::ids::{DataId, DomainId, NodeId};
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::model::volume::Volume;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three domains, three nodes each.
    let mut pool = ResourcePool::new();
    for d in 0..3u32 {
        for p in [1.0, 0.66, 0.33] {
            pool.add_node(DomainId::new(d), Perf::new(p)?);
        }
    }
    let model = TransferModel::default();
    let producer = NodeId::new(0); // domain 0
    let dataset = DataId::new(42);
    let volume = Volume::new(15.0);

    // 1. Per-policy consumer delays for a cross-domain read.
    let consumer = NodeId::new(4); // domain 1
    let mut t = Table::new(vec!["policy", "consumer delay (ticks)", "network traffic"]);
    for policy in [
        DataPolicy::active_replication(),
        DataPolicy::remote_access(),
        DataPolicy::static_storage(producer),
    ] {
        t.row(vec![
            policy.to_string(),
            policy
                .consumer_delay(volume, producer, consumer, &pool)
                .ticks()
                .to_string(),
            policy
                .network_traffic(volume, producer, consumer, &pool)
                .to_string(),
        ]);
    }
    println!("cross-domain read of {volume} produced on {producer}:\n{t}");

    // 2. The replica catalog: reads get cheaper as replicas spread.
    let mut catalog = ReplicaCatalog::new();
    catalog.register(dataset, producer);
    println!("catalog: dataset {dataset} produced on {producer}");
    let reader = NodeId::new(7); // domain 2
    let mut t = Table::new(vec!["replicas", "best source", "read time"]);
    for step in 0..3 {
        let (src, time) = catalog
            .best_source(dataset, volume, reader, &pool, &model)
            .expect("dataset is registered");
        t.row(vec![
            catalog.replica_count(dataset).to_string(),
            src.to_string(),
            time.to_string(),
        ]);
        // Active replication pushes a copy into another domain each round.
        match step {
            0 => {
                catalog.register(dataset, NodeId::new(3)); // domain 1
            }
            1 => {
                catalog.register(dataset, NodeId::new(8)); // reader's domain
            }
            _ => {}
        }
    }
    println!("reads from {reader} as replication spreads copies:\n{t}");
    println!(
        "replicas created over the catalog's lifetime: {}",
        catalog.replicas_created()
    );
    Ok(())
}
