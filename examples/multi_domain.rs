//! The hierarchy at work (§2, Fig. 1): a metascheduler over three node
//! domains, each with its own job manager, and a job-flow campaign whose
//! dynamics force an inter-domain migration.
//!
//! An outage-heavy fault plan kills nodes with started tasks; the
//! reallocation mechanism restarts those tasks elsewhere, and when the
//! re-placed schedule's reserved ticks land mostly in another domain the
//! metascheduler re-homes the job — a `Migrated { from, to }` trace event
//! and a hand-off between the two domains' job managers.
//!
//! Run with: `cargo run --example multi_domain`

use gridsched::flow::faults::FaultConfig;
use gridsched::flow::simulation::{run_campaign_instrumented, CampaignConfig};
use gridsched::flow::trace::CampaignEvent;
use gridsched::metrics::telemetry::Telemetry;
use gridsched::workload::pool::PoolConfig;

fn main() {
    // The outage-heavy configuration of the hierarchy test-suite; seed 26
    // is the first in 0.. whose migration actually crosses domains.
    let config = CampaignConfig {
        jobs: 15,
        perturbations: 25,
        pool_config: PoolConfig {
            domains: 3,
            ..PoolConfig::default()
        },
        faults: FaultConfig {
            outages: 14,
            outage_len: (8, 20),
            ..FaultConfig::none()
        },
        collect_trace: true,
        seed: 26,
        ..CampaignConfig::default()
    };

    let telemetry = Telemetry::new();
    let report = run_campaign_instrumented(&config, &telemetry);

    println!("multi_domain: {} jobs over 3 node domains\n", config.jobs);

    println!("per-domain summary (final homes):");
    println!("  domain  jobs  breaks  migrations  dropped");
    for stat in report.domain_summary() {
        println!(
            "  {:>6}  {:>4}  {:>6}  {:>10}  {:>7}",
            stat.domain.to_string(),
            stat.jobs,
            stat.breaks,
            stat.migrations,
            stat.dropped
        );
    }

    let trace = report.trace.as_ref().expect("trace collected");
    println!("\nmigrations (restarts off dead nodes):");
    let mut cross_domain = 0;
    for (at, event) in trace.events() {
        if let CampaignEvent::Migrated { job, from, to } = event {
            if from == to {
                println!("  t{:>4}  {job} restarted within {from}", at.ticks());
            } else {
                cross_domain += 1;
                println!(
                    "  t{:>4}  {job} re-homed {from} -> {to} (manager hand-off)",
                    at.ticks()
                );
            }
        }
    }
    assert!(cross_domain > 0, "seed 26 must migrate across domains");

    println!("\ndomain-labeled telemetry (activated / breaks / migrations):");
    let snapshot = telemetry.snapshot();
    for &domain in snapshot.domains().keys() {
        println!(
            "  domain {domain}: {} / {} / {}",
            snapshot.domain_counter(domain, "jobs_activated"),
            snapshot.domain_counter(domain, "schedule_breaks"),
            snapshot.domain_counter(domain, "migrations"),
        );
    }

    println!(
        "\ncampaign totals: {} activated, {} breaks, {} migrations, {} dropped",
        report.records.iter().filter(|r| r.admissible).count(),
        report.records.iter().map(|r| r.breaks).sum::<usize>(),
        report.migration_count(),
        report.records.iter().filter(|r| r.dropped).count(),
    );
}
