//! Quickstart: schedule a compound job on a heterogeneous pool.
//!
//! Builds a small fork-join job, generates an S2 (remote-data-access)
//! strategy with the critical works method, and prints every supporting
//! schedule with its cost, makespan and per-task placements.
//!
//! Run with: `cargo run --example quickstart`

use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::model::ids::{DomainId, JobId};
use gridsched::model::job::JobBuilder;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::model::volume::Volume;
use gridsched::sim::time::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A virtual organization with two domains and mixed node speeds.
    let mut pool = ResourcePool::new();
    for (domain, perf) in [(0, 1.0), (0, 0.8), (0, 0.5), (1, 0.66), (1, 0.4), (1, 0.33)] {
        pool.add_node(DomainId::new(domain), Perf::new(perf)?);
    }
    println!("pool:");
    for node in pool.nodes() {
        println!("  {node}");
    }

    // A five-task fork-join job: prepare -> {analyze-a, analyze-b} ->
    // merge -> report, with a 40-tick completion deadline.
    let mut builder = JobBuilder::new();
    let prepare = builder.add_task(Volume::new(20.0));
    let analyze_a = builder.add_task(Volume::new(40.0));
    let analyze_b = builder.add_task(Volume::new(30.0));
    let merge = builder.add_task(Volume::new(10.0));
    let report = builder.add_task(Volume::new(20.0));
    builder.add_edge(prepare, analyze_a, Volume::new(5.0));
    builder.add_edge(prepare, analyze_b, Volume::new(5.0));
    builder.add_edge(analyze_a, merge, Volume::new(10.0));
    builder.add_edge(analyze_b, merge, Volume::new(10.0));
    builder.add_edge(merge, report, Volume::new(5.0));
    builder.deadline(SimDuration::from_ticks(40));
    let job = builder.build(JobId::new(0))?;
    println!("\njob: {job}");

    // Generate the strategy: one supporting schedule per estimation
    // scenario that fits the deadline.
    let config = StrategyConfig::for_kind(StrategyKind::S2, &pool);
    let strategy = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
    println!(
        "\nstrategy {}: admissible = {}, coverage = {:.0}%",
        strategy.kind(),
        strategy.is_admissible(),
        strategy.coverage() * 100.0
    );
    for dist in strategy.distributions() {
        println!("\n  {dist}");
        for p in dist.placements() {
            println!("    {p}");
        }
    }
    if let Some(best) = strategy.best_by_cost() {
        println!(
            "\ncheapest supporting schedule: CF = {} quota units, done by {}",
            best.cost(),
            best.makespan()
        );
    }
    Ok(())
}
