//! Dynamic reallocation (§2): what happens when a resource is taken away
//! from an active schedule.
//!
//! Builds a schedule for the paper's Fig. 2 job, lets an independent local
//! job seize a reserved node mid-plan, and shows the job manager replanning
//! the not-yet-started tasks around the ones already running — the paper's
//! "special reallocation mechanism".
//!
//! Run with: `cargo run --example reallocation`

use std::collections::HashMap;

use gridsched::core::gantt::render_gantt;
use gridsched::core::method::{build_distribution, reschedule_with_deadline, ScheduleRequest};
use gridsched::data::policy::DataPolicy;
use gridsched::model::estimate::EstimateScenario;
use gridsched::model::fixtures::fig2_job_with_deadline;
use gridsched::model::ids::{DomainId, GlobalTaskId};
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::model::timetable::ReservationOwner;
use gridsched::model::window::TimeWindow;
use gridsched::sim::time::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let job = fig2_job_with_deadline(SimDuration::from_ticks(40));
    let mut pool = ResourcePool::new();
    for j in 1..=4u32 {
        pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
    }
    let policy = DataPolicy::remote_access();

    // 1. Plan and activate.
    let plan = build_distribution(&ScheduleRequest {
        job: &job,
        pool: &pool,
        policy: &policy,
        scenario: EstimateScenario::BEST,
        release: SimTime::ZERO,
    })?;
    println!(
        "activated schedule (CF = {}, makespan {}):",
        plan.cost(),
        plan.makespan()
    );
    print!("{}", render_gantt(&plan, &pool));
    for p in plan.placements() {
        pool.timetable_mut(p.node).reserve(
            p.window,
            ReservationOwner::Task(GlobalTaskId {
                job: job.id(),
                task: p.task,
            }),
        )?;
    }

    // 2. At t = 4, an independent local job seizes the node hosting the
    //    latest-starting pending task for 10 ticks.
    let break_time = SimTime::from_ticks(4);
    let victim = plan
        .placements()
        .iter()
        .filter(|p| p.window.start() > break_time)
        .max_by_key(|p| p.window.start())
        .expect("some task is still pending at t4");
    println!(
        "\nat {break_time}: an independent job wants {} — task {}'s reservation is revoked",
        victim.node, victim.task
    );

    // Release every pending reservation (the local rules favour the
    // resource owner), then hand the node to the independent job.
    let mut fixed = HashMap::new();
    for p in plan.placements() {
        if p.window.start() > break_time {
            pool.timetable_mut(p.node)
                .release_owned_by(ReservationOwner::Task(GlobalTaskId {
                    job: job.id(),
                    task: p.task,
                }));
        } else {
            fixed.insert(p.task, *p);
        }
    }
    let seized = TimeWindow::starting_at(break_time, SimDuration::from_ticks(10))?;
    pool.timetable_mut(victim.node)
        .reserve(seized, ReservationOwner::Background(0))?;
    println!(
        "kept {} started task(s): {:?}",
        fixed.len(),
        fixed.keys().map(ToString::to_string).collect::<Vec<_>>()
    );

    // 3. Replan the remaining tasks from the break instant, keeping the
    //    original absolute deadline.
    let replanned = reschedule_with_deadline(
        &ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: break_time,
        },
        &fixed,
        SimTime::ZERO.saturating_add(job.deadline()),
    )?;
    println!(
        "\nreplanned schedule (CF = {}, makespan {}):",
        replanned.cost(),
        replanned.makespan()
    );
    print!("{}", render_gantt(&replanned, &pool));
    println!(
        "\nthe job still meets its deadline of t{}: {}",
        job.deadline().ticks(),
        replanned.meets_deadline(SimTime::ZERO.saturating_add(job.deadline()))
    );
    Ok(())
}
