//! A mixed-flow virtual-organization campaign.
//!
//! The metascheduler of §2 (Fig. 1) distributes user jobs between strategy
//! flows: here, large jobs join a coarse-grain S3 flow and small jobs a
//! fine-grain S2 flow, while the environment perturbs schedules with
//! independent local load. Prints per-flow QoS factors.
//!
//! Run with: `cargo run --release --example vo_campaign`
//!
//! Pass `--telemetry` to additionally record the hierarchical span tree
//! and QoS event counters of the run, print the phase-breakdown table and
//! write `TELEMETRY_vo_campaign.json` / `TELEMETRY_vo_campaign.prom`.

use gridsched::core::strategy::StrategyKind;
use gridsched::flow::metascheduler::FlowAssignment;
use gridsched::flow::simulation::{run_campaign_instrumented, CampaignConfig};
use gridsched::metrics::table::{pct, ratio, Table};
use gridsched::metrics::telemetry::Telemetry;
use gridsched::model::perf::PerfGroup;

fn main() {
    let telemetry = if std::env::args().any(|a| a == "--telemetry") {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let config = CampaignConfig {
        assignment: FlowAssignment::BySize {
            threshold: 7,
            large: StrategyKind::S3,
            small: StrategyKind::S2,
        },
        jobs: 120,
        perturbations: 150,
        seed: 2009,
        collect_trace: true,
        ..CampaignConfig::default()
    };
    println!(
        "campaign: {} jobs, horizon {}, seed {}",
        config.jobs, config.horizon, config.seed
    );
    let report = run_campaign_instrumented(&config, &telemetry);

    let mut per_flow = Table::new(vec![
        "flow",
        "jobs",
        "admissible %",
        "mean CF",
        "mean task window",
        "mean TTL",
        "breaks",
        "dropped",
    ]);
    for kind in [StrategyKind::S3, StrategyKind::S2] {
        let records: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.strategy == kind)
            .collect();
        if records.is_empty() {
            continue;
        }
        let admissible =
            records.iter().filter(|r| r.admissible).count() as f64 / records.len() as f64;
        let mean = |f: &dyn Fn(&&&gridsched::flow::report::JobRecord) -> Option<f64>| -> f64 {
            let vals: Vec<f64> = records.iter().filter_map(|r| f(&r)).collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        per_flow.row(vec![
            kind.name().to_owned(),
            records.len().to_string(),
            pct(admissible),
            ratio(mean(&|r| r.cost.map(|c| c as f64))),
            ratio(mean(&|r| r.mean_task_window)),
            ratio(mean(&|r| r.time_to_live.map(|t| t.ticks() as f64))),
            records.iter().map(|r| r.breaks).sum::<usize>().to_string(),
            records.iter().filter(|r| r.dropped).count().to_string(),
        ]);
    }
    println!("\nper-flow QoS factors:\n{per_flow}");

    println!("task load by node group (share of the horizon):");
    for group in PerfGroup::ALL {
        println!("  {group:<6} {}", pct(report.load_level(group)));
    }
    if let Some(fast) = report.fast_collision_share() {
        println!(
            "\ncollisions: {} total, {}% on fast nodes",
            report.total_collisions(),
            pct(fast)
        );
    }

    if let Some(trace) = &report.trace {
        println!("\nfirst campaign events:");
        for (t, e) in trace.events().iter().take(8) {
            println!("  {t:>6} {e}");
        }
        println!("  … {} events total", trace.len());
    }

    if telemetry.is_enabled() {
        let snapshot = telemetry.snapshot();
        println!("\ntelemetry phase breakdown:\n{}", snapshot.phase_table());
        println!("QoS event counters:");
        for (name, value) in snapshot.counters() {
            if *value > 0 {
                println!("  {name:<28} {value}");
            }
        }
        std::fs::write("TELEMETRY_vo_campaign.json", snapshot.to_json())
            .expect("write TELEMETRY_vo_campaign.json");
        std::fs::write("TELEMETRY_vo_campaign.prom", snapshot.to_prometheus())
            .expect("write TELEMETRY_vo_campaign.prom");
        println!("\nwrote TELEMETRY_vo_campaign.json and TELEMETRY_vo_campaign.prom");
    }
}
