//! The paper's worked example (Fig. 2): the six-task job `P1..P6` on four
//! node types, its critical works, and a strategy fragment.
//!
//! Reproduces §3's narrative:
//! - the four critical works of lengths 12, 11, 10 and 9 time units;
//! - supporting schedules with their cost functions (the cheapest
//!   distribution spreads tasks over slower nodes, matching the paper's
//!   `CF2 = 37 < CF1 = CF3 = 41` ordering);
//! - the collision between tasks of different critical works competing for
//!   one node, and its resolution.
//!
//! Run with: `cargo run --example paper_fig2`

use gridsched::core::chains::ranked_maximal_paths;
use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::model::fixtures::fig2_job;
use gridsched::model::ids::DomainId;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::sim::time::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let job = fig2_job();
    println!("Fig. 2a job: {job}");
    println!("tasks (0-based ids; the paper's P1..P6):");
    for task in job.tasks() {
        println!(
            "  {task}: T on node types 1..4 = {:?}",
            (1..=4u32)
                .map(|j| job
                    .task(task.id())
                    .duration_on(Perf::new(1.0 / f64::from(j)).expect("valid"))
                    .ticks())
                .collect::<Vec<_>>()
        );
    }

    // The paper's four node types: relative performance 1, 1/2, 1/3, 1/4.
    let mut pool = ResourcePool::new();
    for j in 1..=4u32 {
        pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
    }

    // §3: "there are four critical works 12, 11, 10, and 9 time units long
    // (including data transfer time) on fastest processor nodes".
    println!("\ncritical works (maximal chains, longest first):");
    let paths = ranked_maximal_paths(
        &job,
        |t| job.task(t).duration_on(Perf::FULL),
        |e| SimDuration::from_ticks((e.volume().units() / 5.0).ceil() as u64),
        16,
    );
    for p in &paths {
        let names: Vec<String> = p.tasks.iter().map(|t| format!("{t}")).collect();
        println!("  {} ({} time units)", names.join("-"), p.length.ticks());
    }

    // Build the strategy fragment: supporting schedules under the S2
    // configuration (remote data access, full scenario sweep).
    let config = StrategyConfig::for_kind(StrategyKind::S2, &pool);
    let strategy = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
    println!("\nstrategy fragment (deadline 20, as in Fig. 2b):");
    for (i, dist) in strategy.distributions().iter().enumerate() {
        println!(
            "  Distribution {}: CF{} = {}, makespan {}",
            i + 1,
            i + 1,
            dist.cost(),
            dist.makespan()
        );
        for p in dist.placements() {
            println!("    {}/{} {}", p.task, p.node, p.window);
        }
        for c in dist.collisions() {
            println!("    {c} -> resolved by reallocation");
        }
    }

    let cheapest = strategy
        .best_by_cost()
        .expect("fig2 strategy is admissible");
    println!(
        "\ncheapest schedule costs CF = {} — like the paper's Distribution 2, \
         it trades fast nodes for cheaper, slower ones within the deadline.",
        cheapest.cost()
    );
    println!("\nGantt chart of the cheapest schedule (cf. Fig. 2b):");
    print!("{}", gridsched::core::gantt::render_gantt(cheapest, &pool));
    Ok(())
}
