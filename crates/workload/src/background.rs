//! Background load from independent job flows.
//!
//! The paper's admissibility experiment (Fig. 3a) builds application-level
//! schedules "for available resources non-assigned to other independent
//! jobs": the other flows appear as pre-existing reservations on the node
//! timetables. This module paints such load onto a pool.

use gridsched_model::node::ResourcePool;
use gridsched_model::timetable::ReservationOwner;
use gridsched_model::window::TimeWindow;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

/// Configuration of random background load.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundConfig {
    /// Target utilization of each node over the horizon, in `[0, 1)`.
    pub load: f64,
    /// Horizon over which load is painted.
    pub horizon: SimDuration,
    /// Minimum busy-chunk length in ticks.
    pub chunk_min: u64,
    /// Maximum busy-chunk length in ticks.
    pub chunk_max: u64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            load: 0.5,
            horizon: SimDuration::from_ticks(200),
            chunk_min: 3,
            chunk_max: 12,
        }
    }
}

impl BackgroundConfig {
    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.load),
            "background load must be in [0, 1), got {}",
            self.load
        );
        assert!(
            self.chunk_min >= 1 && self.chunk_min <= self.chunk_max,
            "invalid chunk range [{}, {}]",
            self.chunk_min,
            self.chunk_max
        );
        assert!(!self.horizon.is_zero(), "horizon must be positive");
    }
}

/// Paints random busy windows onto every node of `pool` until each node's
/// utilization over the horizon reaches approximately `config.load`.
///
/// Returns the number of reservations placed.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn apply_background_load(
    pool: &mut ResourcePool,
    config: &BackgroundConfig,
    rng: &mut SimRng,
) -> usize {
    config.validate();
    let horizon_end = SimTime::ZERO + config.horizon;
    let range = TimeWindow::new(SimTime::ZERO, horizon_end).expect("positive horizon");
    let mut placed = 0;
    let node_ids: Vec<_> = pool.nodes().map(|n| n.id()).collect();
    let mut tag = 0u64;
    for id in node_ids {
        let target = config.horizon.ticks() as f64 * config.load;
        let mut busy = 0.0;
        // Random placement with bounded retries: collisions with already
        // painted chunks are simply skipped.
        let mut attempts = 0;
        while busy < target && attempts < 10_000 {
            attempts += 1;
            let len = rng.uniform_u64(config.chunk_min, config.chunk_max);
            let latest_start = config.horizon.ticks().saturating_sub(len);
            if latest_start == 0 && len > config.horizon.ticks() {
                break;
            }
            let start = rng.uniform_u64(0, latest_start);
            let window =
                TimeWindow::new(SimTime::from_ticks(start), SimTime::from_ticks(start + len))
                    .expect("len >= 1");
            if pool
                .timetable_mut(id)
                .reserve(window, ReservationOwner::Background(tag))
                .is_ok()
            {
                busy += len as f64;
                placed += 1;
                tag += 1;
            }
        }
        debug_assert!(pool.timetable(id).utilization(range) <= 1.0);
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;

    fn pool(n: usize) -> ResourcePool {
        let mut pool = ResourcePool::new();
        for _ in 0..n {
            pool.add_node(DomainId::new(0), Perf::FULL);
        }
        pool
    }

    #[test]
    fn reaches_target_load_approximately() {
        let mut pool = pool(5);
        let cfg = BackgroundConfig::default();
        let mut rng = SimRng::seed_from(1);
        apply_background_load(&mut pool, &cfg, &mut rng);
        let range = TimeWindow::new(SimTime::ZERO, SimTime::ZERO + cfg.horizon).unwrap();
        for node in pool.nodes() {
            let u = pool.timetable(node.id()).utilization(range);
            assert!(
                (cfg.load - 0.05..=cfg.load + 0.1).contains(&u),
                "node {} utilization {u} far from target {}",
                node.id(),
                cfg.load
            );
        }
    }

    #[test]
    fn zero_load_paints_nothing() {
        let mut pool = pool(3);
        let cfg = BackgroundConfig {
            load: 0.0,
            ..BackgroundConfig::default()
        };
        let placed = apply_background_load(&mut pool, &cfg, &mut SimRng::seed_from(2));
        assert_eq!(placed, 0);
    }

    #[test]
    fn reservations_never_overlap() {
        let mut pool = pool(2);
        let cfg = BackgroundConfig {
            load: 0.8,
            ..BackgroundConfig::default()
        };
        apply_background_load(&mut pool, &cfg, &mut SimRng::seed_from(3));
        for node in pool.nodes() {
            let tt = pool.timetable(node.id());
            let windows: Vec<_> = tt.iter().map(|r| r.window()).collect();
            for (i, a) in windows.iter().enumerate() {
                for b in &windows[i + 1..] {
                    assert!(!a.overlaps(*b), "{a} overlaps {b}");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BackgroundConfig::default();
        let mut a = pool(4);
        let mut b = pool(4);
        apply_background_load(&mut a, &cfg, &mut SimRng::seed_from(9));
        apply_background_load(&mut b, &cfg, &mut SimRng::seed_from(9));
        for (x, y) in a.nodes().zip(b.nodes()) {
            let tx: Vec<_> = a.timetable(x.id()).iter().map(|r| r.window()).collect();
            let ty: Vec<_> = b.timetable(y.id()).iter().map(|r| r.window()).collect();
            assert_eq!(tx, ty);
        }
    }
}
