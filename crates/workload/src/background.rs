//! Background load from independent job flows.
//!
//! The paper's admissibility experiment (Fig. 3a) builds application-level
//! schedules "for available resources non-assigned to other independent
//! jobs": the other flows appear as pre-existing reservations on the node
//! timetables. This module paints such load onto a pool.

use std::collections::BTreeMap;

use gridsched_model::node::ResourcePool;
use gridsched_model::timetable::ReservationOwner;
use gridsched_model::window::TimeWindow;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

/// Configuration of random background load.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundConfig {
    /// Target utilization of each node over the horizon, in `[0, 1)`.
    pub load: f64,
    /// Horizon over which load is painted.
    pub horizon: SimDuration,
    /// Minimum busy-chunk length in ticks.
    pub chunk_min: u64,
    /// Maximum busy-chunk length in ticks.
    pub chunk_max: u64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            load: 0.5,
            horizon: SimDuration::from_ticks(200),
            chunk_min: 3,
            chunk_max: 12,
        }
    }
}

impl BackgroundConfig {
    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.load),
            "background load must be in [0, 1), got {}",
            self.load
        );
        assert!(
            self.chunk_min >= 1 && self.chunk_min <= self.chunk_max,
            "invalid chunk range [{}, {}]",
            self.chunk_min,
            self.chunk_max
        );
        assert!(!self.horizon.is_zero(), "horizon must be positive");
    }
}

/// Whether `[start, end)` overlaps any window in `occupied` (start-keyed
/// ends of a non-overlapping set): only the nearest neighbor on each side
/// can collide, which makes the accept/reject decision O(log k) instead
/// of the O(k) `Vec::insert` a trial `Timetable::reserve` would pay.
fn conflicts(occupied: &BTreeMap<u64, u64>, start: u64, end: u64) -> bool {
    if occupied
        .range(..=start)
        .next_back()
        .is_some_and(|(_, &e)| e > start)
    {
        return true;
    }
    occupied
        .range(start..)
        .next()
        .is_some_and(|(&s, _)| s < end)
}

/// Paints random busy windows onto every node of `pool` until each node's
/// utilization over the horizon reaches approximately `config.load`.
///
/// Returns the number of reservations placed.
///
/// Accepted chunks are accumulated per node and committed with one
/// [`Timetable::extend_sorted`] bulk merge at the end; the accept/reject
/// decisions (and thus the RNG draw sequence and the painted windows) are
/// exactly those of the old chunk-by-chunk `reserve` loop — only the cost
/// drops from O(n²) to O(n log n) per node.
///
/// [`Timetable::extend_sorted`]: gridsched_model::timetable::Timetable::extend_sorted
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn apply_background_load(
    pool: &mut ResourcePool,
    config: &BackgroundConfig,
    rng: &mut SimRng,
) -> usize {
    config.validate();
    let horizon_end = SimTime::ZERO + config.horizon;
    let range = TimeWindow::new(SimTime::ZERO, horizon_end).expect("positive horizon");
    let mut placed = 0;
    let node_ids: Vec<_> = pool.nodes().map(|n| n.id()).collect();
    let mut tag = 0u64;
    for id in node_ids {
        let target = config.horizon.ticks() as f64 * config.load;
        let mut busy = 0.0;
        // Conflict checks run against this start-keyed shadow of the
        // node's calendar (pre-existing windows included), not the
        // timetable itself — the timetable is only touched once below.
        let mut occupied: BTreeMap<u64, u64> = pool
            .timetable(id)
            .iter()
            .map(|r| (r.window().start().ticks(), r.window().end().ticks()))
            .collect();
        let mut accepted: Vec<(TimeWindow, u64)> = Vec::new();
        // Random placement with bounded retries: collisions with already
        // painted chunks are simply skipped.
        let mut attempts = 0;
        while busy < target && attempts < 10_000 {
            attempts += 1;
            let len = rng.uniform_u64(config.chunk_min, config.chunk_max);
            let latest_start = config.horizon.ticks().saturating_sub(len);
            if latest_start == 0 && len > config.horizon.ticks() {
                break;
            }
            let start = rng.uniform_u64(0, latest_start);
            if !conflicts(&occupied, start, start + len) {
                let window =
                    TimeWindow::new(SimTime::from_ticks(start), SimTime::from_ticks(start + len))
                        .expect("len >= 1");
                occupied.insert(start, start + len);
                accepted.push((window, tag));
                busy += len as f64;
                placed += 1;
                tag += 1;
            }
        }
        // Tags stay attached to the windows they were drawn with; only
        // the commit order changes (start order, as `extend_sorted`
        // requires).
        accepted.sort_unstable_by_key(|(w, _)| w.start());
        pool.timetable_mut(id).extend_sorted(
            accepted
                .into_iter()
                .map(|(w, t)| (w, ReservationOwner::Background(t))),
        );
        debug_assert!(pool.timetable(id).utilization(range) <= 1.0);
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;

    fn pool(n: usize) -> ResourcePool {
        let mut pool = ResourcePool::new();
        for _ in 0..n {
            pool.add_node(DomainId::new(0), Perf::FULL);
        }
        pool
    }

    #[test]
    fn reaches_target_load_approximately() {
        let mut pool = pool(5);
        let cfg = BackgroundConfig::default();
        let mut rng = SimRng::seed_from(1);
        apply_background_load(&mut pool, &cfg, &mut rng);
        let range = TimeWindow::new(SimTime::ZERO, SimTime::ZERO + cfg.horizon).unwrap();
        for node in pool.nodes() {
            let u = pool.timetable(node.id()).utilization(range);
            assert!(
                (cfg.load - 0.05..=cfg.load + 0.1).contains(&u),
                "node {} utilization {u} far from target {}",
                node.id(),
                cfg.load
            );
        }
    }

    #[test]
    fn zero_load_paints_nothing() {
        let mut pool = pool(3);
        let cfg = BackgroundConfig {
            load: 0.0,
            ..BackgroundConfig::default()
        };
        let placed = apply_background_load(&mut pool, &cfg, &mut SimRng::seed_from(2));
        assert_eq!(placed, 0);
    }

    #[test]
    fn reservations_never_overlap() {
        let mut pool = pool(2);
        let cfg = BackgroundConfig {
            load: 0.8,
            ..BackgroundConfig::default()
        };
        apply_background_load(&mut pool, &cfg, &mut SimRng::seed_from(3));
        for node in pool.nodes() {
            let tt = pool.timetable(node.id());
            let windows: Vec<_> = tt.iter().map(|r| r.window()).collect();
            for (i, a) in windows.iter().enumerate() {
                for b in &windows[i + 1..] {
                    assert!(!a.overlaps(*b), "{a} overlaps {b}");
                }
            }
        }
    }

    /// The bulk-committed build makes exactly the decisions of the old
    /// chunk-by-chunk `reserve` loop: same RNG draws, same accepted
    /// windows, same owner tags.
    #[test]
    fn bulk_build_matches_incremental_reference() {
        for seed in [1u64, 7, 42] {
            let cfg = BackgroundConfig {
                load: 0.7,
                ..BackgroundConfig::default()
            };
            let mut fast = pool(3);
            let placed = apply_background_load(&mut fast, &cfg, &mut SimRng::seed_from(seed));

            // Reference: the pre-bulk incremental loop, reserve per chunk.
            let mut slow = pool(3);
            let mut rng = SimRng::seed_from(seed);
            let mut tag = 0u64;
            let mut placed_ref = 0usize;
            let ids: Vec<_> = slow.nodes().map(|n| n.id()).collect();
            for id in ids {
                let target = cfg.horizon.ticks() as f64 * cfg.load;
                let mut busy = 0.0;
                let mut attempts = 0;
                while busy < target && attempts < 10_000 {
                    attempts += 1;
                    let len = rng.uniform_u64(cfg.chunk_min, cfg.chunk_max);
                    let latest_start = cfg.horizon.ticks().saturating_sub(len);
                    if latest_start == 0 && len > cfg.horizon.ticks() {
                        break;
                    }
                    let start = rng.uniform_u64(0, latest_start);
                    let window = TimeWindow::new(
                        SimTime::from_ticks(start),
                        SimTime::from_ticks(start + len),
                    )
                    .expect("len >= 1");
                    if slow
                        .timetable_mut(id)
                        .reserve(window, ReservationOwner::Background(tag))
                        .is_ok()
                    {
                        busy += len as f64;
                        placed_ref += 1;
                        tag += 1;
                    }
                }
            }

            assert_eq!(placed, placed_ref, "seed {seed}");
            for (a, b) in fast.nodes().zip(slow.nodes()) {
                let fa: Vec<_> = fast
                    .timetable(a.id())
                    .iter()
                    .map(|r| (r.window(), r.owner()))
                    .collect();
                let sb: Vec<_> = slow
                    .timetable(b.id())
                    .iter()
                    .map(|r| (r.window(), r.owner()))
                    .collect();
                assert_eq!(fa, sb, "seed {seed} node {}", a.id());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BackgroundConfig::default();
        let mut a = pool(4);
        let mut b = pool(4);
        apply_background_load(&mut a, &cfg, &mut SimRng::seed_from(9));
        apply_background_load(&mut b, &cfg, &mut SimRng::seed_from(9));
        for (x, y) in a.nodes().zip(b.nodes()) {
            let tx: Vec<_> = a.timetable(x.id()).iter().map(|r| r.window()).collect();
            let ty: Vec<_> = b.timetable(y.id()).iter().map(|r| r.window()).collect();
            assert_eq!(tx, ty);
        }
    }
}
