//! Random compound jobs per §4.
//!
//! "Strategies for more than 12000 jobs with a fixed completion time were
//! studied. Every task of a job had randomized completion time estimations,
//! computation volumes, data transfer times and volumes with a uniform
//! distribution. These parameters for various tasks had difference which
//! was equal to 2...3."
//!
//! Jobs are layered fork-join DAGs in the style of the paper's Fig. 2:
//! an entry stage, a few parallel middle layers, and a join stage.

use gridsched_model::ids::JobId;
use gridsched_model::job::{Job, JobBuilder};
use gridsched_model::perf::Perf;
use gridsched_model::volume::Volume;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

/// Configuration of the random job generator.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Minimum number of DAG layers, including entry and exit (≥ 2).
    pub layers_min: usize,
    /// Maximum number of DAG layers.
    pub layers_max: usize,
    /// Maximum parallel tasks per middle layer (the "task parallelism
    /// degree" the pool size is conformed to).
    pub width_max: usize,
    /// Base computation volume; per-task volumes get the paper's 2–3×
    /// uniform spread on top.
    pub base_volume: u64,
    /// Base data volume per transfer arc, same spread.
    pub base_edge_volume: u64,
    /// Deadline = `deadline_factor` × the job's critical path on a
    /// performance-1.0 node. The paper studies jobs "with a fixed
    /// completion time"; the factor expresses how tight that time is.
    pub deadline_factor: f64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            layers_min: 3,
            layers_max: 5,
            width_max: 3,
            base_volume: 20,
            base_edge_volume: 5,
            deadline_factor: 3.0,
        }
    }
}

impl JobConfig {
    fn validate(&self) {
        assert!(
            self.layers_min >= 2 && self.layers_min <= self.layers_max,
            "invalid layer range [{}, {}]",
            self.layers_min,
            self.layers_max
        );
        assert!(self.width_max >= 1, "width_max must be at least 1");
        assert!(self.base_volume >= 1, "base_volume must be at least 1");
        assert!(
            self.deadline_factor.is_finite() && self.deadline_factor > 0.0,
            "deadline_factor must be positive, got {}",
            self.deadline_factor
        );
    }
}

/// Generates one random compound job.
///
/// The DAG has a single entry task and a single exit task (like Fig. 2);
/// middle layers have 1–`width_max` tasks, each wired to at least one task
/// of the previous layer.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_job(config: &JobConfig, id: JobId, release: SimTime, rng: &mut SimRng) -> Job {
    config.validate();
    let layers = rng.uniform_u64(config.layers_min as u64, config.layers_max as u64) as usize;
    let mut builder = JobBuilder::new();
    let mut previous_layer = vec![builder.add_task(random_volume(config.base_volume, rng))];
    for layer in 1..layers {
        let width = if layer == layers - 1 {
            1 // single exit task
        } else {
            rng.uniform_u64(1, config.width_max as u64) as usize
        };
        let current: Vec<_> = (0..width)
            .map(|_| builder.add_task(random_volume(config.base_volume, rng)))
            .collect();
        for &to in &current {
            // Wire to one random predecessor, then sprinkle extras.
            let first = previous_layer[rng.index(previous_layer.len())];
            builder.add_edge(first, to, random_volume(config.base_edge_volume, rng));
            for &from in &previous_layer {
                if from != first && rng.chance(0.4) {
                    builder.add_edge(from, to, random_volume(config.base_edge_volume, rng));
                }
            }
        }
        // Every previous-layer task needs at least one consumer; rewire
        // orphans to a random current task.
        let consumed: std::collections::HashSet<_> = builder
            .clone()
            .build(id)
            .map(|j| {
                j.edges()
                    .iter()
                    .map(gridsched_model::job::DataEdge::from)
                    .collect()
            })
            .unwrap_or_default();
        for &from in &previous_layer {
            if !consumed.contains(&from) {
                let to = current[rng.index(current.len())];
                builder.add_edge(from, to, random_volume(config.base_edge_volume, rng));
            }
        }
        previous_layer = current;
    }
    // Set deadline from the critical path of a provisional build.
    builder.release_at(release);
    let provisional = builder
        .clone()
        .build(id)
        .expect("layered generation yields a valid DAG");
    let critical = provisional.critical_path(Perf::FULL);
    let deadline = critical.scale_ceil(config.deadline_factor);
    builder.deadline(deadline.max(SimDuration::TICK));
    builder
        .build(id)
        .expect("layered generation yields a valid DAG")
}

fn random_volume(base: u64, rng: &mut SimRng) -> Volume {
    Volume::new(rng.spread_2_to_3(base) as f64)
}

/// Generates `count` jobs with releases spaced by a uniform inter-arrival
/// in `[0, max_gap]` ticks.
///
/// A zero `max_gap` consumes **no** randomness for the gaps (there is
/// nothing to draw), exactly like a degenerate all-zero
/// [`ArrivalProcess::Trace`](crate::arrivals::ArrivalProcess): the batch
/// stream and the online arrival stream then produce identical jobs from
/// the same rng — the equivalence the chaos harness's batch-vs-online
/// differential axis rests on.
#[must_use]
pub fn generate_stream(
    config: &JobConfig,
    count: usize,
    max_gap: SimDuration,
    rng: &mut SimRng,
) -> Vec<Job> {
    let mut out = Vec::with_capacity(count);
    let mut clock = SimTime::ZERO;
    for i in 0..count {
        if !max_gap.is_zero() {
            clock += rng.uniform_duration(SimDuration::ZERO, max_gap);
        }
        out.push(generate_job(config, JobId::new(i as u64), clock, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_valid_dags_with_deadlines() {
        let cfg = JobConfig::default();
        for seed in 0..30 {
            let mut rng = SimRng::seed_from(seed);
            let job = generate_job(&cfg, JobId::new(seed), SimTime::ZERO, &mut rng);
            assert!(job.task_count() >= 3);
            assert!(job.deadline() > SimDuration::ZERO);
            assert!(job.deadline().ticks() < u64::MAX / 2, "finite deadline");
            // Every non-entry task has a predecessor; every non-exit a
            // successor — guaranteed by construction, double-check.
            for t in job.tasks() {
                let id = t.id();
                let preds = job.predecessors(id).count();
                let succs = job.successors(id).count();
                assert!(preds > 0 || succs > 0 || job.task_count() == 1);
            }
        }
    }

    #[test]
    fn single_entry_and_exit() {
        let cfg = JobConfig::default();
        for seed in 0..20 {
            let mut rng = SimRng::seed_from(seed + 100);
            let job = generate_job(&cfg, JobId::new(seed), SimTime::ZERO, &mut rng);
            assert_eq!(job.entry_tasks().count(), 1, "seed {seed}");
            assert_eq!(job.exit_tasks().count(), 1, "seed {seed}");
        }
    }

    #[test]
    fn deadline_scales_with_factor() {
        let tight = JobConfig {
            deadline_factor: 1.5,
            ..JobConfig::default()
        };
        let loose = JobConfig {
            deadline_factor: 6.0,
            ..JobConfig::default()
        };
        let a = generate_job(
            &tight,
            JobId::new(0),
            SimTime::ZERO,
            &mut SimRng::seed_from(5),
        );
        let b = generate_job(
            &loose,
            JobId::new(0),
            SimTime::ZERO,
            &mut SimRng::seed_from(5),
        );
        // Same seed -> same DAG, different deadline.
        assert_eq!(a.task_count(), b.task_count());
        assert!(b.deadline() > a.deadline());
    }

    #[test]
    fn volumes_respect_spread_band() {
        let cfg = JobConfig::default();
        let mut rng = SimRng::seed_from(9);
        let job = generate_job(&cfg, JobId::new(0), SimTime::ZERO, &mut rng);
        for t in job.tasks() {
            let v = t.volume().units();
            assert!(
                (cfg.base_volume as f64..=3.0 * cfg.base_volume as f64).contains(&v),
                "volume {v} outside [20, 60]"
            );
        }
    }

    #[test]
    fn parallelism_bounded_by_width() {
        let cfg = JobConfig {
            width_max: 2,
            ..JobConfig::default()
        };
        for seed in 0..10 {
            let mut rng = SimRng::seed_from(seed);
            let job = generate_job(&cfg, JobId::new(0), SimTime::ZERO, &mut rng);
            assert!(job.parallelism_degree() <= 2);
        }
    }

    #[test]
    fn stream_releases_are_monotone() {
        let cfg = JobConfig::default();
        let mut rng = SimRng::seed_from(4);
        let jobs = generate_stream(&cfg, 10, SimDuration::from_ticks(5), &mut rng);
        assert_eq!(jobs.len(), 10);
        for pair in jobs.windows(2) {
            assert!(pair[0].release() <= pair[1].release());
        }
        // Ids are sequential.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id(), JobId::new(i as u64));
        }
    }

    #[test]
    fn zero_gap_stream_consumes_no_gap_randomness() {
        // A zero max_gap must draw nothing for the gaps, so the stream is
        // identical to generating the jobs back to back at t0 — and, by
        // the same token, to a degenerate all-zero arrival trace (the
        // chaos harness's batch-vs-online axis rests on this).
        let cfg = JobConfig::default();
        let stream = generate_stream(&cfg, 6, SimDuration::ZERO, &mut SimRng::seed_from(77));
        let mut rng = SimRng::seed_from(77);
        let direct: Vec<Job> = (0..6)
            .map(|i| generate_job(&cfg, JobId::new(i), SimTime::ZERO, &mut rng))
            .collect();
        assert_eq!(stream, direct);
        assert!(stream.iter().all(|j| j.release() == SimTime::ZERO));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = JobConfig::default();
        let a = generate_job(
            &cfg,
            JobId::new(0),
            SimTime::ZERO,
            &mut SimRng::seed_from(11),
        );
        let b = generate_job(
            &cfg,
            JobId::new(0),
            SimTime::ZERO,
            &mut SimRng::seed_from(11),
        );
        assert_eq!(a.task_count(), b.task_count());
        assert_eq!(a.edges().len(), b.edges().len());
        assert_eq!(a.total_volume(), b.total_volume());
        assert_eq!(a.deadline(), b.deadline());
    }
}
