//! Seeded arrival processes for the online serving loop.
//!
//! The paper's job-flow level is *online*: the metascheduler receives a
//! continuous flow of compound jobs rather than a pre-released batch. This
//! module turns the [`jobs`](crate::jobs) generator into a stream shaped by
//! an explicit arrival process:
//!
//! - [`ArrivalProcess::Poisson`]: exponential inter-arrival gaps at a given
//!   rate (jobs per tick), sampled by inverse transform from the workspace
//!   [`SimRng`] — the classic open-system workload model;
//! - [`ArrivalProcess::Trace`]: a fixed, cycled gap sequence — for replayed
//!   real traces and for deterministic burst/backpressure experiments
//!   (e.g. `gaps = [0, 0, 0, 50]` is a 4-job burst every 50 ticks).
//!
//! Both are fully deterministic per seed: the process only decides *when*
//! jobs arrive; the jobs themselves come from [`generate_job`] on the same
//! stream, so the n-th arrival's DAG is identical across processes that
//! consume the same number of random draws.

use gridsched_model::ids::JobId;
use gridsched_model::job::Job;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

use crate::jobs::{generate_job, JobConfig};

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps with mean `1 / rate` ticks.
    Poisson {
        /// Mean arrival rate in jobs per tick; must be positive and finite.
        rate: f64,
    },
    /// Trace-driven arrivals: the gap before the n-th arrival is
    /// `gaps[n % gaps.len()]` ticks. An empty trace is invalid.
    Trace {
        /// The cycled inter-arrival gaps, in ticks.
        gaps: Vec<u64>,
    },
}

impl ArrivalProcess {
    fn validate(&self) {
        match self {
            ArrivalProcess::Poisson { rate } => {
                assert!(
                    rate.is_finite() && *rate > 0.0,
                    "Poisson arrival rate must be positive, got {rate}"
                );
            }
            ArrivalProcess::Trace { gaps } => {
                assert!(
                    !gaps.is_empty(),
                    "trace-driven arrivals need at least one gap"
                );
            }
        }
    }

    /// Draws the gap before the `n`-th arrival (0-based), in ticks.
    ///
    /// Poisson gaps use the inverse transform `-ln(1 - u) / rate` rounded
    /// to whole ticks; trace gaps cycle through the configured sequence
    /// without consuming randomness.
    #[must_use]
    pub fn next_gap(&self, n: usize, rng: &mut SimRng) -> SimDuration {
        match self {
            ArrivalProcess::Poisson { rate } => {
                let u = rng.uniform_f64(0.0, 1.0);
                // u < 1.0 by construction, so ln(1 - u) is finite.
                let gap = -(1.0 - u).ln() / rate;
                SimDuration::from_ticks(gap.round() as u64)
            }
            ArrivalProcess::Trace { gaps } => SimDuration::from_ticks(gaps[n % gaps.len()]),
        }
    }
}

/// Generates up to `count` jobs whose releases follow `process`, stopping
/// early once an arrival would land at or beyond `horizon`.
///
/// Job ids are sequential from 0 in arrival order; releases are
/// non-decreasing. The DAGs come from [`generate_job`] with the same
/// configuration as the batch campaigns, so online and batch runs draw
/// from the same workload family.
///
/// # Panics
///
/// Panics if the process or job configuration is invalid.
#[must_use]
pub fn generate_arrivals(
    config: &JobConfig,
    count: usize,
    process: &ArrivalProcess,
    horizon: SimTime,
    rng: &mut SimRng,
) -> Vec<Job> {
    process.validate();
    let mut out = Vec::with_capacity(count);
    let mut clock = SimTime::ZERO;
    for i in 0..count {
        clock = clock.saturating_add(process.next_gap(i, rng));
        if clock >= horizon {
            break;
        }
        out.push(generate_job(config, JobId::new(i as u64), clock, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_monotone_and_deterministic() {
        let cfg = JobConfig::default();
        let process = ArrivalProcess::Poisson { rate: 0.1 };
        let horizon = SimTime::ZERO.saturating_add(SimDuration::from_ticks(10_000));
        let a = generate_arrivals(&cfg, 40, &process, horizon, &mut SimRng::seed_from(7));
        let b = generate_arrivals(&cfg, 40, &process, horizon, &mut SimRng::seed_from(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.release(), y.release());
            assert_eq!(x.task_count(), y.task_count());
            assert_eq!(x.deadline(), y.deadline());
        }
        for pair in a.windows(2) {
            assert!(pair[0].release() <= pair[1].release());
        }
        for (i, job) in a.iter().enumerate() {
            assert_eq!(job.id(), JobId::new(i as u64));
        }
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let process = ArrivalProcess::Poisson { rate: 0.05 }; // mean gap 20
        let mut rng = SimRng::seed_from(3);
        let n = 2_000;
        let total: u64 = (0..n).map(|i| process.next_gap(i, &mut rng).ticks()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (15.0..=25.0).contains(&mean),
            "mean exponential gap {mean} far from 20"
        );
    }

    #[test]
    fn trace_gaps_cycle_without_consuming_randomness() {
        let process = ArrivalProcess::Trace {
            gaps: vec![0, 0, 0, 50],
        };
        let mut rng = SimRng::seed_from(1);
        let before = rng.clone().next_u64();
        let gaps: Vec<u64> = (0..8)
            .map(|i| process.next_gap(i, &mut rng).ticks())
            .collect();
        assert_eq!(gaps, vec![0, 0, 0, 50, 0, 0, 0, 50]);
        assert_eq!(
            rng.next_u64(),
            before,
            "trace gaps must not advance the rng"
        );
    }

    #[test]
    fn zero_gap_trace_matches_zero_gap_batch_stream() {
        // The degenerate all-zero trace and the batch stream with
        // `max_gap = 0` must produce the *same jobs* from the same seed:
        // neither consumes randomness for gaps, so every draw goes to the
        // DAGs. This equivalence is what lets the chaos harness compare a
        // batch campaign against an online one differentially.
        let cfg = JobConfig::default();
        let process = ArrivalProcess::Trace { gaps: vec![0] };
        let horizon = SimTime::ZERO.saturating_add(SimDuration::from_ticks(500));
        let online = generate_arrivals(&cfg, 9, &process, horizon, &mut SimRng::seed_from(41));
        let batch =
            crate::jobs::generate_stream(&cfg, 9, SimDuration::ZERO, &mut SimRng::seed_from(41));
        assert_eq!(online, batch);
    }

    #[test]
    fn horizon_truncates_the_stream() {
        let cfg = JobConfig::default();
        let process = ArrivalProcess::Trace { gaps: vec![10] };
        let horizon = SimTime::ZERO.saturating_add(SimDuration::from_ticks(55));
        let jobs = generate_arrivals(&cfg, 100, &process, horizon, &mut SimRng::seed_from(2));
        // Arrivals at 10, 20, 30, 40, 50 — the one at 60 is cut off.
        assert_eq!(jobs.len(), 5);
        assert!(jobs.iter().all(|j| j.release() < horizon));
    }
}
