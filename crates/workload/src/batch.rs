//! Random local-queue workloads for the §5 experiments.

use gridsched_batch::job::{BatchJob, BatchJobId};
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

/// Configuration of a random stream of rigid parallel jobs for one local
/// batch system.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchWorkloadConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Maximum job width in nodes (widths are uniform in `1..=width_max`).
    pub width_max: u32,
    /// Base wall-time estimate in ticks; per-job estimates get the paper's
    /// 2–3× uniform spread.
    pub base_estimate: u64,
    /// Mean inter-arrival gap in ticks (gaps are uniform in
    /// `0..=2*mean_gap`).
    pub mean_gap: u64,
    /// Fraction of the estimate the actual runtime is at least
    /// (`actual ~ U[accuracy_floor × estimate, estimate]`). 1.0 means
    /// perfectly accurate users; real users over-estimate, which is what
    /// opens backfill holes and breaks start-time forecasts (§5).
    pub accuracy_floor: f64,
}

impl Default for BatchWorkloadConfig {
    fn default() -> Self {
        BatchWorkloadConfig {
            jobs: 200,
            width_max: 4,
            base_estimate: 10,
            mean_gap: 3,
            accuracy_floor: 0.4,
        }
    }
}

impl BatchWorkloadConfig {
    fn validate(&self) {
        assert!(self.jobs >= 1, "need at least one job");
        assert!(self.width_max >= 1, "width_max must be at least 1");
        assert!(self.base_estimate >= 1, "base_estimate must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.accuracy_floor) && self.accuracy_floor > 0.0,
            "accuracy_floor must be in (0, 1], got {}",
            self.accuracy_floor
        );
    }
}

/// Generates a random job stream per `config`.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_batch_jobs(config: &BatchWorkloadConfig, rng: &mut SimRng) -> Vec<BatchJob> {
    config.validate();
    let mut out = Vec::with_capacity(config.jobs);
    let mut clock = SimTime::ZERO;
    for i in 0..config.jobs {
        clock += SimDuration::from_ticks(rng.uniform_u64(0, config.mean_gap * 2));
        let width = rng.uniform_u64(1, u64::from(config.width_max)) as u32;
        let estimate = rng.spread_2_to_3(config.base_estimate);
        let min_actual = ((estimate as f64) * config.accuracy_floor).ceil().max(1.0) as u64;
        let actual = rng.uniform_u64(min_actual, estimate);
        out.push(BatchJob::new(
            BatchJobId(i as u64),
            clock,
            width,
            SimDuration::from_ticks(estimate),
            SimDuration::from_ticks(actual),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_respect_configuration() {
        let cfg = BatchWorkloadConfig::default();
        let mut rng = SimRng::seed_from(1);
        let jobs = generate_batch_jobs(&cfg, &mut rng);
        assert_eq!(jobs.len(), cfg.jobs);
        for j in &jobs {
            assert!((1..=cfg.width_max).contains(&j.width()));
            assert!(j.actual() <= j.estimate());
            let est = j.estimate().ticks();
            assert!((cfg.base_estimate..=cfg.base_estimate * 3).contains(&est));
            let floor = ((est as f64) * cfg.accuracy_floor).ceil() as u64;
            assert!(j.actual().ticks() >= floor);
        }
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut rng = SimRng::seed_from(2);
        let jobs = generate_batch_jobs(&BatchWorkloadConfig::default(), &mut rng);
        for pair in jobs.windows(2) {
            assert!(pair[0].arrival() <= pair[1].arrival());
        }
    }

    #[test]
    fn accurate_users_have_exact_runtimes() {
        let cfg = BatchWorkloadConfig {
            accuracy_floor: 1.0,
            ..BatchWorkloadConfig::default()
        };
        let mut rng = SimRng::seed_from(3);
        for j in generate_batch_jobs(&cfg, &mut rng) {
            assert_eq!(j.actual(), j.estimate());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BatchWorkloadConfig::default();
        let a = generate_batch_jobs(&cfg, &mut SimRng::seed_from(5));
        let b = generate_batch_jobs(&cfg, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "accuracy_floor")]
    fn zero_accuracy_rejected() {
        let cfg = BatchWorkloadConfig {
            accuracy_floor: 0.0,
            ..BatchWorkloadConfig::default()
        };
        let _ = generate_batch_jobs(&cfg, &mut SimRng::seed_from(0));
    }
}
