//! # gridsched-workload
//!
//! Randomized workload generators reproducing §4 of Toporkov's PaCT 2009
//! paper:
//!
//! - [`pool`]: node pools of 20–30 nodes in the paper's three performance
//!   groups (0.66–1.0 / 0.33–0.66 / 0.33);
//! - [`jobs`]: layered fork-join compound jobs with uniformly distributed
//!   volumes and transfer sizes spread by a factor of 2–3, and fixed
//!   completion deadlines;
//! - [`batch`]: rigid parallel job streams for the §5 local-queue
//!   experiments;
//! - [`background`]: pre-existing load from independent job flows, painted
//!   onto node timetables;
//! - [`arrivals`]: seeded Poisson and trace-driven arrival processes for
//!   the online serving loop.
//!
//! All generators draw from a seeded [`gridsched_sim::rng::SimRng`], so
//! entire campaigns replay bit-identically.
//!
//! # Examples
//!
//! ```
//! use gridsched_sim::rng::SimRng;
//! use gridsched_workload::pool::{generate_pool, PoolConfig};
//!
//! let mut rng = SimRng::seed_from(42);
//! let pool = generate_pool(&PoolConfig::default(), &mut rng);
//! assert!((20..=30).contains(&pool.len()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod background;
pub mod batch;
pub mod jobs;
pub mod pool;

pub use arrivals::{generate_arrivals, ArrivalProcess};
pub use background::{apply_background_load, BackgroundConfig};
pub use batch::{generate_batch_jobs, BatchWorkloadConfig};
pub use jobs::{generate_job, generate_stream, JobConfig};
pub use pool::{generate_pool, PoolConfig};
