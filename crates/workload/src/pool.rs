//! Random node pools per the paper's §4.
//!
//! "Processor nodes were selected in accordance to their relative
//! performance. For the first group of 'fast' nodes the relative
//! performance was equal to 0.66…1, for the second and the third groups
//! 0.33…0.66 and 0.33 ('slow' nodes) respectively. A number of nodes was
//! conformed to a job structure, i.e. a task parallelism degree, and was
//! varied from 20 to 30."

use gridsched_model::ids::DomainId;
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::{Perf, PerfGroup};
use gridsched_sim::rng::SimRng;

/// Configuration of a random resource pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Minimum node count (paper: 20).
    pub nodes_min: usize,
    /// Maximum node count (paper: 30).
    pub nodes_max: usize,
    /// Number of domains nodes are spread over.
    pub domains: u32,
    /// Share of each group `(fast, medium, slow)`; must sum to ~1.
    pub group_shares: (f64, f64, f64),
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            nodes_min: 20,
            nodes_max: 30,
            domains: 3,
            group_shares: (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        }
    }
}

impl PoolConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if bounds are inverted, there are no domains, or the group
    /// shares do not sum to 1 (±1e-6).
    fn validate(&self) {
        assert!(
            self.nodes_min >= 1 && self.nodes_min <= self.nodes_max,
            "invalid node count range [{}, {}]",
            self.nodes_min,
            self.nodes_max
        );
        assert!(self.domains >= 1, "need at least one domain");
        let sum = self.group_shares.0 + self.group_shares.1 + self.group_shares.2;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "group shares must sum to 1, got {sum}"
        );
    }
}

/// Generates a pool per `config`, drawing performances from each group's
/// §4 band. Nodes are dealt to domains round-robin so every domain holds a
/// mix of speeds.
#[must_use]
pub fn generate_pool(config: &PoolConfig, rng: &mut SimRng) -> ResourcePool {
    config.validate();
    let n = rng.uniform_u64(config.nodes_min as u64, config.nodes_max as u64) as usize;
    let fast = ((n as f64) * config.group_shares.0).round() as usize;
    let medium = ((n as f64) * config.group_shares.1).round() as usize;
    let slow = n
        .saturating_sub(fast + medium)
        .max(if fast + medium < n { 1 } else { 0 });

    let mut perfs: Vec<Perf> = Vec::with_capacity(n);
    for _ in 0..fast {
        let (lo, hi) = PerfGroup::Fast.perf_range();
        perfs.push(Perf::new(rng.uniform_f64(lo, hi + 1e-9).min(1.0)).expect("in range"));
    }
    for _ in 0..medium {
        let (lo, hi) = PerfGroup::Medium.perf_range();
        perfs.push(Perf::new(rng.uniform_f64(lo, hi)).expect("in range"));
    }
    for _ in 0..slow {
        // The paper pins the slow group at exactly 0.33.
        perfs.push(Perf::new(0.33).expect("0.33 is valid"));
    }
    rng.shuffle(&mut perfs);

    let mut pool = ResourcePool::new();
    for (i, perf) in perfs.into_iter().enumerate() {
        let domain = DomainId::new((i as u32) % config.domains);
        pool.add_node(domain, perf);
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_count_bounds() {
        let cfg = PoolConfig::default();
        for seed in 0..20 {
            let mut rng = SimRng::seed_from(seed);
            let pool = generate_pool(&cfg, &mut rng);
            assert!((20..=30).contains(&pool.len()), "{}", pool.len());
        }
    }

    #[test]
    fn contains_all_three_groups() {
        let mut rng = SimRng::seed_from(1);
        let pool = generate_pool(&PoolConfig::default(), &mut rng);
        for group in PerfGroup::ALL {
            assert!(
                pool.in_group(group).count() > 0,
                "group {group} missing from pool"
            );
        }
    }

    #[test]
    fn slow_nodes_are_exactly_one_third_speed() {
        let mut rng = SimRng::seed_from(2);
        let pool = generate_pool(&PoolConfig::default(), &mut rng);
        for node in pool.in_group(PerfGroup::Slow) {
            assert_eq!(node.perf().value(), 0.33);
        }
    }

    #[test]
    fn nodes_spread_over_all_domains() {
        let mut rng = SimRng::seed_from(3);
        let cfg = PoolConfig::default();
        let pool = generate_pool(&cfg, &mut rng);
        assert_eq!(pool.domains().len(), cfg.domains as usize);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = PoolConfig::default();
        let a = generate_pool(&cfg, &mut SimRng::seed_from(7));
        let b = generate_pool(&cfg, &mut SimRng::seed_from(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.nodes().zip(b.nodes()) {
            assert_eq!(x.perf(), y.perf());
            assert_eq!(x.domain(), y.domain());
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_shares_rejected() {
        let cfg = PoolConfig {
            group_shares: (0.5, 0.5, 0.5),
            ..PoolConfig::default()
        };
        let _ = generate_pool(&cfg, &mut SimRng::seed_from(0));
    }
}
