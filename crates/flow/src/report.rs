//! Per-job records and campaign-level aggregates.

use std::collections::BTreeMap;

use gridsched_core::strategy::StrategyKind;
use gridsched_metrics::load::GroupLoad;
use gridsched_metrics::summary::Summary;
use gridsched_model::ids::{DomainId, JobId};
use gridsched_model::perf::PerfGroup;
use gridsched_sim::time::{SimDuration, SimTime};

/// What happened to one job over the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job.
    pub job_id: JobId,
    /// The strategy flow the metascheduler assigned the job to.
    pub strategy: StrategyKind,
    /// Release (submission) time.
    pub release: SimTime,
    /// Whether the strategy contained at least one supporting schedule
    /// (Fig. 3a's "admissible solutions").
    pub admissible: bool,
    /// Collisions on fast-group nodes while generating the strategy.
    pub collisions_fast: usize,
    /// Collisions on medium/slow nodes.
    pub collisions_slow: usize,
    /// Number of supporting schedules generated.
    pub schedules: usize,
    /// Estimate multiplier of the activated scenario, if activated.
    pub scenario_multiplier: Option<f64>,
    /// Cost of the activated schedule, per the paper's `CF` over actual
    /// wall occupation. `None` if never activated.
    pub cost: Option<u64>,
    /// Mean reserved wall-window length per task of the activated schedule.
    pub mean_task_window: Option<f64>,
    /// Volume that crossed the network for this job under its data policy
    /// (replication counts its eager pushes).
    pub data_traffic: Option<f64>,
    /// Number of distinct nodes the job's tasks ran on (consolidation
    /// measure: S3 "tries to monopolize" few strong nodes).
    pub nodes_used: Option<usize>,
    /// Planned makespan of the activated schedule.
    pub planned_makespan: Option<SimTime>,
    /// Start-time deviation of the activated schedule from the user's
    /// optimistic forecast, summed over tasks, as a ratio to the planned
    /// runtime.
    pub start_deviation_ratio: Option<f64>,
    /// How long the active schedule survived before its first break
    /// (perturbation hit or overrun); the full planned runtime if it never
    /// broke.
    pub time_to_live: Option<SimDuration>,
    /// Domain of the job manager that owns the job: the domain holding
    /// the majority of the activated schedule's reserved ticks (ties to
    /// the lowest domain id), re-homed whenever the job migrates across
    /// domains. `None` if the job was never activated.
    pub home_domain: Option<DomainId>,
    /// Times the job manager had to switch schedules or replan.
    pub breaks: usize,
    /// How many of those breaks were resolved by switching to another
    /// precomputed supporting schedule (no replanning needed).
    pub switches: usize,
    /// How many breaks forced already-started tasks to *migrate* — restart
    /// on another node because their original node died mid-execution.
    pub migrations: usize,
    /// Whether the job was eventually dropped (no feasible replan).
    pub dropped: bool,
}

/// Aggregated result of one campaign run.
#[derive(Debug, Clone)]
pub struct VoReport {
    /// Strategy under test (of the first flow, for single-flow runs).
    pub strategy: StrategyKind,
    /// Per-job records, in release order.
    pub records: Vec<JobRecord>,
    /// Task-only node load per performance group over the horizon.
    pub task_load: GroupLoad,
    /// Fault-injection and recovery accounting (all zeros when
    /// [`crate::faults::FaultConfig`] injects nothing — benign breaks are
    /// still classified here).
    pub faults: crate::faults::FaultSummary,
    /// Chronological event log, when
    /// [`crate::simulation::CampaignConfig::collect_trace`] was set.
    pub trace: Option<crate::trace::CampaignTrace>,
}

impl VoReport {
    /// Fraction of jobs with at least one admissible supporting schedule
    /// (Fig. 3a).
    #[must_use]
    pub fn admissible_share(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self.records.iter().filter(|r| r.admissible).count();
        n as f64 / self.records.len() as f64
    }

    /// Share of collisions that happened on fast-group nodes (Fig. 3b).
    /// Returns `None` when no collisions occurred.
    #[must_use]
    pub fn fast_collision_share(&self) -> Option<f64> {
        let fast: usize = self.records.iter().map(|r| r.collisions_fast).sum();
        let slow: usize = self.records.iter().map(|r| r.collisions_slow).sum();
        let total = fast + slow;
        if total == 0 {
            None
        } else {
            Some(fast as f64 / total as f64)
        }
    }

    /// Total collisions observed.
    #[must_use]
    pub fn total_collisions(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.collisions_fast + r.collisions_slow)
            .sum()
    }

    /// Summary of activated-schedule costs.
    #[must_use]
    pub fn cost_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.cost)
            .map(|c| c as f64)
            .collect()
    }

    /// Summary of mean task wall-window lengths.
    #[must_use]
    pub fn task_window_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.mean_task_window)
            .collect()
    }

    /// Summary of per-job network traffic volumes.
    #[must_use]
    pub fn traffic_summary(&self) -> Summary {
        self.records.iter().filter_map(|r| r.data_traffic).collect()
    }

    /// Summary of distinct-node counts per job.
    #[must_use]
    pub fn nodes_used_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.nodes_used)
            .map(|n| n as f64)
            .collect()
    }

    /// Summary of time-to-live values, in ticks.
    #[must_use]
    pub fn ttl_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.time_to_live)
            .map(|d| d.ticks() as f64)
            .collect()
    }

    /// Summary of start-deviation ratios.
    #[must_use]
    pub fn deviation_summary(&self) -> Summary {
        self.records
            .iter()
            .filter_map(|r| r.start_deviation_ratio)
            .collect()
    }

    /// Mean load level of a performance group (Fig. 4a), counting only
    /// task reservations.
    #[must_use]
    pub fn load_level(&self, group: PerfGroup) -> f64 {
        self.task_load.level(group)
    }

    /// Total schedule breaks caused by injected faults (outages and
    /// transfer faults), as opposed to benign dynamics.
    #[must_use]
    pub fn fault_breaks(&self) -> usize {
        self.faults.breaks_by_outage + self.faults.breaks_by_transfer_fault
    }

    /// Total task migrations (started tasks restarted off dead nodes).
    #[must_use]
    pub fn migration_count(&self) -> usize {
        self.records.iter().map(|r| r.migrations).sum()
    }

    /// Per-domain aggregates over the jobs each job manager ended up
    /// owning (by final home domain), ascending by domain id. Jobs that
    /// never activated have no home and appear in no slice.
    #[must_use]
    pub fn domain_summary(&self) -> Vec<DomainStat> {
        let mut stats: BTreeMap<DomainId, DomainStat> = BTreeMap::new();
        for r in &self.records {
            let Some(domain) = r.home_domain else {
                continue;
            };
            let s = stats.entry(domain).or_insert(DomainStat {
                domain,
                jobs: 0,
                breaks: 0,
                migrations: 0,
                dropped: 0,
                total_cost: 0,
            });
            s.jobs += 1;
            s.breaks += r.breaks;
            s.migrations += r.migrations;
            s.dropped += usize::from(r.dropped);
            s.total_cost += r.cost.unwrap_or(0);
        }
        stats.into_values().collect()
    }

    /// Fraction of activated jobs that were eventually dropped.
    #[must_use]
    pub fn drop_share(&self) -> f64 {
        let activated = self.records.iter().filter(|r| r.cost.is_some()).count();
        if activated == 0 {
            return 0.0;
        }
        let dropped = self.records.iter().filter(|r| r.dropped).count();
        dropped as f64 / activated as f64
    }
}

/// Aggregates over the jobs one domain's job manager owned at the end of
/// a campaign (see [`VoReport::domain_summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainStat {
    /// The domain.
    pub domain: DomainId,
    /// Activated jobs whose final home is this domain.
    pub jobs: usize,
    /// Schedule breaks those jobs suffered.
    pub breaks: usize,
    /// Migration resolutions among them (restarts off dead nodes).
    pub migrations: usize,
    /// How many of them were eventually dropped.
    pub dropped: usize,
    /// Summed activated-schedule cost.
    pub total_cost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(admissible: bool, fast: usize, slow: usize, cost: Option<u64>) -> JobRecord {
        JobRecord {
            job_id: JobId::new(0),
            strategy: StrategyKind::S1,
            release: SimTime::ZERO,
            admissible,
            collisions_fast: fast,
            collisions_slow: slow,
            schedules: usize::from(admissible),
            scenario_multiplier: cost.map(|_| 1.0),
            cost,
            mean_task_window: cost.map(|_| 4.0),
            data_traffic: cost.map(|_| 10.0),
            nodes_used: cost.map(|_| 2),
            planned_makespan: cost.map(|_| SimTime::from_ticks(10)),
            start_deviation_ratio: cost.map(|_| 0.1),
            time_to_live: cost.map(|_| SimDuration::from_ticks(8)),
            home_domain: cost.map(|_| DomainId::new(0)),
            breaks: 0,
            switches: 0,
            migrations: 0,
            dropped: false,
        }
    }

    fn report(records: Vec<JobRecord>) -> VoReport {
        VoReport {
            strategy: StrategyKind::S1,
            records,
            task_load: GroupLoad::default(),
            faults: crate::faults::FaultSummary::default(),
            trace: None,
        }
    }

    #[test]
    fn admissible_share() {
        let r = report(vec![
            record(true, 0, 0, Some(10)),
            record(false, 0, 0, None),
            record(true, 0, 0, Some(12)),
            record(true, 0, 0, Some(9)),
        ]);
        assert!((r.admissible_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn collision_share() {
        let r = report(vec![
            record(true, 3, 1, Some(1)),
            record(true, 1, 3, Some(1)),
        ]);
        assert_eq!(r.fast_collision_share(), Some(0.5));
        assert_eq!(r.total_collisions(), 8);
        let empty = report(vec![record(true, 0, 0, Some(1))]);
        assert_eq!(empty.fast_collision_share(), None);
    }

    #[test]
    fn summaries_skip_unactivated_jobs() {
        let r = report(vec![
            record(true, 0, 0, Some(10)),
            record(false, 0, 0, None),
        ]);
        assert_eq!(r.cost_summary().count(), 1);
        assert_eq!(r.ttl_summary().count(), 1);
        assert_eq!(r.deviation_summary().count(), 1);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = report(Vec::new());
        assert_eq!(r.admissible_share(), 0.0);
        assert_eq!(r.drop_share(), 0.0);
        assert_eq!(r.fast_collision_share(), None);
    }
}
