//! The shared flow driver: both campaign flavours as one event machine.
//!
//! The batch campaign ([`crate::simulation`]) and the online serving loop
//! ([`crate::online`]) face the same event alphabet — job releases,
//! perturbations, injected faults — and the same settle-before-handle
//! discipline. This module expresses that shape once: a [`FlowMachine`]
//! plugs campaign-specific handlers into a [`gridsched_sim::engine::Engine`]
//! run, so the two drivers are two configurations of the same machine
//! rather than two hand-rolled event loops.
//!
//! The engine's event budget is wired in as a runaway guard: flow worlds
//! never schedule follow-up events, so a run that exceeds
//! [`flow_event_budget`] deliveries can only mean a self-perpetuating bug —
//! [`drive`] fails loudly with
//! [`crate::oracle::OracleViolation::EventBudgetExhausted`].
//!
//! # Determinism
//!
//! [`drive`] sorts the primed events by time with a stable sort and the
//! engine's queue fires equal-time events in insertion order, so event
//! delivery reproduces the pre-hierarchy sorted-vector loop bit for bit.

use gridsched_model::ids::NodeId;
use gridsched_model::job::Job;
use gridsched_sim::engine::{Engine, Scheduler, StopReason, World};
use gridsched_sim::time::{SimDuration, SimTime};

use crate::faults::Fault;

/// The event alphabet both flow drivers consume.
pub(crate) enum FlowEvent {
    /// A job enters the system: batch release or online arrival.
    Release(Job),
    /// An independent local job seizes node time.
    Perturbation {
        at: SimTime,
        node: NodeId,
        len: SimDuration,
    },
    /// An injected fault fires.
    Fault(Fault),
}

impl FlowEvent {
    pub(crate) fn time(&self) -> SimTime {
        match self {
            FlowEvent::Release(j) => j.release(),
            FlowEvent::Perturbation { at, .. } => *at,
            FlowEvent::Fault(f) => f.at,
        }
    }
}

/// Campaign-specific behaviour plugged into the shared driver.
pub(crate) trait FlowMachine {
    /// Settles everything due strictly by `now` (overruns; completions
    /// too, for machines that observe them online) before the event at
    /// `now` is handled.
    fn settle(&mut self, now: SimTime);
    /// A job entered the system.
    fn on_release(&mut self, job: Job);
    /// An independent local job seized `[at, at+len)` on `node`.
    fn on_perturbation(&mut self, at: SimTime, node: NodeId, len: SimDuration);
    /// An injected fault fired.
    fn on_fault(&mut self, fault: Fault);
    /// Runs after every handled event (the online machine drains its
    /// admission queues here — every event can change feasibility).
    fn after_event(&mut self, _now: SimTime) {}
}

/// Adapter: any [`FlowMachine`] is a [`World`] over [`FlowEvent`]s.
struct FlowWorld<M>(M);

impl<M: FlowMachine> World for FlowWorld<M> {
    type Event = FlowEvent;

    fn handle(&mut self, now: SimTime, event: FlowEvent, _: &mut Scheduler<'_, FlowEvent>) {
        self.0.settle(now);
        match event {
            FlowEvent::Release(job) => self.0.on_release(job),
            FlowEvent::Perturbation { at, node, len } => self.0.on_perturbation(at, node, len),
            FlowEvent::Fault(fault) => self.0.on_fault(fault),
        }
        self.0.after_event(now);
    }
}

/// The runaway guard for a run priming `n` events. Flow machines schedule
/// nothing themselves, so `n` deliveries suffice; the slack absorbs future
/// machines that schedule a bounded number of follow-ups without letting a
/// self-perpetuating loop run away.
pub(crate) fn flow_event_budget(n: usize) -> u64 {
    n as u64 * 2 + 64
}

/// Drives `machine` through `events` on a [`gridsched_sim::engine::Engine`]
/// and hands it back once the queue drains.
///
/// # Panics
///
/// Panics with [`crate::oracle::OracleViolation::EventBudgetExhausted`] if
/// the engine stops on its event budget — a flow world must drain its
/// primed events and nothing more.
pub(crate) fn drive<M: FlowMachine>(mut events: Vec<FlowEvent>, machine: M, budget: u64) -> M {
    // Stable by-time sort: equal-time events keep their construction order
    // (releases before perturbations before faults), exactly as the
    // engine's queue will fire them.
    events.sort_by_key(FlowEvent::time);
    let mut engine = Engine::new().with_event_budget(budget);
    for event in events {
        engine.prime(event.time(), event);
    }
    let mut world = FlowWorld(machine);
    let report = engine.run(&mut world);
    assert!(
        report.stop != StopReason::EventBudgetExhausted,
        "flow driver violated its oracle: {}",
        crate::oracle::OracleViolation::EventBudgetExhausted {
            processed: report.events_processed,
        }
    );
    world.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the delivery order; schedules nothing.
    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, &'static str)>,
        settled_to: Vec<u64>,
    }

    impl FlowMachine for Recorder {
        fn settle(&mut self, now: SimTime) {
            self.settled_to.push(now.ticks());
        }
        fn on_release(&mut self, job: Job) {
            self.log.push((job.release().ticks(), "release"));
        }
        fn on_perturbation(&mut self, at: SimTime, _: NodeId, _: SimDuration) {
            self.log.push((at.ticks(), "perturbation"));
        }
        fn on_fault(&mut self, fault: Fault) {
            self.log.push((fault.at.ticks(), "fault"));
        }
    }

    fn perturbation(at: u64) -> FlowEvent {
        FlowEvent::Perturbation {
            at: SimTime::from_ticks(at),
            node: NodeId::new(0),
            len: SimDuration::from_ticks(1),
        }
    }

    #[test]
    fn events_fire_in_time_order_with_stable_ties() {
        use crate::faults::FaultKind;
        let events = vec![
            perturbation(7),
            FlowEvent::Fault(Fault {
                at: SimTime::from_ticks(7),
                node: NodeId::new(1),
                kind: FaultKind::Degradation { factor: 0.5 },
            }),
            perturbation(3),
        ];
        let machine = drive(events, Recorder::default(), flow_event_budget(3));
        assert_eq!(
            machine.log,
            vec![(3, "perturbation"), (7, "perturbation"), (7, "fault")]
        );
        // Settle runs before every event, at the event's instant.
        assert_eq!(machine.settled_to, vec![3, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "event kernel exhausted its budget")]
    fn exhausted_budget_fails_loudly() {
        let events = (0..8).map(perturbation).collect();
        let _ = drive(events, Recorder::default(), 4);
    }
}
