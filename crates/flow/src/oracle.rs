//! Trace-invariant oracle for campaign runs.
//!
//! [`audit`] replays a [`CampaignTrace`] against its final
//! [`VoReport`] and checks that the job-flow level behaved lawfully:
//!
//! - event times are monotone;
//! - every job walks a legal lifecycle (`Released` → `Activated` →
//!   breaks/resolutions → exactly one terminal `Completed` xor `Dropped`,
//!   with nothing after the terminal); online campaigns prepend `Arrived`
//!   and may end a lifecycle early with a terminal `Rejected` (a job that
//!   only ever `Arrived` is a lawful deferral — still queued at horizon);
//! - resolutions (`Switched`/`Replanned`/`Migrated`/`Dropped`) never
//!   outnumber the breaks that caused them;
//! - per-record counters (`breaks`, `switches`, `migrations`, `dropped`,
//!   `admissible`) match the replayed trace exactly, and `time_to_live`
//!   is recomputable from it;
//! - the report's [`FaultSummary`](crate::faults::FaultSummary)
//!   accounting matches the trace event-for-event.
//!
//! [`audit_final_state`] additionally checks *structural* invariants that
//! need the final resource pool: no node-tick is double-booked (across
//! jobs and background load alike), every task reservation lies inside
//! its owner's placement, and unbroken schedules respect precedence — no
//! task starts before its predecessors' windows (including transfer
//! staging) end.
//!
//! The campaign runs both audits automatically in debug/test builds
//! whenever a trace is collected, so every traced test run is verified.

use std::collections::HashMap;
use std::fmt;

use gridsched_core::distribution::Placement;
use gridsched_model::ids::{DomainId, JobId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::timetable::ReservationOwner;
use gridsched_sim::time::SimTime;

use crate::report::VoReport;
use crate::trace::{CampaignEvent, CampaignTrace};

/// A broken invariant found by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleViolation {
    /// The report carries no trace to audit.
    MissingTrace,
    /// Event times go backwards.
    NonMonotoneTime {
        /// Position of the offending event.
        index: usize,
    },
    /// A job arrived more than once (or after its release).
    DuplicateArrival(JobId),
    /// An online rejection on a job that never arrived.
    RejectionWithoutArrival(JobId),
    /// An online rejection after the job was already admitted (released).
    RejectionAfterAdmission(JobId),
    /// A job was released more than once.
    DuplicateRelease(JobId),
    /// A job event appeared before the job's release.
    EventBeforeRelease(JobId),
    /// A job activated without an admissible release (or twice).
    IllegalActivation(JobId),
    /// A break, absorption or resolution on a never-activated job.
    EventBeforeActivation(JobId),
    /// A resolution event without a preceding unresolved break.
    ResolutionWithoutBreak(JobId),
    /// An event after the job's terminal `Completed`/`Dropped`.
    EventAfterTerminal(JobId),
    /// An activated job reached the end of the trace with no terminal.
    UnresolvedActivation(JobId),
    /// A traced job has no record in the report.
    UnknownJob(JobId),
    /// A record's flag or counter disagrees with the trace.
    RecordMismatch {
        /// The job.
        job: JobId,
        /// Which field disagrees.
        field: &'static str,
    },
    /// A record's `time_to_live` is not recomputable from the trace.
    TtlMismatch {
        /// The job.
        job: JobId,
    },
    /// The report's fault summary disagrees with the trace.
    FaultAccountingMismatch {
        /// Which counter disagrees.
        field: &'static str,
        /// Value recomputed from the trace.
        from_trace: usize,
        /// Value claimed by the report.
        from_report: usize,
    },
    /// Two reservations overlap on one node (double booking).
    DoubleBooking {
        /// Node index.
        node: usize,
    },
    /// A task reservation is owned by a job the campaign never activated.
    UnknownReservationOwner(JobId),
    /// A task reservation exists without a matching placement.
    ReservationWithoutPlacement {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
    /// A task reservation lies outside (or off the node of) its
    /// placement.
    ReservationOutsidePlacement {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
    /// An unbroken schedule starts a task before a predecessor finishes.
    PrecedenceViolation {
        /// The job.
        job: JobId,
    },
    /// Consecutive `Migrated` events on a job do not chain: a later
    /// migration's `from` domain differs from the previous one's `to`.
    MigrationChainBroken(JobId),
    /// The event kernel exhausted its runaway budget — the flow driver
    /// scheduled more events than any lawful campaign could need.
    EventBudgetExhausted {
        /// Events processed before the kernel gave up.
        processed: u64,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::MissingTrace => f.write_str("report carries no trace to audit"),
            OracleViolation::NonMonotoneTime { index } => {
                write!(f, "event {index} goes back in time")
            }
            OracleViolation::DuplicateArrival(j) => write!(f, "{j} arrived twice"),
            OracleViolation::RejectionWithoutArrival(j) => {
                write!(f, "{j} rejected without ever arriving")
            }
            OracleViolation::RejectionAfterAdmission(j) => {
                write!(f, "{j} rejected after it was already admitted")
            }
            OracleViolation::DuplicateRelease(j) => write!(f, "{j} released twice"),
            OracleViolation::EventBeforeRelease(j) => {
                write!(f, "{j} has an event before its release")
            }
            OracleViolation::IllegalActivation(j) => {
                write!(f, "{j} activated without a single admissible release")
            }
            OracleViolation::EventBeforeActivation(j) => {
                write!(f, "{j} has a lifecycle event before activation")
            }
            OracleViolation::ResolutionWithoutBreak(j) => {
                write!(f, "{j} resolved more breaks than it suffered")
            }
            OracleViolation::EventAfterTerminal(j) => {
                write!(f, "{j} has an event after its terminal state")
            }
            OracleViolation::UnresolvedActivation(j) => {
                write!(f, "{j} activated but never completed nor dropped")
            }
            OracleViolation::UnknownJob(j) => {
                write!(f, "{j} appears in the trace without a record")
            }
            OracleViolation::RecordMismatch { job, field } => {
                write!(f, "{job}: record field `{field}` disagrees with the trace")
            }
            OracleViolation::TtlMismatch { job } => {
                write!(f, "{job}: time_to_live is not recomputable from the trace")
            }
            OracleViolation::FaultAccountingMismatch {
                field,
                from_trace,
                from_report,
            } => write!(
                f,
                "fault summary `{field}`: trace says {from_trace}, report says {from_report}"
            ),
            OracleViolation::DoubleBooking { node } => {
                write!(f, "node {node} has overlapping reservations")
            }
            OracleViolation::UnknownReservationOwner(j) => {
                write!(f, "a reservation is owned by unknown {j}")
            }
            OracleViolation::ReservationWithoutPlacement { job, task } => {
                write!(f, "{job}/{task} reserved without a placement")
            }
            OracleViolation::ReservationOutsidePlacement { job, task } => {
                write!(f, "{job}/{task} reservation lies outside its placement")
            }
            OracleViolation::PrecedenceViolation { job } => {
                write!(f, "{job}: unbroken schedule violates task precedence")
            }
            OracleViolation::MigrationChainBroken(j) => {
                write!(f, "{j}: migration domains do not chain")
            }
            OracleViolation::EventBudgetExhausted { processed } => {
                write!(
                    f,
                    "event kernel exhausted its budget after {processed} events"
                )
            }
        }
    }
}

impl std::error::Error for OracleViolation {}

/// Per-job lifecycle state while replaying the trace.
#[derive(Debug, Default, Clone)]
struct Lifecycle {
    arrived: bool,
    rejected: bool,
    released: bool,
    admissible: bool,
    activated: bool,
    breaks: usize,
    switches: usize,
    replans: usize,
    migrations: usize,
    resolutions: usize,
    dropped: bool,
    completed: bool,
    first_break: Option<SimTime>,
    /// Home domain after the last migration (`to` of the latest
    /// `Migrated` event); `None` while the job never migrated.
    home: Option<DomainId>,
}

impl Lifecycle {
    fn terminal(&self) -> bool {
        self.dropped || self.completed || self.rejected
    }
}

/// Replays `report.trace` and checks every trace-level invariant.
///
/// # Errors
///
/// Returns the first [`OracleViolation`] found. A report without a trace
/// fails with [`OracleViolation::MissingTrace`] — there is nothing to
/// audit.
pub fn audit(report: &VoReport) -> Result<(), OracleViolation> {
    let trace = report.trace.as_ref().ok_or(OracleViolation::MissingTrace)?;
    let jobs = replay(trace)?;
    check_records(report, &jobs)?;
    check_fault_accounting(report, trace)?;
    Ok(())
}

/// Replays the trace into per-job lifecycles, enforcing chronology and
/// lifecycle legality.
fn replay(trace: &CampaignTrace) -> Result<HashMap<JobId, Lifecycle>, OracleViolation> {
    let mut jobs: HashMap<JobId, Lifecycle> = HashMap::new();
    let mut last = SimTime::ZERO;
    for (index, (at, event)) in trace.events().iter().enumerate() {
        if *at < last {
            return Err(OracleViolation::NonMonotoneTime { index });
        }
        last = *at;
        let Some(job) = event.job() else {
            continue; // Pool-level events carry no lifecycle.
        };
        let state = jobs.entry(job).or_default();
        match event {
            CampaignEvent::Arrived { .. } => {
                // Arrival is the very first thing that can happen to an
                // online job; batch campaigns skip it entirely.
                if state.arrived || state.released {
                    return Err(OracleViolation::DuplicateArrival(job));
                }
                state.arrived = true;
            }
            CampaignEvent::Rejected { .. } => {
                if !state.arrived {
                    return Err(OracleViolation::RejectionWithoutArrival(job));
                }
                if state.released {
                    return Err(OracleViolation::RejectionAfterAdmission(job));
                }
                if state.terminal() {
                    return Err(OracleViolation::EventAfterTerminal(job));
                }
                state.rejected = true;
            }
            CampaignEvent::Released { admissible, .. } => {
                if state.released {
                    return Err(OracleViolation::DuplicateRelease(job));
                }
                if state.rejected {
                    return Err(OracleViolation::EventAfterTerminal(job));
                }
                state.released = true;
                state.admissible = *admissible;
            }
            CampaignEvent::Activated { .. } => {
                if !state.released {
                    return Err(OracleViolation::EventBeforeRelease(job));
                }
                if !state.admissible || state.activated {
                    return Err(OracleViolation::IllegalActivation(job));
                }
                state.activated = true;
            }
            CampaignEvent::Broken { .. } => {
                require_live(state, job)?;
                state.breaks += 1;
                state.first_break.get_or_insert(*at);
            }
            CampaignEvent::Switched { .. } => {
                require_live(state, job)?;
                if state.resolutions >= state.breaks {
                    return Err(OracleViolation::ResolutionWithoutBreak(job));
                }
                state.switches += 1;
                state.resolutions += 1;
            }
            CampaignEvent::Replanned { .. } => {
                require_live(state, job)?;
                if state.resolutions >= state.breaks {
                    return Err(OracleViolation::ResolutionWithoutBreak(job));
                }
                state.replans += 1;
                state.resolutions += 1;
            }
            CampaignEvent::Migrated { from, to, .. } => {
                require_live(state, job)?;
                if state.resolutions >= state.breaks {
                    return Err(OracleViolation::ResolutionWithoutBreak(job));
                }
                // Migrations must chain: each hand-off leaves from the
                // domain the previous one arrived at.
                if let Some(home) = state.home {
                    if *from != home {
                        return Err(OracleViolation::MigrationChainBroken(job));
                    }
                }
                state.home = Some(*to);
                state.migrations += 1;
                state.resolutions += 1;
            }
            CampaignEvent::Dropped { .. } => {
                require_live(state, job)?;
                if state.resolutions >= state.breaks {
                    return Err(OracleViolation::ResolutionWithoutBreak(job));
                }
                state.resolutions += 1;
                state.dropped = true;
            }
            CampaignEvent::Completed { .. } => {
                require_live(state, job)?;
                state.completed = true;
            }
            CampaignEvent::TransferAbsorbed { .. } => {
                require_live(state, job)?;
            }
            CampaignEvent::Perturbation { .. }
            | CampaignEvent::Outage { .. }
            | CampaignEvent::Degraded { .. }
            | CampaignEvent::TransferFaultInjected { .. } => unreachable!("no job"),
        }
    }
    // Every activation must have ended somewhere.
    for (job, state) in &jobs {
        if state.activated && !state.terminal() {
            return Err(OracleViolation::UnresolvedActivation(*job));
        }
    }
    Ok(jobs)
}

/// An activated, not-yet-terminated job — the only state in which breaks,
/// resolutions, absorptions and terminals are legal.
fn require_live(state: &Lifecycle, job: JobId) -> Result<(), OracleViolation> {
    if !state.released {
        return Err(OracleViolation::EventBeforeRelease(job));
    }
    if !state.activated {
        return Err(OracleViolation::EventBeforeActivation(job));
    }
    if state.terminal() {
        return Err(OracleViolation::EventAfterTerminal(job));
    }
    Ok(())
}

/// Cross-checks every record against its replayed lifecycle.
fn check_records(
    report: &VoReport,
    jobs: &HashMap<JobId, Lifecycle>,
) -> Result<(), OracleViolation> {
    for job in jobs.keys() {
        if !report.records.iter().any(|r| r.job_id == *job) {
            return Err(OracleViolation::UnknownJob(*job));
        }
    }
    for r in &report.records {
        let Some(state) = jobs.get(&r.job_id) else {
            // A record without trace events: the job never even released
            // in the trace — a missing-release corruption.
            return Err(OracleViolation::RecordMismatch {
                job: r.job_id,
                field: "released",
            });
        };
        let mismatch = |field| OracleViolation::RecordMismatch {
            job: r.job_id,
            field,
        };
        if state.admissible != r.admissible {
            return Err(mismatch("admissible"));
        }
        if state.activated != r.cost.is_some() || state.activated != r.planned_makespan.is_some() {
            return Err(mismatch("activated"));
        }
        if state.breaks != r.breaks {
            return Err(mismatch("breaks"));
        }
        if state.switches != r.switches {
            return Err(mismatch("switches"));
        }
        if state.migrations != r.migrations {
            return Err(mismatch("migrations"));
        }
        if state.dropped != r.dropped {
            return Err(mismatch("dropped"));
        }
        if state.migrations > 0 && r.home_domain != state.home {
            return Err(mismatch("home_domain"));
        }
        if state.activated {
            // TTL is recomputable: survival until the first break, or the
            // whole planned runtime when nothing broke.
            let planned = r.planned_makespan.expect("activated record has a makespan");
            let until = state.first_break.unwrap_or(planned);
            let expected = until.saturating_since(r.release);
            if r.time_to_live != Some(expected) {
                return Err(OracleViolation::TtlMismatch { job: r.job_id });
            }
        } else if r.time_to_live.is_some() {
            return Err(OracleViolation::TtlMismatch { job: r.job_id });
        }
    }
    Ok(())
}

/// Cross-checks the report's fault summary against the trace.
fn check_fault_accounting(report: &VoReport, trace: &CampaignTrace) -> Result<(), OracleViolation> {
    use crate::trace::BreakKind;
    let count = |pred: &dyn Fn(&CampaignEvent) -> bool| trace.count(pred);
    let f = &report.faults;
    let checks: [(&'static str, usize, usize); 12] = [
        (
            "outages_injected",
            count(&|e| matches!(e, CampaignEvent::Outage { .. })),
            f.outages_injected,
        ),
        (
            "degradations_injected",
            count(&|e| matches!(e, CampaignEvent::Degraded { .. })),
            f.degradations_injected,
        ),
        (
            "transfer_faults_injected",
            count(&|e| matches!(e, CampaignEvent::TransferFaultInjected { .. })),
            f.transfer_faults_injected,
        ),
        (
            "transfer_faults_absorbed",
            count(&|e| matches!(e, CampaignEvent::TransferAbsorbed { .. })),
            f.transfer_faults_absorbed,
        ),
        (
            "breaks_by_perturbation",
            count(&|e| {
                matches!(
                    e,
                    CampaignEvent::Broken {
                        kind: BreakKind::Perturbation,
                        ..
                    }
                )
            }),
            f.breaks_by_perturbation,
        ),
        (
            "breaks_by_overrun",
            count(&|e| {
                matches!(
                    e,
                    CampaignEvent::Broken {
                        kind: BreakKind::Overrun,
                        ..
                    }
                )
            }),
            f.breaks_by_overrun,
        ),
        (
            "breaks_by_outage",
            count(&|e| {
                matches!(
                    e,
                    CampaignEvent::Broken {
                        kind: BreakKind::Outage,
                        ..
                    }
                )
            }),
            f.breaks_by_outage,
        ),
        (
            "breaks_by_transfer_fault",
            count(&|e| {
                matches!(
                    e,
                    CampaignEvent::Broken {
                        kind: BreakKind::TransferFault,
                        ..
                    }
                )
            }),
            f.breaks_by_transfer_fault,
        ),
        (
            "switches",
            count(&|e| matches!(e, CampaignEvent::Switched { .. })),
            f.switches,
        ),
        (
            "replans",
            count(&|e| matches!(e, CampaignEvent::Replanned { .. })),
            f.replans,
        ),
        (
            "migrations",
            count(&|e| matches!(e, CampaignEvent::Migrated { .. })),
            f.migrations,
        ),
        (
            "drops",
            count(&|e| matches!(e, CampaignEvent::Dropped { .. })),
            f.drops,
        ),
    ];
    for (field, from_trace, from_report) in checks {
        if from_trace != from_report {
            return Err(OracleViolation::FaultAccountingMismatch {
                field,
                from_trace,
                from_report,
            });
        }
    }
    Ok(())
}

/// One job's final state, for the structural audit.
#[derive(Debug)]
pub struct FinalJobState<'a> {
    /// The (planning) job.
    pub job: &'a Job,
    /// Its final placements, per task.
    pub placements: &'a HashMap<TaskId, Placement>,
    /// Whether the job was dropped.
    pub dropped: bool,
    /// How many breaks it suffered.
    pub breaks: usize,
}

/// Structural audit of the final resource pool against the jobs' final
/// placements.
///
/// Checks, per node: reservations are sorted and never overlap (no
/// double-booking across jobs and background load); every task-owned
/// reservation belongs to a known job, covers a placed task on the same
/// node, and lies inside that placement's window. Per unbroken, undropped
/// job: precedence holds — no consumer window starts before each
/// producer's window ends (transfer staging lives inside the consumer's
/// window) — and the job never overlaps itself on a node.
///
/// # Errors
///
/// Returns the first [`OracleViolation`] found.
pub fn audit_final_state(
    states: &[FinalJobState<'_>],
    pool: &ResourcePool,
) -> Result<(), OracleViolation> {
    let by_job: HashMap<JobId, &FinalJobState<'_>> =
        states.iter().map(|s| (s.job.id(), s)).collect();
    for node in pool.nodes() {
        let mut prev_end: Option<SimTime> = None;
        for r in pool.timetable(node.id()).iter() {
            if let Some(end) = prev_end {
                if r.window().start() < end {
                    return Err(OracleViolation::DoubleBooking {
                        node: node.id().index(),
                    });
                }
            }
            prev_end = Some(r.window().end());
            let ReservationOwner::Task(gid) = r.owner() else {
                continue;
            };
            let Some(state) = by_job.get(&gid.job) else {
                return Err(OracleViolation::UnknownReservationOwner(gid.job));
            };
            let Some(p) = state.placements.get(&gid.task) else {
                return Err(OracleViolation::ReservationWithoutPlacement {
                    job: gid.job,
                    task: gid.task,
                });
            };
            let inside = p.node == node.id()
                && r.window().start() >= p.window.start()
                && r.window().end() <= p.window.end();
            if !inside {
                return Err(OracleViolation::ReservationOutsidePlacement {
                    job: gid.job,
                    task: gid.task,
                });
            }
        }
    }
    for state in states {
        if state.breaks > 0 || state.dropped {
            continue;
        }
        let job_id = state.job.id();
        for e in state.job.edges() {
            let (Some(from), Some(to)) = (
                state.placements.get(&e.from()),
                state.placements.get(&e.to()),
            ) else {
                return Err(OracleViolation::ReservationWithoutPlacement {
                    job: job_id,
                    task: e.to(),
                });
            };
            if to.window.start() < from.window.end() {
                return Err(OracleViolation::PrecedenceViolation { job: job_id });
            }
        }
        let placements: Vec<&Placement> = state.placements.values().collect();
        for (i, a) in placements.iter().enumerate() {
            for b in &placements[i + 1..] {
                if a.node == b.node && a.window.overlaps(b.window) {
                    return Err(OracleViolation::DoubleBooking {
                        node: a.node.index(),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{run_campaign, CampaignConfig};
    use crate::trace::BreakKind;

    fn traced_report() -> VoReport {
        run_campaign(&CampaignConfig {
            jobs: 15,
            perturbations: 25,
            collect_trace: true,
            ..CampaignConfig::default()
        })
    }

    #[test]
    fn clean_campaign_passes() {
        let report = traced_report();
        audit(&report).expect("real campaign traces are oracle-clean");
    }

    #[test]
    fn missing_trace_is_rejected() {
        let mut report = traced_report();
        report.trace = None;
        assert_eq!(audit(&report), Err(OracleViolation::MissingTrace));
    }

    #[test]
    fn time_reversal_is_rejected() {
        let mut report = traced_report();
        let trace = report.trace.as_mut().expect("trace collected");
        assert!(trace.len() >= 2, "campaign produced events");
        // Corrupt only the clock: push the first event past the second,
        // leaving the event order (and thus every lifecycle) intact.
        let events = trace.events_mut();
        let t1 = events[1].0;
        events[0].0 = SimTime::from_ticks(t1.ticks() + 1);
        assert!(matches!(
            audit(&report),
            Err(OracleViolation::NonMonotoneTime { .. })
        ));
    }

    #[test]
    fn phantom_break_is_rejected() {
        let mut report = traced_report();
        let job = report.records[0].job_id;
        let trace = report.trace.as_mut().expect("trace collected");
        let last = trace.events().last().expect("non-empty").0;
        trace.events_mut().push((
            last,
            CampaignEvent::Broken {
                job,
                kind: BreakKind::Overrun,
            },
        ));
        assert!(audit(&report).is_err());
    }

    #[test]
    fn counter_tampering_is_rejected() {
        let mut report = traced_report();
        report.faults.breaks_by_perturbation += 1;
        assert!(matches!(
            audit(&report),
            Err(OracleViolation::FaultAccountingMismatch { .. })
        ));
    }
}
