//! The metascheduler: grouping user jobs into strategy flows.
//!
//! §2, Fig. 1: "Users submit jobs to the metascheduler which distributes
//! job-flows between processor node domains according to the selected
//! scheduling and resource co-allocation strategy Si, Sj or Sk."

use std::collections::HashMap;

use gridsched_core::strategy::StrategyKind;
use gridsched_metrics::telemetry::{Counter, Telemetry};
use gridsched_model::job::Job;

/// How the metascheduler assigns incoming jobs to strategy flows.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowAssignment {
    /// Every job joins the same flow (single-strategy experiments).
    Single(StrategyKind),
    /// Jobs are dealt round-robin over the listed flows.
    RoundRobin(Vec<StrategyKind>),
    /// Jobs whose task count is at or above the threshold go to the first
    /// kind (typically a coarse/cheap strategy), the rest to the second.
    BySize {
        /// Task-count threshold.
        threshold: usize,
        /// Flow for jobs with `task_count >= threshold`.
        large: StrategyKind,
        /// Flow for smaller jobs.
        small: StrategyKind,
    },
}

/// Assigns jobs to flows and keeps per-flow counters.
///
/// # Examples
///
/// ```
/// use gridsched_core::strategy::StrategyKind;
/// use gridsched_flow::metascheduler::{FlowAssignment, Metascheduler};
/// use gridsched_model::fixtures::fig2_job;
///
/// let mut meta = Metascheduler::new(FlowAssignment::RoundRobin(vec![
///     StrategyKind::S1,
///     StrategyKind::S2,
/// ]));
/// let job = fig2_job();
/// assert_eq!(meta.assign(&job), StrategyKind::S1);
/// assert_eq!(meta.assign(&job), StrategyKind::S2);
/// assert_eq!(meta.assign(&job), StrategyKind::S1);
/// ```
#[derive(Debug, Clone)]
pub struct Metascheduler {
    assignment: FlowAssignment,
    next_flow: usize,
    counts: HashMap<StrategyKind, usize>,
    telemetry: Telemetry,
}

impl Metascheduler {
    /// Creates a metascheduler with the given assignment rule.
    ///
    /// # Panics
    ///
    /// Panics if a round-robin assignment lists no flows.
    #[must_use]
    pub fn new(assignment: FlowAssignment) -> Self {
        Metascheduler::with_telemetry(assignment, &Telemetry::disabled())
    }

    /// [`Metascheduler::new`] with a telemetry recorder attached: every
    /// [`Metascheduler::assign`] call bumps [`Counter::FlowAssignments`].
    ///
    /// # Panics
    ///
    /// Panics if a round-robin assignment lists no flows.
    #[must_use]
    pub fn with_telemetry(assignment: FlowAssignment, telemetry: &Telemetry) -> Self {
        if let FlowAssignment::RoundRobin(kinds) = &assignment {
            assert!(!kinds.is_empty(), "round-robin needs at least one flow");
        }
        Metascheduler {
            assignment,
            next_flow: 0,
            counts: HashMap::new(),
            telemetry: telemetry.clone(),
        }
    }

    /// Assigns `job` to a flow and returns the flow's strategy kind.
    pub fn assign(&mut self, job: &Job) -> StrategyKind {
        self.telemetry.incr(Counter::FlowAssignments);
        let kind = match &self.assignment {
            FlowAssignment::Single(kind) => *kind,
            FlowAssignment::RoundRobin(kinds) => {
                let kind = kinds[self.next_flow % kinds.len()];
                self.next_flow += 1;
                kind
            }
            FlowAssignment::BySize {
                threshold,
                large,
                small,
            } => {
                if job.task_count() >= *threshold {
                    *large
                } else {
                    *small
                }
            }
        };
        *self.counts.entry(kind).or_insert(0) += 1;
        kind
    }

    /// How many jobs each flow has received so far.
    #[must_use]
    pub fn flow_count(&self, kind: StrategyKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::{fig2_job, pipeline_job};
    use gridsched_model::ids::JobId;
    use gridsched_sim::time::SimDuration;

    #[test]
    fn single_assignment_is_constant() {
        let mut meta = Metascheduler::new(FlowAssignment::Single(StrategyKind::S3));
        let job = fig2_job();
        for _ in 0..5 {
            assert_eq!(meta.assign(&job), StrategyKind::S3);
        }
        assert_eq!(meta.flow_count(StrategyKind::S3), 5);
        assert_eq!(meta.flow_count(StrategyKind::S1), 0);
    }

    #[test]
    fn by_size_splits_on_threshold() {
        let mut meta = Metascheduler::new(FlowAssignment::BySize {
            threshold: 4,
            large: StrategyKind::S3,
            small: StrategyKind::S2,
        });
        let big = fig2_job(); // 6 tasks
        let small = pipeline_job(JobId::new(1), &[10.0, 10.0], SimDuration::from_ticks(50));
        assert_eq!(meta.assign(&big), StrategyKind::S3);
        assert_eq!(meta.assign(&small), StrategyKind::S2);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_round_robin_rejected() {
        let _ = Metascheduler::new(FlowAssignment::RoundRobin(Vec::new()));
    }
}
