//! The metascheduler: the top tier of the paper's hierarchy.
//!
//! §2, Fig. 1: "Users submit jobs to the metascheduler which distributes
//! job-flows between processor node domains according to the selected
//! scheduling and resource co-allocation strategy Si, Sj or Sk."
//!
//! The metascheduler performs three dispatch duties:
//!
//! 1. **Flow assignment** ([`Metascheduler::assign`]): which strategy
//!    flow a submitted job joins;
//! 2. **Domain selection** (`select_domain`, crate-private): which
//!    domain's `JobManager` homes an activated supporting schedule — the
//!    domain holding the majority of its reserved ticks;
//! 3. **Inter-domain migration** (`Metascheduler::rehome`,
//!    crate-private): when a reallocation re-places a job's schedule so
//!    its tick majority moves, the job is handed off between managers.

use std::collections::HashMap;

use gridsched_core::distribution::Placement;
use gridsched_core::strategy::StrategyKind;
use gridsched_metrics::telemetry::{Counter, Telemetry};
use gridsched_model::ids::{DomainId, JobId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;

use crate::job_manager::{ActiveJob, JobHandle, JobManager};

/// How the metascheduler assigns incoming jobs to strategy flows.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowAssignment {
    /// Every job joins the same flow (single-strategy experiments).
    Single(StrategyKind),
    /// Jobs are dealt round-robin over the listed flows.
    RoundRobin(Vec<StrategyKind>),
    /// Jobs whose task count is at or above the threshold go to the first
    /// kind (typically a coarse/cheap strategy), the rest to the second.
    BySize {
        /// Task-count threshold.
        threshold: usize,
        /// Flow for jobs with `task_count >= threshold`.
        large: StrategyKind,
        /// Flow for smaller jobs.
        small: StrategyKind,
    },
}

/// Assigns jobs to flows and keeps per-flow counters.
///
/// # Examples
///
/// ```
/// use gridsched_core::strategy::StrategyKind;
/// use gridsched_flow::metascheduler::{FlowAssignment, Metascheduler};
/// use gridsched_model::fixtures::fig2_job;
///
/// let mut meta = Metascheduler::new(FlowAssignment::RoundRobin(vec![
///     StrategyKind::S1,
///     StrategyKind::S2,
/// ]));
/// let job = fig2_job();
/// assert_eq!(meta.assign(&job), StrategyKind::S1);
/// assert_eq!(meta.assign(&job), StrategyKind::S2);
/// assert_eq!(meta.assign(&job), StrategyKind::S1);
/// ```
#[derive(Debug, Clone)]
pub struct Metascheduler {
    assignment: FlowAssignment,
    next_flow: usize,
    counts: HashMap<StrategyKind, usize>,
    telemetry: Telemetry,
    /// One job manager per domain, ascending by domain id (the order of
    /// [`ResourcePool::domain_registry`]).
    managers: Vec<JobManager>,
    /// Global activation counter: every admitted job gets the next value,
    /// giving cross-domain scans a total order identical to the
    /// pre-hierarchy flat job vector.
    next_seq: u64,
}

impl Metascheduler {
    /// Creates a metascheduler with the given assignment rule.
    ///
    /// # Panics
    ///
    /// Panics if a round-robin assignment lists no flows.
    #[must_use]
    pub fn new(assignment: FlowAssignment) -> Self {
        Metascheduler::with_telemetry(assignment, &Telemetry::disabled())
    }

    /// [`Metascheduler::new`] with a telemetry recorder attached: every
    /// [`Metascheduler::assign`] call bumps [`Counter::FlowAssignments`].
    ///
    /// # Panics
    ///
    /// Panics if a round-robin assignment lists no flows.
    #[must_use]
    pub fn with_telemetry(assignment: FlowAssignment, telemetry: &Telemetry) -> Self {
        if let FlowAssignment::RoundRobin(kinds) = &assignment {
            assert!(!kinds.is_empty(), "round-robin needs at least one flow");
        }
        Metascheduler {
            assignment,
            next_flow: 0,
            counts: HashMap::new(),
            telemetry: telemetry.clone(),
            managers: Vec::new(),
            next_seq: 0,
        }
    }

    /// Builds one job manager per domain of the pool's registry
    /// (ascending). An empty registry (empty pool) still gets a single
    /// domain-0 manager so the dispatcher always has somewhere to send
    /// work.
    pub(crate) fn init_domains(&mut self, domains: &[DomainId]) {
        self.managers = if domains.is_empty() {
            vec![JobManager::new(DomainId::new(0))]
        } else {
            domains.iter().copied().map(JobManager::new).collect()
        };
    }

    /// The per-domain managers, ascending by domain id.
    pub(crate) fn managers(&self) -> &[JobManager] {
        &self.managers
    }

    /// Mutable access to one manager.
    pub(crate) fn manager_mut(&mut self, index: usize) -> &mut JobManager {
        &mut self.managers[index]
    }

    /// Index of the manager owning `domain`.
    ///
    /// # Panics
    ///
    /// Panics if no manager schedules that domain.
    pub(crate) fn manager_index(&self, domain: DomainId) -> usize {
        // A collapsed (single-manager) flow layer serves every domain from
        // manager 0 — the monolithic baseline of the hierarchy benches.
        if self.managers.len() == 1 {
            return 0;
        }
        self.managers
            .iter()
            .position(|m| m.domain() == domain)
            .expect("every pool domain has a job manager")
    }

    /// Hands an activated job to its home domain's manager, stamping the
    /// global activation sequence number.
    pub(crate) fn admit_active(&mut self, home: DomainId, mut job: ActiveJob) -> JobHandle {
        job.seq = self.next_seq;
        self.next_seq += 1;
        let manager = self.manager_index(home);
        self.managers[manager].active.push(job);
        JobHandle {
            manager,
            slot: self.managers[manager].active.len() - 1,
        }
    }

    /// The job a handle addresses.
    pub(crate) fn job(&self, h: JobHandle) -> &ActiveJob {
        &self.managers[h.manager].active[h.slot]
    }

    /// Mutable access to the job a handle addresses.
    pub(crate) fn job_mut(&mut self, h: JobHandle) -> &mut ActiveJob {
        &mut self.managers[h.manager].active[h.slot]
    }

    /// Finds the live (not dropped) job with this id, if any.
    pub(crate) fn find_live(&self, id: JobId) -> Option<JobHandle> {
        self.jobs()
            .find(|(_, a)| a.job.id() == id && !a.dropped)
            .map(|(h, _)| h)
    }

    /// Iterates every job across all managers (dropped included), in
    /// manager/slot storage order — NOT the deterministic global order;
    /// use [`Metascheduler::handles_by_seq`] when order matters.
    pub(crate) fn jobs(&self) -> impl Iterator<Item = (JobHandle, &ActiveJob)> {
        self.managers.iter().enumerate().flat_map(|(m, mgr)| {
            mgr.active
                .iter()
                .enumerate()
                .map(move |(slot, a)| (JobHandle { manager: m, slot }, a))
        })
    }

    /// Every job's handle in global activation order — the deterministic
    /// scan order of the pre-hierarchy flat job vector.
    pub(crate) fn handles_by_seq(&self) -> Vec<JobHandle> {
        let mut handles: Vec<(u64, JobHandle)> = self.jobs().map(|(h, a)| (a.seq, h)).collect();
        handles.sort_unstable_by_key(|&(seq, _)| seq);
        handles.into_iter().map(|(_, h)| h).collect()
    }

    /// Migrates a job between managers after a reallocation moved its
    /// tick majority. Returns the job's new handle; every other handle
    /// into the source manager may be invalidated (`swap_remove`).
    pub(crate) fn rehome(&mut self, h: JobHandle, to: DomainId) -> JobHandle {
        let target = self.manager_index(to);
        if target == h.manager {
            return h;
        }
        let job = self.managers[h.manager].active.swap_remove(h.slot);
        self.managers[target].active.push(job);
        JobHandle {
            manager: target,
            slot: self.managers[target].active.len() - 1,
        }
    }

    /// Total arrivals queued across every domain's admission queue.
    pub(crate) fn total_queued(&self) -> usize {
        self.managers.iter().map(|m| m.queue.len()).sum()
    }

    /// The manager a fresh arrival should queue under: the least loaded,
    /// ties to the lowest domain id (managers are stored ascending).
    pub(crate) fn least_loaded(&self) -> usize {
        self.managers
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.load())
            .map(|(i, _)| i)
            .expect("init_domains always installs at least one manager")
    }

    /// Assigns `job` to a flow and returns the flow's strategy kind.
    pub fn assign(&mut self, job: &Job) -> StrategyKind {
        self.telemetry.incr(Counter::FlowAssignments);
        let kind = match &self.assignment {
            FlowAssignment::Single(kind) => *kind,
            FlowAssignment::RoundRobin(kinds) => {
                let kind = kinds[self.next_flow % kinds.len()];
                self.next_flow += 1;
                kind
            }
            FlowAssignment::BySize {
                threshold,
                large,
                small,
            } => {
                if job.task_count() >= *threshold {
                    *large
                } else {
                    *small
                }
            }
        };
        *self.counts.entry(kind).or_insert(0) += 1;
        kind
    }

    /// How many jobs each flow has received so far.
    #[must_use]
    pub fn flow_count(&self, kind: StrategyKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }
}

/// The metascheduler's domain-selection rule: the home domain of a set of
/// placements is the domain holding the most reserved ticks, ties
/// resolved to the lowest domain id. The job manager of this domain owns
/// the job's supporting schedule.
pub(crate) fn select_domain<'p>(
    placements: impl Iterator<Item = &'p Placement>,
    pool: &ResourcePool,
) -> DomainId {
    let mut ticks: std::collections::BTreeMap<DomainId, u64> = std::collections::BTreeMap::new();
    for p in placements {
        *ticks.entry(pool.node(p.node).domain()).or_insert(0) += p.window.duration().ticks();
    }
    let mut best: Option<(DomainId, u64)> = None;
    for (d, t) in ticks {
        // Strictly-greater keeps the lowest domain id on ties (the map
        // iterates ascending).
        if best.is_none_or(|(_, bt)| t > bt) {
            best = Some((d, t));
        }
    }
    best.map_or(DomainId::new(0), |(d, _)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::{fig2_job, pipeline_job};
    use gridsched_model::ids::JobId;
    use gridsched_sim::time::SimDuration;

    #[test]
    fn single_assignment_is_constant() {
        let mut meta = Metascheduler::new(FlowAssignment::Single(StrategyKind::S3));
        let job = fig2_job();
        for _ in 0..5 {
            assert_eq!(meta.assign(&job), StrategyKind::S3);
        }
        assert_eq!(meta.flow_count(StrategyKind::S3), 5);
        assert_eq!(meta.flow_count(StrategyKind::S1), 0);
    }

    #[test]
    fn by_size_splits_on_threshold() {
        let mut meta = Metascheduler::new(FlowAssignment::BySize {
            threshold: 4,
            large: StrategyKind::S3,
            small: StrategyKind::S2,
        });
        let big = fig2_job(); // 6 tasks
        let small = pipeline_job(JobId::new(1), &[10.0, 10.0], SimDuration::from_ticks(50));
        assert_eq!(meta.assign(&big), StrategyKind::S3);
        assert_eq!(meta.assign(&small), StrategyKind::S2);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_round_robin_rejected() {
        let _ = Metascheduler::new(FlowAssignment::RoundRobin(Vec::new()));
    }

    fn dummy_active(record: usize) -> ActiveJob {
        use gridsched_data::network::TransferModel;
        use gridsched_data::policy::{DataPolicy, DataPolicyKind};
        use gridsched_model::estimate::EstimateScenario;
        use gridsched_sim::time::SimTime;
        ActiveJob {
            seq: 0,
            record,
            job: fig2_job(),
            policy: DataPolicy::new(DataPolicyKind::RemoteAccess, TransferModel::default(), None),
            scenario: EstimateScenario::BEST,
            activation: SimTime::ZERO,
            deadline_abs: SimTime::from_ticks(100),
            current: HashMap::new(),
            reservations: HashMap::new(),
            task_factors: Vec::new(),
            alternatives: Vec::new(),
            reference_starts: Vec::new(),
            reference_runtime: 0.0,
            pending_overrun: None,
            first_break: None,
            dropped: false,
            completed: None,
        }
    }

    #[test]
    fn empty_registry_still_gets_one_manager() {
        let mut meta = Metascheduler::new(FlowAssignment::Single(StrategyKind::S1));
        meta.init_domains(&[]);
        assert_eq!(meta.managers().len(), 1);
        assert_eq!(meta.managers()[0].domain(), DomainId::new(0));
        assert_eq!(meta.least_loaded(), 0);
    }

    #[test]
    fn admit_stamps_global_sequence_and_rehome_migrates() {
        let mut meta = Metascheduler::new(FlowAssignment::Single(StrategyKind::S1));
        meta.init_domains(&[DomainId::new(0), DomainId::new(1)]);

        let h0 = meta.admit_active(DomainId::new(1), dummy_active(0));
        let h1 = meta.admit_active(DomainId::new(0), dummy_active(1));
        let h2 = meta.admit_active(DomainId::new(1), dummy_active(2));
        assert_eq!(meta.job(h0).seq, 0);
        assert_eq!(meta.job(h1).seq, 1);
        assert_eq!(meta.job(h2).seq, 2);
        // Global scan order is activation order regardless of sharding.
        let seqs: Vec<u64> = meta
            .handles_by_seq()
            .into_iter()
            .map(|h| meta.job(h).seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);

        // Rehoming to the same domain is a no-op; to another it moves the
        // job and yields a fresh handle.
        assert_eq!(meta.rehome(h1, DomainId::new(0)), h1);
        let moved = meta.rehome(h0, DomainId::new(0));
        assert_eq!(moved.manager, meta.manager_index(DomainId::new(0)));
        assert_eq!(meta.job(moved).seq, 0);
        assert_eq!(
            meta.managers()[meta.manager_index(DomainId::new(1))].load(),
            1
        );
        // The scan order survives the migration.
        let seqs: Vec<u64> = meta
            .handles_by_seq()
            .into_iter()
            .map(|h| meta.job(h).seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn find_live_skips_dropped_jobs() {
        let mut meta = Metascheduler::new(FlowAssignment::Single(StrategyKind::S1));
        meta.init_domains(&[DomainId::new(0)]);
        let h = meta.admit_active(DomainId::new(0), dummy_active(0));
        let id = meta.job(h).job.id();
        assert_eq!(meta.find_live(id), Some(h));
        meta.job_mut(h).dropped = true;
        assert_eq!(meta.find_live(id), None);
    }
}
