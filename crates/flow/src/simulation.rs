//! End-to-end virtual-organization campaign simulation.
//!
//! Reproduces the paper's §4 experimental setup: a random pool of 20–30
//! nodes in three performance groups, background load from independent
//! flows, a stream of random compound jobs with fixed completion times,
//! and *resource dynamics* — external reservations appearing over time and
//! task overruns — that break active schedules and trigger the dynamic
//! reallocation mechanism of §2.
//!
//! One run produces a [`VoReport`] carrying everything Figs. 3 and 4 plot:
//! admissible share, collision distribution by node group, per-group task
//! load, job costs, task wall times, schedule time-to-live and start-time
//! deviations.

use std::collections::HashMap;

use gridsched_core::distribution::Placement;
use gridsched_core::method::ScheduleRequest;
use gridsched_core::session::PlanningSession;
use gridsched_core::strategy::{Strategy, StrategyConfig, StrategyKind, SweepExecutorKind};
use gridsched_data::policy::DataPolicyKind;
use gridsched_metrics::load::GroupLoad;
use gridsched_metrics::telemetry::{Counter, SpanId, Telemetry};
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{GlobalTaskId, JobId, NodeId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::{Perf, PerfGroup};
use gridsched_model::timetable::ReservationOwner;
use gridsched_model::window::TimeWindow;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};
use gridsched_workload::background::{apply_background_load, BackgroundConfig};
use gridsched_workload::jobs::{generate_stream, JobConfig};
use gridsched_workload::pool::{generate_pool, PoolConfig};

use crate::driver::{drive, flow_event_budget, FlowEvent, FlowMachine};
use crate::faults::{Fault, FaultConfig, FaultKind, FaultPlan, FaultSummary};
use crate::job_manager::{transfer_exposed, ActiveJob, JobHandle};
use crate::metascheduler::{select_domain, FlowAssignment, Metascheduler};
use crate::report::{JobRecord, VoReport};
use crate::trace::BreakKind;

/// Configuration of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// How jobs are grouped into strategy flows.
    pub assignment: FlowAssignment,
    /// Number of compound jobs submitted.
    pub jobs: usize,
    /// Random-job shape parameters.
    pub job_config: JobConfig,
    /// Random-pool parameters.
    pub pool_config: PoolConfig,
    /// Initial background load level in `[0, 1)`.
    pub background_load: f64,
    /// Maximum gap between consecutive job releases.
    pub job_gap: SimDuration,
    /// Number of external perturbation events (independent local jobs
    /// seizing node time) over the horizon.
    pub perturbations: usize,
    /// Min/max length of a perturbation reservation, in ticks.
    pub perturbation_len: (u64, u64),
    /// Injected faults: node outages, degradations and transfer faults.
    /// The default injects nothing.
    pub faults: FaultConfig,
    /// Campaign horizon.
    pub horizon: SimDuration,
    /// Network model strategies plan with.
    pub transfer_model: gridsched_data::network::TransferModel,
    /// Range the per-job slowdown factor is drawn from (actual runtimes =
    /// nominal × factor). The paper's workload spreads runtimes 2–3×;
    /// `(1.0, 1.0)` makes every job run exactly at its optimistic
    /// estimate (useful in tests).
    pub slowdown_range: (f64, f64),
    /// Half-width of the per-task jitter added to the job's slowdown
    /// factor. `0.0` makes all tasks of a job slow down uniformly.
    pub task_jitter: f64,
    /// Collect a chronological [`crate::trace::CampaignTrace`] of every
    /// activation, break, switch, replan and drop.
    pub collect_trace: bool,
    /// Force every strategy's scenario sweep sequential instead of the
    /// default scoped-thread sweep. The campaign must be bit-identical
    /// either way (the determinism suite pins this); the flag exists so
    /// that baseline is expressible without touching planner code.
    pub sequential_planning: bool,
    /// Which scenario-sweep executor releases plan with
    /// ([`SweepExecutorKind::Auto`] is the persistent pool with its
    /// sequential fallback). All kinds are bit-identical — the chaos
    /// harness's executor axis runs the same campaign under each and
    /// asserts the trace fingerprints agree. `sequential_planning: true`
    /// overrides this to `Sequential` (it predates this knob and the
    /// benches still set it).
    pub executor: SweepExecutorKind,
    /// Collapse the flow layer to a single job manager serving every pool
    /// domain (the pre-hierarchy monolithic dispatcher). The campaign must
    /// be bit-identical either way — cross-domain scans order by global
    /// activation sequence, so sharding is pure bookkeeping (the
    /// determinism suite pins this); the flag exists so the hierarchy
    /// benches can measure that bookkeeping against a true monolithic
    /// baseline on the *same* pool and workload.
    pub single_manager: bool,
    /// Urgency escalation (§5's dynamic priority change): when a broken
    /// job's remaining slack falls below this multiple of its optimistic
    /// remaining work, it replans for speed (`MinTime`) instead of cost.
    /// `None` disables escalation.
    pub urgency_slack_factor: Option<f64>,
    /// Master seed; every random stream forks from it.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            assignment: FlowAssignment::Single(StrategyKind::S1),
            jobs: 150,
            job_config: JobConfig::default(),
            pool_config: PoolConfig::default(),
            background_load: 0.3,
            job_gap: SimDuration::from_ticks(6),
            perturbations: 150,
            perturbation_len: (2, 8),
            faults: FaultConfig::none(),
            horizon: SimDuration::from_ticks(1_000),
            transfer_model: gridsched_data::network::TransferModel::default(),
            slowdown_range: (1.0, EstimateScenario::WORST_FACTOR),
            task_jitter: 0.15,
            collect_trace: false,
            sequential_planning: false,
            executor: SweepExecutorKind::default(),
            single_manager: false,
            urgency_slack_factor: Some(1.5),
            seed: 0x9d5c,
        }
    }
}

/// Runs one campaign and aggregates the paper's metrics.
///
/// Deterministic: the same configuration (including seed) always yields the
/// same report.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> VoReport {
    run_campaign_instrumented(config, &Telemetry::disabled())
}

/// [`run_campaign`] with a telemetry recorder attached.
///
/// The whole run executes under a `campaign` root span with `setup`,
/// `fault_plan`, per-job `release` (nesting the strategy sweep's own
/// spans), `replan` and `finalize` children; every QoS event of the
/// campaign — releases, activations, breaks, switches, replans,
/// migrations, drops, fault injections and absorptions — lands in the
/// matching [`Counter`]. Instrumentation is strictly observational: the
/// report is bit-identical to [`run_campaign`] on the same config (the
/// determinism suite pins this).
#[must_use]
pub fn run_campaign_instrumented(config: &CampaignConfig, telemetry: &Telemetry) -> VoReport {
    let campaign_span = telemetry.span("campaign");
    let root = campaign_span.id();
    let setup = telemetry.span_under("setup", root);
    let campaign = Campaign::new(config, telemetry, root);
    drop(setup);
    campaign.run()
}

/// The campaign dynamics engine: pool state, active schedules, break
/// handling and finalization. `pub(crate)` so [`crate::online`] can drive
/// the exact same machinery from a streaming event loop.
pub(crate) struct Campaign<'a> {
    pub(crate) config: &'a CampaignConfig,
    pub(crate) pool: ResourcePool,
    /// The top-tier dispatcher; its per-domain job managers hold every
    /// active job's live state.
    pub(crate) meta: Metascheduler,
    pub(crate) records: Vec<JobRecord>,
    pub(crate) horizon_end: SimTime,
    pub(crate) activation_rng: SimRng,
    pub(crate) next_background_tag: u64,
    pub(crate) faults: FaultSummary,
    pub(crate) trace: Option<crate::trace::CampaignTrace>,
    pub(crate) telemetry: Telemetry,
    /// The `campaign` root span every top-level phase parents under.
    pub(crate) root: Option<SpanId>,
    /// Reused buffer for outage gap-blocking (`free_windows_into`).
    pub(crate) gap_scratch: Vec<TimeWindow>,
}

impl FlowMachine for Campaign<'_> {
    fn settle(&mut self, now: SimTime) {
        self.settle_overruns(now);
    }

    fn on_release(&mut self, job: Job) {
        self.handle_release(job);
    }

    fn on_perturbation(&mut self, at: SimTime, node: NodeId, len: SimDuration) {
        self.handle_perturbation(at, node, len);
    }

    fn on_fault(&mut self, fault: Fault) {
        self.handle_fault(fault);
    }
}

impl<'a> Campaign<'a> {
    pub(crate) fn new(
        config: &'a CampaignConfig,
        telemetry: &Telemetry,
        root: Option<SpanId>,
    ) -> Self {
        let mut master = SimRng::seed_from(config.seed);
        let mut pool_rng = master.fork(1);
        let mut bg_rng = master.fork(2);
        let activation_rng = master.fork(4);

        let mut pool = generate_pool(&config.pool_config, &mut pool_rng);
        let bg = BackgroundConfig {
            load: config.background_load,
            horizon: config.horizon,
            ..BackgroundConfig::default()
        };
        if config.background_load > 0.0 {
            apply_background_load(&mut pool, &bg, &mut bg_rng);
        }
        // Spin the persistent sweep workers up front so the first strategy
        // sweep of the campaign doesn't pay the one-off thread spawn; every
        // later sweep reuses the same pool.
        let _ = gridsched_core::pool::WorkerPool::global();
        let mut meta = Metascheduler::with_telemetry(config.assignment.clone(), telemetry);
        if config.single_manager {
            meta.init_domains(&[]);
        } else {
            meta.init_domains(pool.domain_registry());
        }
        Campaign {
            config,
            pool,
            meta,
            records: Vec::with_capacity(config.jobs),
            horizon_end: SimTime::ZERO + config.horizon,
            activation_rng,
            next_background_tag: 1 << 32,
            faults: FaultSummary::default(),
            trace: config.collect_trace.then(crate::trace::CampaignTrace::new),
            telemetry: telemetry.clone(),
            root,
            gap_scratch: Vec::new(),
        }
    }

    /// The sweep executor releases plan with: `sequential_planning`
    /// (the older boolean baseline knob) wins, otherwise
    /// [`CampaignConfig::executor`].
    pub(crate) fn effective_executor(&self) -> SweepExecutorKind {
        if self.config.sequential_planning {
            SweepExecutorKind::Sequential
        } else {
            self.config.executor
        }
    }

    pub(crate) fn record_event(&mut self, at: SimTime, event: crate::trace::CampaignEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(at, event);
        }
    }

    /// Perturbation and fault events for one run, drawn from the
    /// campaign's dedicated streams. Shared with [`crate::online`] so both
    /// campaign flavours face identical dynamics per seed.
    pub(crate) fn dynamics_events(
        &mut self,
        pert_rng: &mut SimRng,
        fault_rng: &mut SimRng,
    ) -> Vec<FlowEvent> {
        let node_count = self.pool.len();
        let mut events = Vec::with_capacity(self.config.perturbations);
        for _ in 0..self.config.perturbations {
            let at = SimTime::from_ticks(pert_rng.uniform_u64(0, self.config.horizon.ticks()));
            let node = NodeId::new(pert_rng.uniform_u64(0, node_count as u64 - 1) as u32);
            let len = SimDuration::from_ticks(pert_rng.uniform_u64(
                self.config.perturbation_len.0,
                self.config.perturbation_len.1,
            ));
            events.push(FlowEvent::Perturbation { at, node, len });
        }
        let plan = FaultPlan::generate_instrumented(
            &self.config.faults,
            node_count,
            self.config.horizon,
            fault_rng,
            &self.telemetry,
            self.root,
        );
        events.extend(plan.faults().iter().copied().map(FlowEvent::Fault));
        events
    }

    fn run(self) -> VoReport {
        let mut master = SimRng::seed_from(self.config.seed);
        let mut jobs_rng = master.fork(3);
        let mut pert_rng = master.fork(5);
        let mut fault_rng = master.fork(6);

        let jobs = generate_stream(
            &self.config.job_config,
            self.config.jobs,
            self.config.job_gap,
            &mut jobs_rng,
        );
        let mut this = self;
        let mut events: Vec<FlowEvent> = jobs.into_iter().map(FlowEvent::Release).collect();
        events.extend(this.dynamics_events(&mut pert_rng, &mut fault_rng));

        // The shared event kernel drives the whole campaign; its budget is
        // a runaway guard (the machine schedules nothing itself).
        let budget = flow_event_budget(events.len());
        let mut this = drive(events, this, budget);
        this.settle_overruns(this.horizon_end);
        let finalize_span = this.telemetry.span_under("finalize", this.root);
        let report = this.finalize();
        drop(finalize_span);
        report
    }

    fn handle_release(&mut self, job: Job) {
        let release_span = self.telemetry.span_under("release", self.root);
        self.telemetry.incr(Counter::JobsReleased);
        let kind = self.meta.assign(&job);
        let config = StrategyConfig::for_kind(kind, &self.pool);
        let policy = config
            .policy()
            .clone()
            .with_transfer_model(self.config.transfer_model.clone());
        let config = config.with_policy(policy);
        // The job is handed off to the strategy whole: `generate_owned`
        // avoids the planning clone for fine-grain strategies.
        let job_id = job.id();
        let release = job.release();
        let strategy = Strategy::generate_owned_kind(
            job,
            &self.pool,
            &config,
            release,
            self.effective_executor(),
            &self.telemetry,
            release_span.id(),
        );
        let mut fast = 0;
        let mut slow = 0;
        for c in strategy.collisions() {
            if c.group.is_fast() {
                fast += 1;
            } else {
                slow += 1;
            }
        }
        let record = JobRecord {
            job_id,
            strategy: kind,
            release,
            admissible: strategy.is_admissible(),
            collisions_fast: fast,
            collisions_slow: slow,
            schedules: strategy.distributions().len(),
            scenario_multiplier: None,
            cost: None,
            mean_task_window: None,
            planned_makespan: None,
            start_deviation_ratio: None,
            time_to_live: None,
            data_traffic: None,
            nodes_used: None,
            home_domain: None,
            breaks: 0,
            switches: 0,
            migrations: 0,
            dropped: false,
        };
        let record_idx = self.records.len();
        let admissible = strategy.is_admissible();
        self.record_event(
            release,
            crate::trace::CampaignEvent::Released {
                job: job_id,
                admissible,
            },
        );
        self.records.push(record);
        if !admissible {
            return;
        }
        self.activate(strategy, config, record_idx, release, release_span.id());
    }

    /// Activates the supporting schedule matching the observed conditions:
    /// the tightest scenario covering the job's actual slowdown factor.
    pub(crate) fn activate(
        &mut self,
        strategy: Strategy,
        config: StrategyConfig,
        record_idx: usize,
        release: SimTime,
        parent: Option<SpanId>,
    ) {
        let _span = self.telemetry.span_under("activate", parent);
        self.telemetry.incr(Counter::JobsActivated);
        let planning_job = strategy.job().clone();
        let (lo, hi) = self.config.slowdown_range;
        let job_factor = if hi > lo {
            self.activation_rng.uniform_f64(lo, hi)
        } else {
            lo
        };
        let jitter_half = self.config.task_jitter;
        let task_factors: Vec<f64> = (0..planning_job.task_count())
            .map(|_| {
                let jitter = if jitter_half > 0.0 {
                    self.activation_rng.uniform_f64(-jitter_half, jitter_half)
                } else {
                    0.0
                };
                (job_factor + jitter).clamp(1.0, EstimateScenario::WORST_FACTOR)
            })
            .collect();
        let chosen = strategy
            .distributions()
            .iter()
            .filter(|d| d.scenario().multiplier() + 1e-9 >= job_factor)
            .min_by_key(|d| (d.scenario(), d.cost()))
            .or_else(|| strategy.distributions().iter().max_by_key(|d| d.scenario()))
            .expect("admissible strategy has a distribution")
            .clone();
        let alternatives: Vec<_> = strategy
            .distributions()
            .iter()
            .filter(|d| **d != chosen)
            .cloned()
            .collect();

        // The user's forecast is the optimistic (best-case) supporting
        // schedule; the realized deviation from it is measured when the
        // campaign finishes (Fig. 4c).
        let reference = &strategy.distributions()[0];
        let reference_starts: Vec<SimTime> = reference
            .placements()
            .iter()
            .map(|p| p.window.start())
            .collect();
        let reference_runtime = reference.makespan().saturating_since(release).ticks() as f64;

        let mut reservations = HashMap::new();
        for p in chosen.placements() {
            let id = self
                .pool
                .timetable_mut(p.node)
                .reserve(
                    p.window,
                    ReservationOwner::Task(GlobalTaskId {
                        job: planning_job.id(),
                        task: p.task,
                    }),
                )
                .expect("activated schedule was built against current availability");
            reservations.insert(p.task, id);
        }

        let record = &mut self.records[record_idx];
        record.planned_makespan = Some(chosen.makespan());
        record.scenario_multiplier = Some(chosen.scenario().multiplier());

        let deadline_abs = release.saturating_add(planning_job.deadline());
        let current: HashMap<TaskId, Placement> =
            chosen.placements().iter().map(|p| (p.task, *p)).collect();
        // Top-tier domain selection: the manager of the domain holding the
        // majority of the schedule's reserved ticks homes the job.
        let home = select_domain(current.values(), &self.pool);
        self.records[record_idx].home_domain = Some(home);
        self.telemetry
            .incr_domain(Counter::JobsActivated, u64::from(home.raw()));
        self.record_event(
            release,
            crate::trace::CampaignEvent::Activated {
                job: planning_job.id(),
                cost: chosen.cost(),
            },
        );
        let mut active = ActiveJob {
            seq: 0, // stamped by the metascheduler on admission
            record: record_idx,
            job: planning_job,
            policy: config.policy().clone(),
            scenario: chosen.scenario(),
            activation: release,
            deadline_abs,
            current,
            reservations,
            task_factors,
            alternatives,
            reference_starts,
            reference_runtime,
            pending_overrun: None,
            first_break: None,
            dropped: false,
            completed: None,
        };
        active.pending_overrun = next_overrun(&active, &self.pool, release);
        self.meta.admit_active(home, active);
    }

    /// Handles one external perturbation: an independent local job seizing
    /// `[at, at+len)` on `node`. Pending application-level reservations
    /// lose (local administering rules favour the resource owner); running
    /// tasks are never preempted (the paper's inseparability condition).
    pub(crate) fn handle_perturbation(&mut self, at: SimTime, node: NodeId, len: SimDuration) {
        if at >= self.horizon_end || len.is_zero() {
            return;
        }
        let window = TimeWindow::starting_at(at, len).expect("non-empty perturbation");
        // Collect pending victim tasks per job.
        let mut victims: Vec<(JobId, SimTime)> = Vec::new();
        for r in self.pool.timetable(node).conflicts_with(window) {
            if let ReservationOwner::Task(gid) = r.owner() {
                if r.window().start() > at {
                    victims.push((gid.job, at));
                }
            }
        }
        if victims.is_empty() {
            if self.pool.timetable(node).is_free(window) {
                let tag = self.next_background_tag;
                self.next_background_tag += 1;
                self.pool
                    .timetable_mut(node)
                    .reserve(window, ReservationOwner::Background(tag))
                    .expect("checked free");
                self.telemetry.incr(Counter::Perturbations);
            }
            return;
        }
        victims.sort_unstable();
        victims.dedup();
        for (job_id, tau) in victims {
            if let Some(h) = self.meta.find_live(job_id) {
                self.break_job(h, tau, BreakKind::Perturbation, &[], tau);
            }
        }
        if self.pool.timetable(node).is_free(window) {
            let tag = self.next_background_tag;
            self.next_background_tag += 1;
            self.pool
                .timetable_mut(node)
                .reserve(window, ReservationOwner::Background(tag))
                .expect("checked free");
            self.telemetry.incr(Counter::Perturbations);
            self.record_event(at, crate::trace::CampaignEvent::Perturbation { node });
        }
    }

    /// Dispatches one injected fault.
    pub(crate) fn handle_fault(&mut self, fault: Fault) {
        if fault.at >= self.horizon_end {
            return;
        }
        match fault.kind {
            FaultKind::Outage { len } => self.handle_outage(fault.at, fault.node, len),
            FaultKind::Degradation { factor } => {
                self.handle_degradation(fault.at, fault.node, factor);
            }
            FaultKind::TransferFault { retry } => {
                self.handle_transfer_fault(fault.at, fault.node, retry);
            }
        }
    }

    /// A node dies for `[at, at+len)`: every task reservation overlapping
    /// the window is voided. Pending victims are replanned as usual;
    /// already-running victims lose their partial execution and must
    /// *migrate* — restart on another node. The outage window itself is
    /// blocked so no replan lands inside it.
    fn handle_outage(&mut self, at: SimTime, node: NodeId, len: SimDuration) {
        if len.is_zero() {
            return;
        }
        let window = TimeWindow::starting_at(at, len).expect("non-empty outage");
        let voided = self.pool.timetable_mut(node).void_tasks_within(window);
        self.faults.outages_injected += 1;
        self.telemetry.incr(Counter::OutagesInjected);
        self.record_event(
            at,
            crate::trace::CampaignEvent::Outage {
                node,
                voided: voided.len(),
            },
        );
        // Block every remaining free gap of the outage window (background
        // reservations already occupying parts of it need no blocking).
        // The gap buffer is campaign-owned and reused across outages.
        let mut gaps = std::mem::take(&mut self.gap_scratch);
        self.pool
            .timetable(node)
            .free_windows_into(window, &mut gaps);
        for &gap in &gaps {
            let tag = self.next_background_tag;
            self.next_background_tag += 1;
            self.pool
                .timetable_mut(node)
                .reserve(gap, ReservationOwner::Background(tag))
                .expect("free_windows returned a free gap");
        }
        gaps.clear();
        self.gap_scratch = gaps;
        // Group victims by job; tasks already running at `at` are forced
        // migrations (their reservation is gone mid-execution).
        let mut victims: Vec<(JobId, Vec<TaskId>)> = Vec::new();
        for r in &voided {
            let ReservationOwner::Task(gid) = r.owner() else {
                continue;
            };
            let pos = match victims.iter().position(|(j, _)| *j == gid.job) {
                Some(p) => p,
                None => {
                    victims.push((gid.job, Vec::new()));
                    victims.len() - 1
                }
            };
            if r.window().start() <= at && !victims[pos].1.contains(&gid.task) {
                victims[pos].1.push(gid.task);
            }
        }
        for (job_id, forced) in victims {
            let Some(h) = self.meta.find_live(job_id) else {
                continue;
            };
            // Drop the stale reservation handles the outage voided.
            for r in &voided {
                if let ReservationOwner::Task(gid) = r.owner() {
                    if gid.job == job_id {
                        self.meta.job_mut(h).reservations.remove(&gid.task);
                    }
                }
            }
            self.break_job(h, at, BreakKind::Outage, &forced, at);
        }
    }

    /// A node's performance drops by `factor`: every remaining runtime on
    /// it inflates, which future replans see directly and active schedules
    /// feel as overruns.
    fn handle_degradation(&mut self, at: SimTime, node: NodeId, factor: f64) {
        let old = self.pool.node(node).perf().value();
        let degraded =
            Perf::new((old * factor).clamp(0.05, 1.0)).expect("clamped into a valid performance");
        self.pool.set_perf(node, degraded);
        self.faults.degradations_injected += 1;
        self.telemetry.incr(Counter::DegradationsInjected);
        self.record_event(at, crate::trace::CampaignEvent::Degraded { node });
        // Remaining runtimes on the node just grew: refresh the earliest
        // pending overrun of every job with a future placement there.
        // Each job's refresh is independent, but the scan keeps the global
        // activation order for determinism's sake.
        for h in self.meta.handles_by_seq() {
            let a = self.meta.job(h);
            if a.dropped {
                continue;
            }
            let affected = a
                .current
                .values()
                .any(|p| p.node == node && p.window.start() > at);
            if affected {
                let next = next_overrun(self.meta.job(h), &self.pool, at);
                self.meta.job_mut(h).pending_overrun = next;
            }
        }
    }

    /// An inter-domain transfer incident at `node`: every active job with
    /// a pending task whose input crosses the broken link re-draws the
    /// transfer (retry penalty) and replans — unless its policy is active
    /// replication, which reads a nearby replica and absorbs the fault.
    fn handle_transfer_fault(&mut self, at: SimTime, node: NodeId, retry: SimDuration) {
        self.faults.transfer_faults_injected += 1;
        self.telemetry.incr(Counter::TransferFaultsInjected);
        self.record_event(
            at,
            crate::trace::CampaignEvent::TransferFaultInjected { node },
        );
        // Scan in global activation order; [`transfer_exposed`] is the
        // shared inter-domain exposure test of both flow drivers.
        let mut absorbed: Vec<JobId> = Vec::new();
        let mut victims: Vec<JobId> = Vec::new();
        for h in self.meta.handles_by_seq() {
            let a = self.meta.job(h);
            if a.dropped {
                continue;
            }
            if !transfer_exposed(a, node, at, &self.pool) {
                continue;
            }
            if a.policy.kind() == DataPolicyKind::ActiveReplication {
                absorbed.push(a.job.id());
            } else {
                victims.push(a.job.id());
            }
        }
        for job in absorbed {
            self.faults.transfer_faults_absorbed += 1;
            self.telemetry.incr(Counter::TransferFaultsAbsorbed);
            self.record_event(at, crate::trace::CampaignEvent::TransferAbsorbed { job });
        }
        for job_id in victims {
            // Re-resolve per victim: an earlier break's migration may have
            // shuffled handles between managers.
            let Some(h) = self.meta.find_live(job_id) else {
                continue;
            };
            let earliest = at + retry;
            self.break_job(h, at, BreakKind::TransferFault, &[], earliest);
        }
    }

    /// Processes every due overrun, earliest first; ties on the global
    /// activation sequence (the pre-hierarchy flat-vector index order).
    pub(crate) fn settle_overruns(&mut self, now: SimTime) {
        loop {
            let due = self
                .meta
                .jobs()
                .filter(|(_, a)| !a.dropped)
                .filter_map(|(h, a)| a.pending_overrun.map(|(t, task)| (t, a.seq, task, h)))
                .filter(|&(t, _, _, _)| t <= now)
                .min_by_key(|&(t, seq, task, _)| (t, seq, task));
            let Some((t, _, task, h)) = due else {
                return;
            };
            self.handle_overrun(h, t, task);
        }
    }

    /// A task ran past its reserved window: extend it (best effort) and
    /// replan everything downstream.
    pub(crate) fn handle_overrun(&mut self, h: JobHandle, at: SimTime, task: TaskId) {
        // Extend the overrunning task's placement to its actual finish.
        let (old, actual_end) = {
            let a = self.meta.job(h);
            let p = a.current[&task];
            let actual = actual_exec(&a.job, &self.pool, &p, a.task_factors[task.index()]);
            (p, p.window.start() + p.stall + actual)
        };
        let extended = TimeWindow::new(old.window.start(), actual_end.max_of(old.window.end()))
            .expect("extension keeps the window non-empty");
        // Best-effort reservation of the extension tail.
        if extended.end() > old.window.end() {
            if let Ok(tail) = TimeWindow::new(old.window.end(), extended.end()) {
                let owner = ReservationOwner::Task(GlobalTaskId {
                    job: self.meta.job(h).job.id(),
                    task,
                });
                let _ = self.pool.timetable_mut(old.node).reserve(tail, owner);
            }
        }
        let a = self.meta.job_mut(h);
        let entry = a.current.get_mut(&task).expect("task is placed");
        entry.window = extended;
        a.pending_overrun = None;
        self.break_job(h, at, BreakKind::Overrun, &[], at);
    }

    /// Attempts to activate another supporting schedule of the job's
    /// strategy. The alternative's *relative* structure (nodes, window
    /// lengths, precedence offsets) was precomputed at activation; only
    /// its anchor moves: the whole schedule is shifted uniformly forward
    /// so its earliest window starts no sooner than `earliest`. A uniform
    /// shift preserves precedence, so the switch succeeds iff every
    /// shifted window is free on the current timetables and the shifted
    /// makespan still meets the deadline. Returns `true` on success.
    fn try_switch(&mut self, h: JobHandle, tau: SimTime, earliest: SimTime) -> bool {
        let found = {
            let a = self.meta.job(h);
            // A read-only what-if view over one snapshot: every candidate
            // alternative is probed against the same captured availability
            // (the planning-session discipline; bit-identical to reading
            // the live timetables since nothing mutates during the probe).
            let probe = PlanningSession::open_instrumented(&self.pool, &self.telemetry, self.root)
                .overlay();
            a.alternatives.iter().enumerate().find_map(|(pos, d)| {
                let first = d.placements().iter().map(|p| p.window.start()).min()?;
                let delta = earliest.saturating_since(first);
                if d.makespan() + delta > a.deadline_abs {
                    return None;
                }
                let all_free = d
                    .placements()
                    .iter()
                    .all(|p| probe.is_free(p.node, shift_window(p.window, delta)));
                all_free.then_some((pos, delta))
            })
        };
        let Some((pos, delta)) = found else {
            return false;
        };
        let dist = self.meta.job_mut(h).alternatives.remove(pos);
        for p in dist.placements() {
            let shifted = Placement {
                window: shift_window(p.window, delta),
                ..*p
            };
            let owner = ReservationOwner::Task(GlobalTaskId {
                job: self.meta.job(h).job.id(),
                task: p.task,
            });
            let rid = self
                .pool
                .timetable_mut(p.node)
                .reserve(shifted.window, owner)
                .expect("switch candidate windows were checked free");
            let a = self.meta.job_mut(h);
            a.reservations.insert(p.task, rid);
            a.current.insert(p.task, shifted);
        }
        let a = self.meta.job_mut(h);
        a.scenario = dist.scenario();
        a.pending_overrun = None;
        let next = next_overrun(self.meta.job(h), &self.pool, tau);
        self.meta.job_mut(h).pending_overrun = next;
        let record_idx = self.meta.job(h).record;
        self.records[record_idx].switches += 1;
        true
    }

    /// Releases the job's pending reservations and replans the remaining
    /// tasks — the §2 reallocation mechanism.
    ///
    /// `forced` lists already-started tasks that must nevertheless be
    /// re-placed (their node died mid-execution — migration); `earliest`
    /// is the earliest time re-placed windows may start (`tau` itself for
    /// benign breaks, `tau + retry` for transfer faults).
    fn break_job(
        &mut self,
        h: JobHandle,
        tau: SimTime,
        kind: BreakKind,
        forced: &[TaskId],
        earliest: SimTime,
    ) {
        let record_idx = self.meta.job(h).record;
        // Domain attribution for labeled telemetry comes from the record
        // (valid even under a collapsed single-manager flow layer, where
        // every manager-held job reports domain 0).
        let home = self.records[record_idx]
            .home_domain
            .expect("activated jobs have a home domain");
        self.records[record_idx].breaks += 1;
        self.telemetry.incr(Counter::ScheduleBreaks);
        self.telemetry
            .incr_domain(Counter::ScheduleBreaks, u64::from(home.raw()));
        self.meta.job_mut(h).first_break.get_or_insert(tau);
        let job_id = self.meta.job(h).job.id();
        self.record_event(
            tau,
            crate::trace::CampaignEvent::Broken { job: job_id, kind },
        );
        match kind {
            BreakKind::Perturbation => self.faults.breaks_by_perturbation += 1,
            BreakKind::Overrun => self.faults.breaks_by_overrun += 1,
            BreakKind::Outage => self.faults.breaks_by_outage += 1,
            BreakKind::TransferFault => self.faults.breaks_by_transfer_fault += 1,
        }

        // Split into started (fixed) and pending tasks; forced tasks are
        // pending again even though they started.
        let mut pending: Vec<TaskId> = self
            .meta
            .job(h)
            .current
            .iter()
            .filter(|(_, p)| p.window.start() > tau)
            .map(|(t, _)| *t)
            .collect();
        for t in forced {
            if !pending.contains(t) {
                pending.push(*t);
            }
        }
        if pending.is_empty() {
            self.meta.job_mut(h).pending_overrun = None;
            return;
        }
        for t in &pending {
            let a = self.meta.job_mut(h);
            if let Some(rid) = a.reservations.remove(t) {
                let p = a.current[t];
                self.pool.timetable_mut(p.node).release(rid);
            }
        }
        let fixed: HashMap<TaskId, Placement> = self
            .meta
            .job(h)
            .current
            .iter()
            .filter(|(t, _)| !pending.contains(t))
            .map(|(t, p)| (*t, *p))
            .collect();

        // §3: "The choice of the specific variant from the strategy depends
        // on the state and load level of processor nodes" — before paying
        // for a replan, try to *switch* to another precomputed supporting
        // schedule. Only possible while no task has started (a started task
        // pins its placement, which other schedules will not match) and
        // nothing was killed mid-execution.
        if fixed.is_empty() && forced.is_empty() && self.try_switch(h, tau, earliest) {
            self.faults.switches += 1;
            self.telemetry.incr(Counter::ScheduleSwitches);
            self.telemetry
                .incr_domain(Counter::ScheduleSwitches, u64::from(home.raw()));
            self.record_event(tau, crate::trace::CampaignEvent::Switched { job: job_id });
            return;
        }

        let replan_span = self.telemetry.span_under("replan", self.root);
        let result = {
            let a = self.meta.job(h);
            // One planning session per replan: the snapshot is taken after
            // the pending reservations were released above, so overlay
            // views see exactly the availability the replan may use.
            let session =
                PlanningSession::open_instrumented(&self.pool, &self.telemetry, replan_span.id());
            let req = ScheduleRequest {
                job: &a.job,
                pool: &self.pool,
                policy: &a.policy,
                scenario: a.scenario,
                release: earliest,
            };
            // §5's dynamic priority change: if the deadline is endangered,
            // pay quota for speed.
            let objective = match self.config.urgency_slack_factor {
                Some(factor) => {
                    let ctx = gridsched_core::allocate::AllocationContext {
                        job: &a.job,
                        pool: &self.pool,
                        policy: &a.policy,
                        scenario: a.scenario,
                        release: earliest,
                        deadline: a.deadline_abs,
                        domain: None,
                        objective: gridsched_core::objective::Objective::MinCost,
                    };
                    let remaining = ctx
                        .remaining_optimistic()
                        .into_iter()
                        .max()
                        .unwrap_or(gridsched_sim::time::SimDuration::ZERO);
                    let slack = a.deadline_abs.saturating_since(earliest);
                    if (slack.ticks() as f64) < remaining.ticks() as f64 * factor {
                        gridsched_core::objective::Objective::FASTEST
                    } else {
                        gridsched_core::objective::Objective::MinCost
                    }
                }
                None => gridsched_core::objective::Objective::MinCost,
            };
            session.reschedule_with_objective(&req, &fixed, a.deadline_abs, objective)
        };
        match result {
            Ok(dist) => {
                for t in &pending {
                    let p = *dist.placement(*t);
                    let owner = ReservationOwner::Task(GlobalTaskId {
                        job: job_id,
                        task: *t,
                    });
                    let rid = self
                        .pool
                        .timetable_mut(p.node)
                        .reserve(p.window, owner)
                        .expect("replanned against current availability");
                    let a = self.meta.job_mut(h);
                    a.reservations.insert(*t, rid);
                    a.current.insert(*t, p);
                }
                let next = next_overrun(self.meta.job(h), &self.pool, tau);
                self.meta.job_mut(h).pending_overrun = next;
                if forced.is_empty() {
                    self.faults.replans += 1;
                    self.telemetry.incr(Counter::Replans);
                    self.telemetry
                        .incr_domain(Counter::Replans, u64::from(home.raw()));
                    self.record_event(tau, crate::trace::CampaignEvent::Replanned { job: job_id });
                } else {
                    self.faults.migrations += 1;
                    self.telemetry.incr(Counter::Migrations);
                    self.telemetry
                        .incr_domain(Counter::Migrations, u64::from(home.raw()));
                    self.records[record_idx].migrations += 1;
                    // The inter-domain hand-off of the paper's hierarchy:
                    // the job re-homes to wherever the majority of its
                    // re-placed schedule now lives, and the metascheduler
                    // moves it between the two domains' job managers.
                    let from = self.records[record_idx]
                        .home_domain
                        .expect("activated jobs have a home domain");
                    let to = select_domain(self.meta.job(h).current.values(), &self.pool);
                    self.records[record_idx].home_domain = Some(to);
                    self.record_event(
                        tau,
                        crate::trace::CampaignEvent::Migrated {
                            job: job_id,
                            from,
                            to,
                        },
                    );
                    // Invalidates `h` (and any other handle into the
                    // source manager) — must stay the last use of it.
                    let _ = self.meta.rehome(h, to);
                }
            }
            Err(_) => {
                let a = self.meta.job_mut(h);
                a.dropped = true;
                a.pending_overrun = None;
                self.records[record_idx].dropped = true;
                self.faults.drops += 1;
                self.telemetry.incr(Counter::Drops);
                self.telemetry
                    .incr_domain(Counter::Drops, u64::from(home.raw()));
                self.record_event(tau, crate::trace::CampaignEvent::Dropped { job: job_id });
            }
        }
    }

    pub(crate) fn finalize(mut self) -> VoReport {
        for h in self.meta.handles_by_seq() {
            let a = self.meta.job(h);
            let record = &mut self.records[a.record];
            let mut cost_total: u64 = 0;
            let mut window_sum: u64 = 0;
            for p in a.current.values() {
                let actual = actual_exec(&a.job, &self.pool, p, a.task_factors[p.task.index()]);
                let wall = p.stall + actual;
                cost_total += gridsched_core::cost::task_cost(a.job.task(p.task).volume(), wall);
                window_sum += p.window.duration().ticks();
            }
            record.cost = Some(cost_total);
            record.mean_task_window = Some(window_sum as f64 / a.job.task_count() as f64);
            let traffic: f64 = a
                .job
                .edges()
                .iter()
                .map(|e| {
                    let from = a.current[&e.from()].node;
                    let to = a.current[&e.to()].node;
                    a.policy
                        .network_traffic(e.volume(), from, to, &self.pool)
                        .units()
                })
                .sum();
            record.data_traffic = Some(traffic);
            let distinct: std::collections::HashSet<_> =
                a.current.values().map(|p| p.node).collect();
            record.nodes_used = Some(distinct.len());
            record.start_deviation_ratio = Some(if a.reference_runtime > 0.0 {
                let total: u64 = a
                    .current
                    .values()
                    .map(|p| {
                        let r = a.reference_starts[p.task.index()];
                        let c = p.window.start();
                        if c >= r {
                            c.since(r).ticks()
                        } else {
                            r.since(c).ticks()
                        }
                    })
                    .sum();
                total as f64 / a.job.task_count() as f64 / a.reference_runtime
            } else {
                0.0
            });
            let planned_end = record
                .planned_makespan
                .expect("activated jobs have a planned makespan");
            record.time_to_live = Some(match a.first_break {
                Some(t) => t.saturating_since(a.activation),
                None => planned_end.saturating_since(a.activation),
            });
        }
        // Surviving activated jobs ran to completion: record the terminal
        // fact. Completion is only *known* once the horizon closes, so the
        // events are stamped at the horizon and carry the realized end.
        // Jobs whose completion the online loop already observed (and
        // traced at its realized instant) are skipped. Events land in
        // global activation order — the pre-hierarchy trace order.
        let completions: Vec<(JobId, SimTime)> = self
            .meta
            .handles_by_seq()
            .into_iter()
            .map(|h| self.meta.job(h))
            .filter(|a| !a.dropped && a.completed.is_none())
            .map(|a| {
                let end = a
                    .current
                    .values()
                    .map(|p| p.window.end())
                    .max()
                    .unwrap_or(a.activation);
                (a.job.id(), end)
            })
            .collect();
        let horizon_end = self.horizon_end;
        for (job, end) in completions {
            self.record_event(
                horizon_end,
                crate::trace::CampaignEvent::Completed { job, end },
            );
        }
        let task_load = measure_task_load(&self.pool, self.horizon_end);
        let strategy = match &self.config.assignment {
            FlowAssignment::Single(kind) => *kind,
            FlowAssignment::RoundRobin(kinds) => kinds[0],
            FlowAssignment::BySize { large, .. } => *large,
        };
        let report = VoReport {
            strategy,
            records: std::mem::take(&mut self.records),
            task_load,
            faults: self.faults,
            trace: self.trace.take(),
        };
        // Terminal QoS gauges for the exporters; strictly observational.
        self.telemetry
            .set_gauge("admissible_share", report.admissible_share());
        self.telemetry.set_gauge("drop_share", report.drop_share());
        #[cfg(debug_assertions)]
        self.audit(&report);
        report
    }

    /// Debug/test builds: every traced campaign run is replayed through
    /// the [`crate::oracle`] before the report leaves the campaign. A
    /// violation here is a bug in the campaign itself.
    #[cfg(debug_assertions)]
    pub(crate) fn audit(&self, report: &VoReport) {
        if report.trace.is_none() {
            return;
        }
        if let Err(violation) = crate::oracle::audit(report) {
            panic!("campaign trace failed the oracle: {violation}");
        }
        let states: Vec<crate::oracle::FinalJobState<'_>> = self
            .meta
            .handles_by_seq()
            .into_iter()
            .map(|h| self.meta.job(h))
            .map(|a| {
                let rec = report
                    .records
                    .iter()
                    .find(|r| r.job_id == a.job.id())
                    .expect("every active job has a record");
                crate::oracle::FinalJobState {
                    job: &a.job,
                    placements: &a.current,
                    dropped: a.dropped,
                    breaks: rec.breaks,
                }
            })
            .collect();
        if let Err(violation) = crate::oracle::audit_final_state(&states, &self.pool) {
            panic!("campaign final state failed the oracle: {violation}");
        }
    }
}

/// Shifts a window uniformly forward by `delta`, preserving its length.
fn shift_window(w: TimeWindow, delta: SimDuration) -> TimeWindow {
    TimeWindow::new(w.start() + delta, w.end() + delta)
        .expect("a uniform forward shift preserves non-emptiness")
}

/// The task's actual execution time on its assigned node, under its drawn
/// slowdown factor.
fn actual_exec(job: &Job, pool: &ResourcePool, p: &Placement, factor: f64) -> SimDuration {
    job.task(p.task)
        .duration_on(pool.node(p.node).perf())
        .scale_ceil(factor)
}

/// The earliest overrun among placements starting after `after`:
/// a task whose actual execution exceeds its reserved exec budget.
pub(crate) fn next_overrun(
    a: &ActiveJob,
    pool: &ResourcePool,
    after: SimTime,
) -> Option<(SimTime, TaskId)> {
    a.current
        .values()
        .filter(|p| p.window.start() > after)
        .filter_map(|p| {
            let budget = p.window.duration() - p.stall;
            let actual = actual_exec(&a.job, pool, p, a.task_factors[p.task.index()]);
            if actual > budget {
                Some((p.window.end(), p.task))
            } else {
                None
            }
        })
        .min()
}

/// Per-group node load counting only task-owned reservations, over
/// `[t0, horizon)`.
fn measure_task_load(pool: &ResourcePool, horizon: SimTime) -> GroupLoad {
    let range = match TimeWindow::new(SimTime::ZERO, horizon) {
        Ok(r) => r,
        Err(_) => return GroupLoad::default(),
    };
    let mut sums: std::collections::BTreeMap<PerfGroup, (f64, usize)> =
        std::collections::BTreeMap::new();
    for node in pool.nodes() {
        let busy: u64 = pool
            .timetable(node.id())
            .iter()
            .filter(|r| matches!(r.owner(), ReservationOwner::Task(_)))
            .filter_map(|r| r.window().intersect(range))
            .map(|w| w.duration().ticks())
            .sum();
        let level = busy as f64 / range.duration().ticks() as f64;
        let entry = sums.entry(node.group()).or_insert((0.0, 0));
        entry.0 += level;
        entry.1 += 1;
    }
    GroupLoad::from_levels(sums.into_iter().map(|(g, (sum, n))| (g, sum / n as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig {
            jobs: 12,
            perturbations: 20,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn all_jobs_get_records() {
        let cfg = CampaignConfig {
            jobs: 10,
            perturbations: 10,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.records.len(), 10);
    }

    #[test]
    fn accurate_estimates_and_no_perturbations_mean_no_breaks() {
        let cfg = CampaignConfig {
            jobs: 20,
            perturbations: 0,
            slowdown_range: (1.0, 1.0),
            task_jitter: 0.0,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        for r in &report.records {
            assert_eq!(r.breaks, 0, "{:?}", r.job_id);
            assert!(!r.dropped);
            if let (Some(ttl), Some(makespan)) = (r.time_to_live, r.planned_makespan) {
                // Unbroken schedules live out their whole planned runtime.
                assert_eq!(ttl, makespan.saturating_since(r.release));
            }
        }
    }

    #[test]
    fn worst_case_slowdowns_without_jitter_never_overrun() {
        // Every job at exactly the worst-case factor: the activated
        // worst-case schedule covers it, so the only breaks come from
        // external perturbations — and we run none.
        let cfg = CampaignConfig {
            jobs: 20,
            perturbations: 0,
            slowdown_range: (2.5, 2.5),
            task_jitter: 0.0,
            job_config: gridsched_workload::jobs::JobConfig {
                deadline_factor: 8.0,
                ..gridsched_workload::jobs::JobConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        for r in &report.records {
            // Only jobs whose worst-case schedule was actually feasible
            // are covered; the rest run on an undersized fallback.
            if r.scenario_multiplier == Some(2.5) {
                assert_eq!(r.breaks, 0, "{:?}", r.job_id);
            }
        }
        assert!(
            report
                .records
                .iter()
                .any(|r| r.scenario_multiplier == Some(2.5)),
            "some job must activate its worst-case schedule"
        );
    }

    #[test]
    fn underestimated_jobs_overrun_and_break() {
        // Jobs slow down but only the optimistic schedule exists at a
        // tight deadline: overruns must surface as breaks.
        let cfg = CampaignConfig {
            jobs: 30,
            perturbations: 0,
            slowdown_range: (2.0, 2.4),
            task_jitter: 0.0,
            job_config: gridsched_workload::jobs::JobConfig {
                deadline_factor: 2.0,
                ..gridsched_workload::jobs::JobConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        let total_breaks: usize = report.records.iter().map(|r| r.breaks).sum();
        assert!(
            total_breaks > 0,
            "underestimating jobs must overrun somewhere"
        );
    }

    #[test]
    fn trace_is_consistent_with_records() {
        use crate::trace::CampaignEvent;
        let cfg = CampaignConfig {
            jobs: 25,
            perturbations: 40,
            collect_trace: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        let trace = report.trace.as_ref().expect("trace collected");
        assert!(!trace.is_empty());
        // One Released event per job; Activated iff admissible.
        let released = trace.count(|e| matches!(e, CampaignEvent::Released { .. }));
        assert_eq!(released, report.records.len());
        let activated = trace.count(|e| matches!(e, CampaignEvent::Activated { .. }));
        let admissible = report.records.iter().filter(|r| r.admissible).count();
        assert_eq!(activated, admissible);
        // Per-job break counts line up.
        for r in &report.records {
            let broken = trace
                .for_job(r.job_id)
                .filter(|(_, e)| matches!(e, CampaignEvent::Broken { .. }))
                .count();
            assert_eq!(broken, r.breaks, "{:?}", r.job_id);
            let dropped = trace
                .for_job(r.job_id)
                .any(|(_, e)| matches!(e, CampaignEvent::Dropped { .. }));
            assert_eq!(dropped, r.dropped, "{:?}", r.job_id);
        }
        // Every break is resolved by exactly one of switch/replan/drop.
        let breaks = trace.count(|e| matches!(e, CampaignEvent::Broken { .. }));
        let resolutions = trace.count(|e| {
            matches!(
                e,
                CampaignEvent::Switched { .. }
                    | CampaignEvent::Replanned { .. }
                    | CampaignEvent::Dropped { .. }
            )
        });
        // Breaks with no pending tasks resolve trivially (no event), so
        // resolutions never exceed breaks.
        assert!(resolutions <= breaks, "{resolutions} > {breaks}");
    }

    #[test]
    fn no_trace_collected_by_default() {
        let cfg = CampaignConfig {
            jobs: 5,
            perturbations: 5,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&cfg).trace.is_none());
    }

    #[test]
    fn urgency_escalation_changes_replanning_behaviour() {
        // Heavy perturbations on tight deadlines. Escalation (replanning
        // endangered jobs for speed) is a policy trade-off: it saves the
        // escalated job but crowds fast nodes for everyone else, so we
        // assert the *mechanism* (outcomes change deterministically), not
        // a universal improvement.
        let base = CampaignConfig {
            jobs: 60,
            perturbations: 250,
            job_config: gridsched_workload::jobs::JobConfig {
                deadline_factor: 2.2,
                ..gridsched_workload::jobs::JobConfig::default()
            },
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&CampaignConfig {
            urgency_slack_factor: None,
            ..base.clone()
        });
        let adaptive = run_campaign(&CampaignConfig {
            urgency_slack_factor: Some(2.0),
            ..base.clone()
        });
        assert_ne!(
            plain.records, adaptive.records,
            "escalation must actually change replanning decisions"
        );
        // Replanned (escalated) jobs still never miss their deadline.
        for r in &adaptive.records {
            if let Some(makespan) = r.planned_makespan {
                assert!(makespan >= r.release);
            }
        }
        // And the adaptive run stays deterministic.
        let again = run_campaign(&CampaignConfig {
            urgency_slack_factor: Some(2.0),
            ..base
        });
        assert_eq!(adaptive.records, again.records);
    }

    #[test]
    fn strategies_differ_in_outcomes() {
        let base = CampaignConfig {
            jobs: 30,
            perturbations: 40,
            ..CampaignConfig::default()
        };
        let s1 = run_campaign(&CampaignConfig {
            assignment: FlowAssignment::Single(StrategyKind::S1),
            ..base.clone()
        });
        let s3 = run_campaign(&CampaignConfig {
            assignment: FlowAssignment::Single(StrategyKind::S3),
            ..base.clone()
        });
        // S3 coarse-grains jobs, so its mean task wall window is longer.
        let w1 = s1.task_window_summary().mean();
        let w3 = s3.task_window_summary().mean();
        assert!(w3 > w1, "S3 windows {w3} should exceed S1 windows {w1}");
    }
}
