//! Campaign event traces.
//!
//! An optional chronological log of everything the job-flow level does —
//! activations, perturbations, breaks, schedule switches, replans, drops —
//! for debugging simulations and for tests that assert *mechanisms*, not
//! just aggregate numbers.

use std::fmt;

use gridsched_model::ids::{DomainId, JobId, NodeId};
use gridsched_sim::time::SimTime;

/// Why an active schedule broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakKind {
    /// An independent local job seized a reserved window.
    Perturbation,
    /// A task ran past its reserved budget.
    Overrun,
    /// A node outage voided reservations (injected fault).
    Outage,
    /// A data transfer failed and must be retried (injected fault).
    TransferFault,
}

impl BreakKind {
    /// Every break cause.
    pub const ALL: [BreakKind; 4] = [
        BreakKind::Perturbation,
        BreakKind::Overrun,
        BreakKind::Outage,
        BreakKind::TransferFault,
    ];
}

impl fmt::Display for BreakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakKind::Perturbation => f.write_str("perturbation"),
            BreakKind::Overrun => f.write_str("overrun"),
            BreakKind::Outage => f.write_str("outage"),
            BreakKind::TransferFault => f.write_str("transfer fault"),
        }
    }
}

/// Why the online admission controller turned a job away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was full when the job arrived.
    QueueFull,
    /// The job's remaining critical path cannot fit before its absolute
    /// deadline any more — no amount of waiting will help.
    Unmeetable,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => f.write_str("queue full"),
            RejectReason::Unmeetable => f.write_str("deadline unmeetable"),
        }
    }
}

/// One job-flow-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignEvent {
    /// A job entered the online serving loop (streamed arrival). Batch
    /// campaigns, which release a pre-built job list, never record this.
    Arrived {
        /// The job.
        job: JobId,
    },
    /// The online admission controller turned the job away — it was never
    /// released to the metascheduler.
    Rejected {
        /// The job.
        job: JobId,
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// A job arrived and its strategy was generated.
    Released {
        /// The job.
        job: JobId,
        /// Whether any supporting schedule existed.
        admissible: bool,
    },
    /// A supporting schedule was activated and its windows reserved.
    Activated {
        /// The job.
        job: JobId,
        /// Cost of the activated schedule.
        cost: u64,
    },
    /// An independent local job reserved node time.
    Perturbation {
        /// The seized node.
        node: NodeId,
    },
    /// An active schedule broke.
    Broken {
        /// The job.
        job: JobId,
        /// What broke it.
        kind: BreakKind,
    },
    /// The break was resolved by switching to another supporting schedule.
    Switched {
        /// The job.
        job: JobId,
    },
    /// The break was resolved by replanning the remaining tasks.
    Replanned {
        /// The job.
        job: JobId,
    },
    /// The break was resolved by restarting already-started tasks on
    /// other nodes (their original node died) and replanning the rest.
    ///
    /// `from`/`to` record the inter-domain hand-off: the job-manager
    /// domain that owned the job before the break and the domain holding
    /// the majority of the re-placed schedule's reserved ticks. Equal
    /// domains mean the restart stayed under the same job manager.
    Migrated {
        /// The job.
        job: JobId,
        /// Home domain before the migration replan.
        from: DomainId,
        /// Home domain after it (majority reserved ticks, ties to the
        /// lowest domain id).
        to: DomainId,
    },
    /// No feasible replan existed; the job was dropped.
    Dropped {
        /// The job.
        job: JobId,
    },
    /// Every remaining task of the job ran to completion.
    ///
    /// Recorded once per surviving activated job when the campaign
    /// finalizes; `end` is the job's realized completion time (which may
    /// differ from the event's timestamp — completion facts are only
    /// known at the end of the horizon).
    Completed {
        /// The job.
        job: JobId,
        /// Realized completion time (latest placement window end).
        end: SimTime,
    },
    /// A node outage struck (injected fault).
    Outage {
        /// The dead node.
        node: NodeId,
        /// Task reservations voided by the outage.
        voided: usize,
    },
    /// A node's performance dropped (injected fault).
    Degraded {
        /// The degraded node.
        node: NodeId,
    },
    /// An inter-domain transfer incident struck a node (injected fault).
    TransferFaultInjected {
        /// The afflicted node.
        node: NodeId,
    },
    /// A transfer fault hit a job whose active-replication policy had a
    /// nearby replica: no break needed.
    TransferAbsorbed {
        /// The unharmed job.
        job: JobId,
    },
}

impl CampaignEvent {
    /// The job this event concerns, if any (pool-level events — external
    /// perturbations and injected faults — concern no single job).
    #[must_use]
    pub fn job(&self) -> Option<JobId> {
        match self {
            CampaignEvent::Arrived { job }
            | CampaignEvent::Rejected { job, .. }
            | CampaignEvent::Released { job, .. }
            | CampaignEvent::Activated { job, .. }
            | CampaignEvent::Broken { job, .. }
            | CampaignEvent::Switched { job }
            | CampaignEvent::Replanned { job }
            | CampaignEvent::Migrated { job, .. }
            | CampaignEvent::Dropped { job }
            | CampaignEvent::Completed { job, .. }
            | CampaignEvent::TransferAbsorbed { job } => Some(*job),
            CampaignEvent::Perturbation { .. }
            | CampaignEvent::Outage { .. }
            | CampaignEvent::Degraded { .. }
            | CampaignEvent::TransferFaultInjected { .. } => None,
        }
    }
}

impl fmt::Display for CampaignEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignEvent::Arrived { job } => write!(f, "{job} arrived"),
            CampaignEvent::Rejected { job, reason } => {
                write!(f, "{job} rejected ({reason})")
            }
            CampaignEvent::Released { job, admissible } => {
                write!(f, "{job} released (admissible: {admissible})")
            }
            CampaignEvent::Activated { job, cost } => {
                write!(f, "{job} activated (CF {cost})")
            }
            CampaignEvent::Perturbation { node } => {
                write!(f, "independent job on {node}")
            }
            CampaignEvent::Broken { job, kind } => write!(f, "{job} broken by {kind}"),
            CampaignEvent::Switched { job } => write!(f, "{job} switched supporting schedule"),
            CampaignEvent::Replanned { job } => write!(f, "{job} replanned"),
            CampaignEvent::Migrated { job, from, to } => {
                write!(f, "{job} migrated off a dead node ({from} -> {to})")
            }
            CampaignEvent::Dropped { job } => write!(f, "{job} dropped"),
            CampaignEvent::Completed { job, end } => write!(f, "{job} completed at {end}"),
            CampaignEvent::Outage { node, voided } => {
                write!(f, "outage on {node} ({voided} reservations voided)")
            }
            CampaignEvent::Degraded { node } => write!(f, "{node} degraded"),
            CampaignEvent::TransferFaultInjected { node } => {
                write!(f, "transfer fault at {node}")
            }
            CampaignEvent::TransferAbsorbed { job } => {
                write!(f, "{job} absorbed a transfer fault via replication")
            }
        }
    }
}

/// A chronological campaign log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignTrace {
    events: Vec<(SimTime, CampaignEvent)>,
}

impl CampaignTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        CampaignTrace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, at: SimTime, event: CampaignEvent) {
        debug_assert!(
            self.events.last().is_none_or(|(t, _)| *t <= at),
            "trace must be chronological"
        );
        self.events.push((at, event));
    }

    /// Builds a trace from raw events, *without* the chronology check.
    ///
    /// Intended for tests that construct deliberately corrupt traces to
    /// feed the [`crate::oracle`]; the oracle itself re-checks chronology.
    #[must_use]
    pub fn from_events(events: Vec<(SimTime, CampaignEvent)>) -> Self {
        CampaignTrace { events }
    }

    /// All events, in order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, CampaignEvent)] {
        &self.events
    }

    /// Mutable access to the raw events, for tests that corrupt a real
    /// trace in place before handing it to the [`crate::oracle`].
    pub fn events_mut(&mut self) -> &mut Vec<(SimTime, CampaignEvent)> {
        &mut self.events
    }

    /// Events concerning one job.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &(SimTime, CampaignEvent)> {
        self.events
            .iter()
            .filter(move |(_, e)| e.job() == Some(job))
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&CampaignEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for CampaignTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "{t:>8} {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_in_order_and_filters_by_job() {
        let mut tr = CampaignTrace::new();
        let j0 = JobId::new(0);
        let j1 = JobId::new(1);
        tr.push(
            SimTime::from_ticks(1),
            CampaignEvent::Released {
                job: j0,
                admissible: true,
            },
        );
        tr.push(
            SimTime::from_ticks(1),
            CampaignEvent::Activated { job: j0, cost: 12 },
        );
        tr.push(
            SimTime::from_ticks(3),
            CampaignEvent::Released {
                job: j1,
                admissible: false,
            },
        );
        tr.push(
            SimTime::from_ticks(5),
            CampaignEvent::Broken {
                job: j0,
                kind: BreakKind::Overrun,
            },
        );
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.for_job(j0).count(), 3);
        assert_eq!(tr.for_job(j1).count(), 1);
        assert_eq!(tr.count(|e| matches!(e, CampaignEvent::Broken { .. })), 1);
    }

    #[test]
    fn display_is_line_per_event() {
        let mut tr = CampaignTrace::new();
        tr.push(
            SimTime::from_ticks(2),
            CampaignEvent::Perturbation {
                node: NodeId::new(3),
            },
        );
        tr.push(
            SimTime::from_ticks(4),
            CampaignEvent::Dropped { job: JobId::new(9) },
        );
        let text = tr.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("N3"));
        assert!(text.contains("J9 dropped"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "chronological")]
    fn non_chronological_push_is_caught() {
        let mut tr = CampaignTrace::new();
        tr.push(
            SimTime::from_ticks(5),
            CampaignEvent::Perturbation {
                node: NodeId::new(0),
            },
        );
        tr.push(
            SimTime::from_ticks(4),
            CampaignEvent::Perturbation {
                node: NodeId::new(0),
            },
        );
    }
}
