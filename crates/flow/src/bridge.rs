//! Bridging the application level into the local batch systems.
//!
//! §1: each task of a co-allocated compound job reaches a *local*
//! batch-job management system "as a job accompanied by a resource
//! request" with a reserved wall-time window. From the local system's
//! point of view those windows are **advance reservations** that its own
//! queue (FCFS, backfilling, …) must schedule around — which is exactly
//! the §5 interaction this module lets experiments measure.

use gridsched_batch::cluster::AdvanceReservation;
use gridsched_core::distribution::Distribution;
use gridsched_model::ids::DomainId;
use gridsched_model::node::ResourcePool;

/// Converts the placements a distribution makes inside `domain` into
/// width-1 advance reservations for that domain's local batch system.
///
/// The local system models the domain's nodes as an undifferentiated
/// cluster, so each task window blocks one node for its wall time.
///
/// # Examples
///
/// ```
/// use gridsched_core::method::{build_distribution, ScheduleRequest};
/// use gridsched_data::policy::DataPolicy;
/// use gridsched_flow::bridge::domain_reservations;
/// use gridsched_model::estimate::EstimateScenario;
/// use gridsched_model::fixtures::fig2_job;
/// use gridsched_model::ids::DomainId;
/// use gridsched_model::node::ResourcePool;
/// use gridsched_model::perf::Perf;
/// use gridsched_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = fig2_job();
/// let mut pool = ResourcePool::new();
/// for j in 1..=4u32 {
///     pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
/// }
/// let policy = DataPolicy::remote_access();
/// let dist = build_distribution(&ScheduleRequest {
///     job: &job,
///     pool: &pool,
///     policy: &policy,
///     scenario: EstimateScenario::BEST,
///     release: SimTime::ZERO,
/// })?;
/// let reservations = domain_reservations(&dist, &pool, DomainId::new(0));
/// assert_eq!(reservations.len(), job.task_count());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn domain_reservations(
    dist: &Distribution,
    pool: &ResourcePool,
    domain: DomainId,
) -> Vec<AdvanceReservation> {
    dist.placements()
        .iter()
        .filter(|p| pool.node(p.node).domain() == domain)
        .map(|p| AdvanceReservation {
            window: p.window,
            width: 1,
        })
        .collect()
}

/// Total node-ticks a distribution reserves inside `domain`.
#[must_use]
pub fn domain_reserved_ticks(dist: &Distribution, pool: &ResourcePool, domain: DomainId) -> u64 {
    domain_reservations(dist, pool, domain)
        .iter()
        .map(|r| r.window.duration().ticks())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_core::method::{build_distribution, ScheduleRequest};
    use gridsched_data::policy::DataPolicy;
    use gridsched_model::estimate::EstimateScenario;
    use gridsched_model::fixtures::fig2_job_with_deadline;
    use gridsched_model::perf::Perf;
    use gridsched_sim::time::SimTime;

    fn two_domain_setup() -> (ResourcePool, Distribution) {
        let job = fig2_job_with_deadline(gridsched_sim::time::SimDuration::from_ticks(60));
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::new(0.5).unwrap());
        pool.add_node(DomainId::new(1), Perf::new(0.8).unwrap());
        pool.add_node(DomainId::new(1), Perf::new(0.33).unwrap());
        let policy = DataPolicy::remote_access();
        let dist = build_distribution(&ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        })
        .unwrap();
        (pool, dist)
    }

    #[test]
    fn reservations_split_by_domain_cover_all_placements() {
        let (pool, dist) = two_domain_setup();
        let d0 = domain_reservations(&dist, &pool, DomainId::new(0));
        let d1 = domain_reservations(&dist, &pool, DomainId::new(1));
        assert_eq!(d0.len() + d1.len(), dist.placements().len());
        for r in d0.iter().chain(&d1) {
            assert_eq!(r.width, 1);
        }
    }

    #[test]
    fn reserved_ticks_match_wall_windows() {
        let (pool, dist) = two_domain_setup();
        let total: u64 = pool
            .domains()
            .into_iter()
            .map(|d| domain_reserved_ticks(&dist, &pool, d))
            .sum();
        let expected: u64 = dist
            .placements()
            .iter()
            .map(|p| p.window.duration().ticks())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn reservations_are_usable_by_a_local_cluster() {
        use gridsched_batch::cluster::ClusterConfig;
        use gridsched_batch::job::{BatchJob, BatchJobId};
        use gridsched_batch::policy::QueuePolicy;
        use gridsched_sim::time::SimDuration;

        let (pool, dist) = two_domain_setup();
        let domain = DomainId::new(0);
        let capacity = pool.in_domain(domain).count() as u32;
        let mut cluster = ClusterConfig::new(capacity, QueuePolicy::EasyBackfill);
        for r in domain_reservations(&dist, &pool, domain) {
            cluster.reserve(r);
        }
        let local_jobs: Vec<BatchJob> = (0..20)
            .map(|i| {
                BatchJob::new(
                    BatchJobId(i),
                    SimTime::from_ticks(i * 2),
                    1,
                    SimDuration::from_ticks(4),
                    SimDuration::from_ticks(3),
                )
            })
            .collect();
        let with = cluster.run(&local_jobs);
        let without = ClusterConfig::new(capacity, QueuePolicy::EasyBackfill).run(&local_jobs);
        // Grid reservations can only lengthen local queues.
        assert!(with.mean_wait() >= without.mean_wait());
    }
}
