//! Online job-flow serving: streaming arrivals, deadline-aware admission
//! control and incremental replanning.
//!
//! The paper's job-flow level is inherently *online* — the metascheduler
//! receives a continuous flow of compound jobs — yet the batch
//! [`crate::simulation`] campaign releases a fixed job list up front. An
//! [`OnlineCampaign`](run_online) instead consumes a seeded
//! [`ArrivalProcess`] (Poisson or trace-driven) and pushes each arrival
//! through a **bounded admission queue**:
//!
//! 1. **Arrival.** The job enters the queue (or is rejected outright when
//!    the queue is full — the newest arrival is the deterministic drop).
//! 2. **Admission probe.** A cheap single-pass MS1-style probe via the
//!    existing [`PlanningSession`] asks whether *any* best-case supporting
//!    schedule can still meet the job's absolute deadline under
//!    [`Objective::MinTime`] with the configured budget — the
//!    deadline/budget admission test of Buyya et al.'s DBC algorithm.
//! 3. **Admit / defer / reject.** A successful probe admits the job: its
//!    full strategy sweep runs (reusing the persistent `gridsched-exec`
//!    worker pool) and the matching supporting schedule activates. A
//!    failed probe defers the job — it is re-probed after every subsequent
//!    arrival/completion/fault event (*incremental replanning*, rather
//!    than re-running whole-batch generation) — unless its remaining
//!    critical path can no longer fit before the deadline even on a
//!    perfect node, in which case it is rejected for good.
//!
//! Completions are observed *online*: when the last reserved window of an
//! active job closes, a terminal `Completed` event is traced at its
//! realized instant (the batch campaign only learns completions at the
//! horizon). Breaks, switches, replans, migrations and drops ride on the
//! same dynamics engine as the batch campaign, so the
//! [`crate::oracle`] audits online traces unchanged.
//!
//! # Determinism contract
//!
//! One seed fixes everything: the arrival stream, every admission
//! decision, the full event order and the resulting [`OnlineReport`] are
//! bit-identical across runs, with telemetry on or off, and across
//! `Sequential`/`Pooled` sweep executors (`tests/determinism.rs` and
//! `crates/flow/tests/prop_online.rs` pin this). All report-side latencies
//! are sim-time; wall-clock timings live only in telemetry spans.

use gridsched_core::cost::Cost;
use gridsched_core::granularity::coarsen;
use gridsched_core::method::ScheduleRequest;
use gridsched_core::objective::Objective;
use gridsched_core::session::PlanningSession;
use gridsched_core::strategy::{Strategy, StrategyConfig};
use gridsched_metrics::histogram::Histogram;
use gridsched_metrics::telemetry::{Counter, Telemetry};
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{JobId, NodeId};
use gridsched_model::job::Job;
use gridsched_model::perf::Perf;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};
use gridsched_workload::arrivals::{generate_arrivals, ArrivalProcess};

use crate::driver::{drive, flow_event_budget, FlowEvent, FlowMachine};
use crate::faults::Fault;
use crate::job_manager::Queued;
use crate::report::{JobRecord, VoReport};
use crate::simulation::{Campaign, CampaignConfig};
use crate::trace::{CampaignEvent, RejectReason};

/// Configuration of one online serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// The shared campaign knobs: pool, job shapes, perturbations, faults,
    /// horizon, seed. `base.jobs` caps the arrival count; `base.job_gap`
    /// is ignored — inter-arrival gaps come from `arrivals`.
    pub base: CampaignConfig,
    /// The arrival process that paces the stream.
    pub arrivals: ArrivalProcess,
    /// Bound of the admission queue. An arrival finding the queue full is
    /// rejected immediately (the newest arrival is the deterministic
    /// drop).
    pub queue_capacity: usize,
    /// Budget of the `MinTime { budget }` admission probe; `None` admits
    /// on deadline alone.
    pub probe_budget: Option<Cost>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            base: CampaignConfig::default(),
            arrivals: ArrivalProcess::Poisson { rate: 0.15 },
            queue_capacity: 16,
            probe_budget: None,
        }
    }
}

/// How one arrival left the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted: strategy generated and (if admissible) activated.
    Admitted {
        /// Admission instant (== arrival when admitted on first probe).
        at: SimTime,
    },
    /// Rejected for good.
    Rejected {
        /// Rejection instant.
        at: SimTime,
        /// Why.
        reason: RejectReason,
    },
    /// Still queued when the horizon closed.
    Deferred,
}

/// One arrival's admission story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRecord {
    /// The job.
    pub job_id: JobId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Final admission outcome.
    pub outcome: AdmissionOutcome,
    /// Admission probes spent on this job (0 for queue-full rejections).
    pub probes: usize,
}

/// Aggregate admission accounting; reconciles exactly with the telemetry
/// counters and with [`OnlineReport::admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionSummary {
    /// Jobs that arrived (`jobs_arrived`).
    pub arrived: usize,
    /// Jobs admitted (`jobs_admitted`).
    pub admitted: usize,
    /// Jobs rejected (`jobs_rejected`), all reasons.
    pub rejected: usize,
    /// Rejections caused by a full queue.
    pub rejected_queue_full: usize,
    /// Rejections caused by an unmeetable deadline.
    pub rejected_unmeetable: usize,
    /// Jobs still queued at the horizon. Always
    /// `arrived == admitted + rejected + deferred`.
    pub deferred: usize,
    /// Admission probes run (`admission_probes`).
    pub probes: usize,
    /// Re-probes of deferred jobs (`incremental_replans`):
    /// `probes - jobs probed at least once`.
    pub incremental_replans: usize,
    /// High-water mark of the queue depth (`queue_peak_depth`).
    pub queue_peak: usize,
}

/// Result of one online serving run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The campaign report (records in arrival order, faults, trace).
    pub report: VoReport,
    /// Per-arrival admission stories, in arrival order.
    pub admission: Vec<AdmissionRecord>,
    /// Aggregate admission accounting.
    pub summary: AdmissionSummary,
    /// Queue-wait latency (admission minus arrival), in ticks; rejected
    /// and deferred jobs are not recorded.
    pub queue_wait: Histogram,
}

impl OnlineReport {
    /// Whether the admission counters reconcile
    /// (`arrived == admitted + rejected + deferred`).
    #[must_use]
    pub fn counters_reconcile(&self) -> bool {
        let s = &self.summary;
        s.arrived == s.admitted + s.rejected + s.deferred
            && s.rejected == s.rejected_queue_full + s.rejected_unmeetable
    }
}

/// What one admission probe decided.
enum Decision {
    Admit,
    Reject,
    Defer,
}

/// Runs one online campaign.
///
/// Deterministic: the same configuration (including seed) always yields
/// the same report, bit for bit.
#[must_use]
pub fn run_online(config: &OnlineConfig) -> OnlineReport {
    run_online_instrumented(config, &Telemetry::disabled())
}

/// [`run_online`] with a telemetry recorder attached.
///
/// The run executes under an `online_campaign` root span with `setup`,
/// per-arrival `arrival`, per-probe `admission_probe`, per-admission
/// `admit` (nesting the strategy sweep's own spans), `replan` and
/// `finalize` children. QoS events land in the online counters
/// (`jobs_arrived`, `jobs_admitted`, `jobs_rejected`, `admission_probes`,
/// `queue_peak_depth`, `incremental_replans`) on top of the batch set.
/// Instrumentation is strictly observational: the report is bit-identical
/// to [`run_online`] on the same config.
#[must_use]
pub fn run_online_instrumented(config: &OnlineConfig, telemetry: &Telemetry) -> OnlineReport {
    let campaign_span = telemetry.span("online_campaign");
    let root = campaign_span.id();
    let setup = telemetry.span_under("setup", root);
    let mut campaign = Campaign::new(&config.base, telemetry, root);
    drop(setup);

    // Same stream layout as the batch campaign (master forks 3/5/6), so
    // an online run faces the same perturbation/fault schedule per seed.
    let mut master = SimRng::seed_from(config.base.seed);
    let mut jobs_rng = master.fork(3);
    let mut pert_rng = master.fork(5);
    let mut fault_rng = master.fork(6);
    let horizon_end = campaign.horizon_end;
    let jobs = generate_arrivals(
        &config.base.job_config,
        config.base.jobs,
        &config.arrivals,
        horizon_end,
        &mut jobs_rng,
    );
    let mut events: Vec<FlowEvent> = jobs.into_iter().map(FlowEvent::Release).collect();
    events.extend(campaign.dynamics_events(&mut pert_rng, &mut fault_rng));

    let online = Online {
        campaign,
        config,
        admission: Vec::new(),
        queue_waits: Vec::new(),
        queue_peak: 0,
        next_arrival_seq: 0,
    };
    // The same event kernel as the batch campaign drives the serving
    // loop; only the machine plugged into it differs.
    let budget = flow_event_budget(events.len());
    let mut online = drive(events, online, budget);
    online.settle_due(horizon_end);
    let finalize_span = telemetry.span_under("finalize", root);
    let report = online.finalize();
    drop(finalize_span);
    report
}

struct Online<'a> {
    campaign: Campaign<'a>,
    config: &'a OnlineConfig,
    /// Parallel to `campaign.records`, in arrival order.
    admission: Vec<AdmissionRecord>,
    /// Queue waits of admitted jobs, in ticks.
    queue_waits: Vec<u64>,
    queue_peak: usize,
    /// Global arrival counter; stamps [`Queued::arrival_seq`] so the
    /// admission pass can merge the per-domain queues back into one
    /// deterministic FIFO order.
    next_arrival_seq: u64,
}

impl FlowMachine for Online<'_> {
    fn settle(&mut self, now: SimTime) {
        self.settle_due(now);
    }

    fn on_release(&mut self, job: Job) {
        self.on_arrival(job);
    }

    fn on_perturbation(&mut self, at: SimTime, node: NodeId, len: SimDuration) {
        self.campaign.handle_perturbation(at, node, len);
    }

    fn on_fault(&mut self, fault: Fault) {
        self.campaign.handle_fault(fault);
    }

    fn after_event(&mut self, now: SimTime) {
        // Incremental replanning: every event can change feasibility, so
        // every queued job gets a fresh probe — no batch regeneration.
        self.drain_queue(now);
    }
}

impl Online<'_> {
    /// Settles every due overrun *and* completion up to `now`, in global
    /// time order (an overrun at the same instant goes first — it extends
    /// windows and can push the completion later; ties within a kind fall
    /// back to the global activation sequence). The batch campaign settles
    /// overruns only; observing completions online is what lets terminal
    /// events carry their realized instant.
    fn settle_due(&mut self, now: SimTime) {
        loop {
            let overrun = self
                .campaign
                .meta
                .jobs()
                .filter(|(_, a)| !a.dropped)
                .filter_map(|(h, a)| a.pending_overrun.map(|(t, task)| (t, a.seq, task, h)))
                .filter(|&(t, _, _, _)| t <= now)
                .min_by_key(|&(t, seq, task, _)| (t, seq, task));
            let completion = self
                .campaign
                .meta
                .jobs()
                .filter(|(_, a)| !a.dropped && a.completed.is_none() && a.pending_overrun.is_none())
                .filter_map(|(h, a)| {
                    let end = a
                        .current
                        .values()
                        .map(|p| p.window.end())
                        .max()
                        .unwrap_or(a.activation);
                    (end <= now).then_some((end, a.seq, h))
                })
                .min_by_key(|&(end, seq, _)| (end, seq));
            match (overrun, completion) {
                (Some((t, _, task, h)), completion)
                    if completion.is_none_or(|(end, _, _)| t <= end) =>
                {
                    self.campaign.handle_overrun(h, t, task);
                }
                (_, Some((end, _, h))) => {
                    let job = self.campaign.meta.job(h).job.id();
                    self.campaign.meta.job_mut(h).completed = Some(end);
                    self.campaign
                        .record_event(end, CampaignEvent::Completed { job, end });
                }
                (None, None) => return,
                (Some(_), None) => unreachable!("first arm covers completion == None"),
            }
        }
    }

    /// One streamed arrival: trace it, open its record, and enqueue it —
    /// or reject it outright when the bounded queue is full.
    fn on_arrival(&mut self, job: Job) {
        let at = job.release();
        let _span = self
            .campaign
            .telemetry
            .span_under("arrival", self.campaign.root);
        self.campaign.telemetry.incr(Counter::JobsArrived);
        let job_id = job.id();
        self.campaign
            .record_event(at, CampaignEvent::Arrived { job: job_id });
        let kind = self.campaign.meta.assign(&job);
        let record = self.campaign.records.len();
        self.campaign.records.push(JobRecord {
            job_id,
            strategy: kind,
            release: at,
            admissible: false,
            collisions_fast: 0,
            collisions_slow: 0,
            schedules: 0,
            scenario_multiplier: None,
            cost: None,
            mean_task_window: None,
            planned_makespan: None,
            start_deviation_ratio: None,
            time_to_live: None,
            data_traffic: None,
            nodes_used: None,
            home_domain: None,
            breaks: 0,
            switches: 0,
            migrations: 0,
            dropped: false,
        });
        self.admission.push(AdmissionRecord {
            job_id,
            arrival: at,
            outcome: AdmissionOutcome::Deferred,
            probes: 0,
        });
        // The queue bound is a system-wide admission capacity, shared
        // across every domain's manager.
        if self.campaign.meta.total_queued() >= self.config.queue_capacity {
            self.reject(record, at, RejectReason::QueueFull);
            return;
        }
        let deadline_abs = at.saturating_add(job.deadline());
        let arrival_seq = self.next_arrival_seq;
        self.next_arrival_seq += 1;
        // Tentative home until activation: the least-loaded manager
        // queues the arrival (ties to the lowest domain id).
        let home = self.campaign.meta.least_loaded();
        self.campaign
            .meta
            .manager_mut(home)
            .queue
            .push_back(Queued {
                arrival_seq,
                job,
                kind,
                record,
                arrival: at,
                deadline_abs,
                probes: 0,
            });
        let depth = self.campaign.meta.total_queued();
        self.queue_peak = self.queue_peak.max(depth);
        self.campaign
            .telemetry
            .record_max(Counter::QueuePeakDepth, depth as u64);
    }

    fn reject(&mut self, record: usize, at: SimTime, reason: RejectReason) {
        self.campaign.telemetry.incr(Counter::JobsRejected);
        let job_id = self.campaign.records[record].job_id;
        self.campaign.record_event(
            at,
            CampaignEvent::Rejected {
                job: job_id,
                reason,
            },
        );
        self.admission[record].outcome = AdmissionOutcome::Rejected { at, reason };
    }

    /// Probes every queued job once, oldest first (arrival order, merged
    /// across all domains' queues), admitting and rejecting in place.
    /// Jobs admitted earlier in the pass shrink availability for later
    /// ones — each probe opens a fresh session snapshot.
    fn drain_queue(&mut self, now: SimTime) {
        // Snapshot the merged queue membership up front: admissions never
        // enqueue, so each snapshotted arrival is decided exactly once.
        let mut snapshot: Vec<(u64, usize)> = self
            .campaign
            .meta
            .managers()
            .iter()
            .enumerate()
            .flat_map(|(m, mgr)| mgr.queue.iter().map(move |q| (q.arrival_seq, m)))
            .collect();
        snapshot.sort_unstable();
        for (arrival_seq, m) in snapshot {
            let Some(pos) = self.campaign.meta.managers()[m]
                .queue
                .iter()
                .position(|q| q.arrival_seq == arrival_seq)
            else {
                continue;
            };
            match self.decide(m, pos, now) {
                Decision::Admit => {
                    let entry = self
                        .campaign
                        .meta
                        .manager_mut(m)
                        .queue
                        .remove(pos)
                        .expect("index in bounds");
                    if let Some(entry) = self.admit(entry, now) {
                        // The full sweep disagreed with the probe; the
                        // job stays queued for the next event.
                        self.campaign.meta.manager_mut(m).queue.insert(pos, entry);
                    }
                }
                Decision::Reject => {
                    let entry = self
                        .campaign
                        .meta
                        .manager_mut(m)
                        .queue
                        .remove(pos)
                        .expect("index in bounds");
                    self.reject(entry.record, now, RejectReason::Unmeetable);
                }
                Decision::Defer => {}
            }
        }
    }

    /// The deadline/budget admission probe: one single-pass best-case
    /// (MS1-style) planning attempt under `MinTime { budget }` against the
    /// job's absolute deadline.
    fn decide(&mut self, m: usize, pos: usize, now: SimTime) -> Decision {
        let probes = {
            let entry = &mut self.campaign.meta.manager_mut(m).queue[pos];
            entry.probes += 1;
            entry.probes
        };
        self.campaign.telemetry.incr(Counter::AdmissionProbes);
        if probes > 1 {
            self.campaign.telemetry.incr(Counter::IncrementalReplans);
        }
        let entry = &self.campaign.meta.managers()[m].queue[pos];
        self.admission[entry.record].probes = probes;
        let span = self
            .campaign
            .telemetry
            .span_under("admission_probe", self.campaign.root);
        let config = StrategyConfig::for_kind(entry.kind, &self.campaign.pool);
        let policy = config
            .policy()
            .clone()
            .with_transfer_model(self.campaign.config.transfer_model.clone());
        // Probe the job the strategy would actually plan: S3 coarsens.
        let coarsened;
        let planning_job = if config.coarse_grain() {
            coarsened = coarsen(&entry.job).job;
            &coarsened
        } else {
            &entry.job
        };
        let session = PlanningSession::open_instrumented(
            &self.campaign.pool,
            &self.campaign.telemetry,
            span.id(),
        );
        let req = ScheduleRequest {
            job: planning_job,
            pool: &self.campaign.pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: now,
        };
        let feasible = session
            .probe(
                &req,
                entry.deadline_abs,
                Objective::MinTime {
                    budget: self.config.probe_budget,
                },
            )
            .is_ok();
        if feasible {
            return Decision::Admit;
        }
        // A failed probe defers — today's congestion may clear — unless
        // even a perfect node could no longer fit the critical path before
        // the deadline, in which case no amount of waiting helps.
        let lower_bound = now.saturating_add(entry.job.critical_path(Perf::FULL));
        if lower_bound > entry.deadline_abs {
            Decision::Reject
        } else {
            Decision::Defer
        }
    }

    /// Admits one probed job: re-anchor it at the admission instant, run
    /// the full strategy sweep (persistent worker pool), and activate the
    /// matching supporting schedule.
    ///
    /// Returns the entry untouched — for the caller to re-queue — in the
    /// rare case where the sweep yields no supporting schedule despite the
    /// successful probe: the probe plans under `MinTime` while the sweep's
    /// scenario passes plan under `MinCost`, and the two criteria can fail
    /// in opposite directions. Admission commits only once a supporting
    /// schedule actually exists, so every *admitted* job has one.
    fn admit(&mut self, entry: Queued, now: SimTime) -> Option<Queued> {
        let span = self
            .campaign
            .telemetry
            .span_under("admit", self.campaign.root);
        // A deferred job is re-anchored at its admission instant; its
        // *absolute* deadline never moves.
        let job = if now > entry.arrival {
            entry
                .job
                .with_timing(now, entry.deadline_abs.saturating_since(now))
        } else {
            entry.job.clone()
        };
        let job_id = job.id();
        let config = StrategyConfig::for_kind(entry.kind, &self.campaign.pool);
        let policy = config
            .policy()
            .clone()
            .with_transfer_model(self.campaign.config.transfer_model.clone());
        let config = config.with_policy(policy);
        let strategy = Strategy::generate_owned_kind(
            job,
            &self.campaign.pool,
            &config,
            now,
            self.campaign.effective_executor(),
            &self.campaign.telemetry,
            span.id(),
        );
        if !strategy.is_admissible() {
            return Some(entry);
        }
        let record = entry.record;
        self.campaign.telemetry.incr(Counter::JobsAdmitted);
        // Admission *is* the online release to the metascheduler; keep the
        // batch-level counter consistent.
        self.campaign.telemetry.incr(Counter::JobsReleased);
        let mut fast = 0;
        let mut slow = 0;
        for c in strategy.collisions() {
            if c.group.is_fast() {
                fast += 1;
            } else {
                slow += 1;
            }
        }
        {
            let r = &mut self.campaign.records[record];
            r.release = now;
            r.admissible = true;
            r.collisions_fast = fast;
            r.collisions_slow = slow;
            r.schedules = strategy.distributions().len();
        }
        self.campaign.record_event(
            now,
            CampaignEvent::Released {
                job: job_id,
                admissible: true,
            },
        );
        self.admission[record].outcome = AdmissionOutcome::Admitted { at: now };
        self.queue_waits
            .push(now.saturating_since(entry.arrival).ticks());
        self.campaign
            .activate(strategy, config, record, now, span.id());
        None
    }

    fn finalize(self) -> OnlineReport {
        let Online {
            campaign,
            mut admission,
            queue_waits,
            queue_peak,
            ..
        } = self;
        // Whatever is still queued at the horizon stayed deferred.
        debug_assert!(
            campaign
                .meta
                .managers()
                .iter()
                .flat_map(|m| m.queue.iter())
                .all(|q| admission[q.record].outcome == AdmissionOutcome::Deferred),
            "queued entries carry the Deferred outcome"
        );
        let mut summary = AdmissionSummary {
            arrived: admission.len(),
            queue_peak,
            ..AdmissionSummary::default()
        };
        for a in &mut admission {
            summary.probes += a.probes;
            summary.incremental_replans += a.probes.saturating_sub(1);
            match a.outcome {
                AdmissionOutcome::Admitted { .. } => summary.admitted += 1,
                AdmissionOutcome::Rejected { reason, .. } => {
                    summary.rejected += 1;
                    match reason {
                        RejectReason::QueueFull => summary.rejected_queue_full += 1,
                        RejectReason::Unmeetable => summary.rejected_unmeetable += 1,
                    }
                }
                AdmissionOutcome::Deferred => summary.deferred += 1,
            }
        }
        // Sized to the observed wait range (not the horizon) so the
        // bucket resolution matches typical waits; the max wait is fully
        // seed-determined, so the histogram stays deterministic.
        let max_wait = queue_waits.iter().copied().max().unwrap_or(0);
        let mut queue_wait = Histogram::new(0.0, (max_wait + 1) as f64, 32);
        for &w in &queue_waits {
            queue_wait.record(w as f64);
        }
        campaign.telemetry.set_gauge(
            "queue_wait_mean",
            if queue_waits.is_empty() {
                0.0
            } else {
                queue_waits.iter().sum::<u64>() as f64 / queue_waits.len() as f64
            },
        );
        let report = campaign.finalize();
        OnlineReport {
            report,
            admission,
            summary,
            queue_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> OnlineConfig {
        OnlineConfig {
            base: CampaignConfig {
                jobs: 20,
                perturbations: 15,
                collect_trace: true,
                ..CampaignConfig::default()
            },
            arrivals: ArrivalProcess::Poisson { rate: 0.1 },
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn online_campaign_is_deterministic() {
        let cfg = small_config();
        let a = run_online(&cfg);
        let b = run_online(&cfg);
        assert_eq!(a.report.records, b.report.records);
        assert_eq!(a.report.trace, b.report.trace);
        assert_eq!(a.admission, b.admission);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.queue_wait, b.queue_wait);
    }

    #[test]
    fn every_arrival_is_accounted_for() {
        let report = run_online(&small_config());
        assert!(report.counters_reconcile(), "{:?}", report.summary);
        assert_eq!(report.summary.arrived, report.report.records.len());
        assert_eq!(report.summary.arrived, report.admission.len());
        assert!(report.summary.admitted > 0, "some job must be admitted");
    }

    #[test]
    fn admitted_jobs_complete_or_break_online() {
        use crate::trace::CampaignEvent;
        let report = run_online(&small_config());
        let trace = report.report.trace.as_ref().expect("trace collected");
        // Completions are traced at their realized instants, before the
        // horizon closes them in batch mode.
        let completed = trace.count(|e| matches!(e, CampaignEvent::Completed { .. }));
        assert!(completed > 0, "online completions must be observed");
        let arrived = trace.count(|e| matches!(e, CampaignEvent::Arrived { .. }));
        assert_eq!(arrived, report.summary.arrived);
    }

    #[test]
    fn trace_driven_arrivals_work() {
        let cfg = OnlineConfig {
            base: CampaignConfig {
                jobs: 12,
                perturbations: 10,
                collect_trace: true,
                ..CampaignConfig::default()
            },
            arrivals: ArrivalProcess::Trace {
                gaps: vec![0, 0, 40],
            },
            ..OnlineConfig::default()
        };
        let report = run_online(&cfg);
        assert!(report.counters_reconcile());
        assert_eq!(report.summary.arrived, 12);
    }

    #[test]
    fn zero_capacity_queue_rejects_everything() {
        let cfg = OnlineConfig {
            queue_capacity: 0,
            ..small_config()
        };
        let report = run_online(&cfg);
        assert_eq!(report.summary.admitted, 0);
        assert_eq!(report.summary.rejected, report.summary.arrived);
        assert_eq!(report.summary.rejected_queue_full, report.summary.arrived);
        assert!(report.counters_reconcile());
    }
}
