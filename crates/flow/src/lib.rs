//! # gridsched-flow
//!
//! The job-flow level of Toporkov's PaCT 2009 framework: the hierarchical
//! metascheduler that groups user jobs into strategy flows (§2, Fig. 1),
//! and the end-to-end virtual-organization simulation that drives the
//! paper's experiments.
//!
//! - [`metascheduler`]: the top-tier dispatcher — flow assignment rules
//!   (single flow, round-robin, by job size), domain selection for
//!   activated schedules, and inter-domain migration across the
//!   per-domain job managers it owns;
//! - `job_manager` (crate-private): the middle tier — one manager per
//!   processor-node domain holding its admission queue and active
//!   supporting schedules;
//! - `driver` (crate-private): the shared event machine both campaign
//!   flavours run on, over the [`gridsched_sim::engine::Engine`] kernel
//!   with an event-budget runaway guard;
//! - [`simulation`]: the campaign driver — strategy generation per job,
//!   activation of the supporting schedule matching observed conditions,
//!   background perturbations, task overruns, and the dynamic reallocation
//!   mechanism (schedule breaks → replan around started tasks);
//! - [`faults`]: deterministic fault injection — node outages (reserved
//!   windows voided, running tasks migrate), node degradation (remaining
//!   runtimes inflate) and data-transfer faults (retry penalty, absorbed
//!   by active replication);
//! - [`online`]: the online serving layer — streaming arrivals from a
//!   seeded [`gridsched_workload::arrivals::ArrivalProcess`], a bounded
//!   admission queue with deadline/budget probes, and incremental
//!   replanning on arrival/completion/fault events;
//! - [`trace`]: the chronological campaign event log;
//! - [`oracle`]: the trace-invariant oracle that replays a trace against
//!   its report and the final pool — run automatically on every traced
//!   campaign in debug/test builds;
//! - [`report`]: per-job records and the aggregates Figs. 3–4 plot, plus
//!   fault/recovery accounting.
//!
//! # Examples
//!
//! ```
//! use gridsched_core::strategy::StrategyKind;
//! use gridsched_flow::metascheduler::FlowAssignment;
//! use gridsched_flow::simulation::{run_campaign, CampaignConfig};
//!
//! let report = run_campaign(&CampaignConfig {
//!     assignment: FlowAssignment::Single(StrategyKind::S2),
//!     jobs: 5,
//!     perturbations: 5,
//!     ..CampaignConfig::default()
//! });
//! assert_eq!(report.records.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
mod driver;
pub mod faults;
mod job_manager;
pub mod metascheduler;
pub mod online;
pub mod oracle;
pub mod report;
pub mod simulation;
pub mod trace;

pub use bridge::{domain_reservations, domain_reserved_ticks};
pub use faults::{Fault, FaultConfig, FaultKind, FaultPlan, FaultSummary};
pub use metascheduler::{FlowAssignment, Metascheduler};
pub use online::{
    run_online, run_online_instrumented, AdmissionOutcome, AdmissionRecord, AdmissionSummary,
    OnlineConfig, OnlineReport,
};
pub use oracle::{audit, audit_final_state, FinalJobState, OracleViolation};
pub use report::{DomainStat, JobRecord, VoReport};
pub use simulation::{run_campaign, run_campaign_instrumented, CampaignConfig};
pub use trace::{BreakKind, CampaignEvent, CampaignTrace, RejectReason};
