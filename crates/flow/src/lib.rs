//! # gridsched-flow
//!
//! The job-flow level of Toporkov's PaCT 2009 framework: the hierarchical
//! metascheduler that groups user jobs into strategy flows (§2, Fig. 1),
//! and the end-to-end virtual-organization simulation that drives the
//! paper's experiments.
//!
//! - [`metascheduler`]: flow assignment rules (single flow, round-robin,
//!   by job size);
//! - [`simulation`]: the campaign driver — strategy generation per job,
//!   activation of the supporting schedule matching observed conditions,
//!   background perturbations, task overruns, and the dynamic reallocation
//!   mechanism (schedule breaks → replan around started tasks);
//! - [`report`]: per-job records and the aggregates Figs. 3–4 plot.
//!
//! # Examples
//!
//! ```
//! use gridsched_core::strategy::StrategyKind;
//! use gridsched_flow::metascheduler::FlowAssignment;
//! use gridsched_flow::simulation::{run_campaign, CampaignConfig};
//!
//! let report = run_campaign(&CampaignConfig {
//!     assignment: FlowAssignment::Single(StrategyKind::S2),
//!     jobs: 5,
//!     perturbations: 5,
//!     ..CampaignConfig::default()
//! });
//! assert_eq!(report.records.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod metascheduler;
pub mod report;
pub mod simulation;
pub mod trace;

pub use bridge::{domain_reservations, domain_reserved_ticks};
pub use metascheduler::{FlowAssignment, Metascheduler};
pub use report::{JobRecord, VoReport};
pub use simulation::{run_campaign, CampaignConfig};
pub use trace::{BreakKind, CampaignEvent, CampaignTrace};
