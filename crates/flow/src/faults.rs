//! Fault injection for the VO campaign.
//!
//! The paper's resource dynamics (§2) cover *benign* dynamics: external
//! reservations appearing over time and task overruns. Real virtual
//! organizations also lose resources outright. This module adds a
//! deterministic, seed-forked schedule of injected faults:
//!
//! - **node outages** — every task reservation overlapping the outage
//!   window is voided; pending victims are replanned, already-started
//!   victims must *migrate* (restart elsewhere);
//! - **node degradation** — a node's relative performance drops, inflating
//!   every remaining runtime computed on it and surfacing as overruns;
//! - **data-transfer faults** — an inter-domain link incident at a node:
//!   jobs with a pending cross-domain input pay a retry penalty and
//!   replan, *unless* their data policy is active replication (S1/MS1),
//!   which reads a nearby replica and absorbs the fault.
//!
//! The plan is generated up front from a dedicated fork of the campaign's
//! master seed, so fault schedules are reproducible and independent of the
//! workload streams: changing the job mix never changes where faults land.

use std::fmt;

use gridsched_metrics::telemetry::{Counter, SpanId, Telemetry};
use gridsched_model::ids::NodeId;
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::{SimDuration, SimTime};

/// How many faults of each class to inject, and how severe they are.
///
/// The default injects nothing, so existing campaign configurations are
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Number of node outages over the horizon.
    pub outages: usize,
    /// Min/max outage length, in ticks (inclusive).
    pub outage_len: (u64, u64),
    /// Number of node degradations over the horizon.
    pub degradations: usize,
    /// Range the degradation multiplier is drawn from; the node's
    /// performance is scaled by it (values in `(0, 1)` slow the node).
    pub degradation_factor: (f64, f64),
    /// Number of data-transfer faults over the horizon.
    pub transfer_faults: usize,
    /// Min/max transfer retry penalty, in ticks (inclusive): the earliest
    /// time a victim may restart its remaining tasks is the fault time
    /// plus this re-drawn transfer cost.
    pub transfer_retry: (u64, u64),
}

impl FaultConfig {
    /// A configuration injecting no faults at all.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            outages: 0,
            outage_len: (4, 12),
            degradations: 0,
            degradation_factor: (0.4, 0.8),
            transfer_faults: 0,
            transfer_retry: (2, 6),
        }
    }

    /// Whether this configuration injects any fault.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.outages == 0 && self.degradations == 0 && self.transfer_faults == 0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What kind of fault strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node is unavailable for `len`; overlapping task reservations
    /// are voided.
    Outage {
        /// Outage length.
        len: SimDuration,
    },
    /// The node's performance is multiplied by `factor`.
    Degradation {
        /// Performance multiplier in `(0, 1]`.
        factor: f64,
    },
    /// An inter-domain transfer incident at the node; victims replan no
    /// earlier than the fault time plus `retry`.
    TransferFault {
        /// Retry penalty.
        retry: SimDuration,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Outage { len } => write!(f, "outage for {len}"),
            FaultKind::Degradation { factor } => write!(f, "degradation x{factor:.2}"),
            FaultKind::TransferFault { retry } => write!(f, "transfer fault, retry {retry}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// When it strikes.
    pub at: SimTime,
    /// The afflicted node.
    pub node: NodeId,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: {}", self.at, self.node, self.kind)
    }
}

/// A deterministic schedule of injected faults, sorted by time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Draws a plan from `config` over `[0, horizon)` on a pool of
    /// `node_count` nodes, consuming `rng` (fork a dedicated stream for
    /// it).
    ///
    /// Deterministic: identical inputs always produce the identical plan;
    /// different seeds virtually always differ (each fault consumes fresh
    /// draws for time, node and severity).
    #[must_use]
    pub fn generate(
        config: &FaultConfig,
        node_count: usize,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        if node_count == 0 || horizon.is_zero() {
            return FaultPlan::default();
        }
        let mut faults =
            Vec::with_capacity(config.outages + config.degradations + config.transfer_faults);
        let last_node = node_count as u64 - 1;
        let last_tick = horizon.ticks().saturating_sub(1);
        let draw_site = |rng: &mut SimRng| {
            let at = SimTime::from_ticks(rng.uniform_u64(0, last_tick));
            let node = NodeId::new(rng.uniform_u64(0, last_node) as u32);
            (at, node)
        };
        for _ in 0..config.outages {
            let (at, node) = draw_site(rng);
            let len =
                SimDuration::from_ticks(rng.uniform_u64(config.outage_len.0, config.outage_len.1));
            faults.push(Fault {
                at,
                node,
                kind: FaultKind::Outage { len },
            });
        }
        for _ in 0..config.degradations {
            let (at, node) = draw_site(rng);
            let (lo, hi) = config.degradation_factor;
            let factor = if hi > lo { rng.uniform_f64(lo, hi) } else { lo };
            faults.push(Fault {
                at,
                node,
                kind: FaultKind::Degradation {
                    factor: factor.clamp(0.05, 1.0),
                },
            });
        }
        for _ in 0..config.transfer_faults {
            let (at, node) = draw_site(rng);
            let retry = SimDuration::from_ticks(
                rng.uniform_u64(config.transfer_retry.0, config.transfer_retry.1),
            );
            faults.push(Fault {
                at,
                node,
                kind: FaultKind::TransferFault { retry },
            });
        }
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults }
    }

    /// [`FaultPlan::generate`] with a telemetry recorder attached: the
    /// draw runs under a `fault_plan` span (parented under `parent`) and
    /// the number of scheduled faults lands in
    /// [`Counter::FaultsPlanned`]. The plan itself is bit-identical to
    /// [`FaultPlan::generate`] on the same inputs.
    #[must_use]
    pub fn generate_instrumented(
        config: &FaultConfig,
        node_count: usize,
        horizon: SimDuration,
        rng: &mut SimRng,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Self {
        let _span = telemetry.span_under("fault_plan", parent);
        let plan = FaultPlan::generate(config, node_count, horizon, rng);
        telemetry.add(Counter::FaultsPlanned, plan.faults.len() as u64);
        plan
    }

    /// The scheduled faults, in time order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Campaign-wide fault and recovery accounting, surfaced in
/// [`crate::report::VoReport`].
///
/// Injection counters count faults that actually *struck* (a fault landing
/// past the horizon is discarded). Break counters classify every schedule
/// break by its cause, faulty or benign. Recovery counters classify how
/// breaks were resolved; breaks with nothing left to re-place resolve
/// trivially and appear in no recovery counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Node outages injected.
    pub outages_injected: usize,
    /// Node degradations injected.
    pub degradations_injected: usize,
    /// Transfer faults injected.
    pub transfer_faults_injected: usize,
    /// Transfer faults absorbed by active replication (a nearby replica
    /// made the broken link irrelevant).
    pub transfer_faults_absorbed: usize,
    /// Schedule breaks caused by external perturbations.
    pub breaks_by_perturbation: usize,
    /// Schedule breaks caused by task overruns.
    pub breaks_by_overrun: usize,
    /// Schedule breaks caused by node outages.
    pub breaks_by_outage: usize,
    /// Schedule breaks caused by transfer faults.
    pub breaks_by_transfer_fault: usize,
    /// Breaks resolved by switching to a precomputed supporting schedule.
    pub switches: usize,
    /// Breaks resolved by replanning pending tasks.
    pub replans: usize,
    /// Breaks resolved by migrating already-started tasks off a dead node
    /// (restart elsewhere) alongside the pending replan.
    pub migrations: usize,
    /// Breaks with no feasible resolution: the job was dropped.
    pub drops: usize,
}

impl FaultSummary {
    /// Total faults injected, over all classes.
    #[must_use]
    pub fn injected(&self) -> usize {
        self.outages_injected + self.degradations_injected + self.transfer_faults_injected
    }

    /// Total breaks recorded, over all causes.
    #[must_use]
    pub fn breaks(&self) -> usize {
        self.breaks_by_perturbation
            + self.breaks_by_overrun
            + self.breaks_by_outage
            + self.breaks_by_transfer_fault
    }

    /// Total non-trivial resolutions, over all mechanisms.
    #[must_use]
    pub fn resolutions(&self) -> usize {
        self.switches + self.replans + self.migrations + self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultConfig {
        FaultConfig {
            outages: 5,
            degradations: 4,
            transfer_faults: 6,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn default_injects_nothing() {
        assert!(FaultConfig::default().is_none());
        let plan = FaultPlan::generate(
            &FaultConfig::default(),
            10,
            SimDuration::from_ticks(100),
            &mut SimRng::seed_from(1),
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let make = |seed| {
            FaultPlan::generate(
                &cfg(),
                12,
                SimDuration::from_ticks(500),
                &mut SimRng::seed_from(seed),
            )
        };
        let a = make(9);
        let b = make(9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 15);
        assert!(a.faults().windows(2).all(|w| w[0].at <= w[1].at));
        // Every fault lands on a valid node inside the horizon.
        for f in a.faults() {
            assert!(f.at < SimTime::from_ticks(500));
            assert!(f.node.index() < 12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let make = |seed| {
            FaultPlan::generate(
                &cfg(),
                12,
                SimDuration::from_ticks(500),
                &mut SimRng::seed_from(seed),
            )
        };
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn empty_pool_or_horizon_yields_no_faults() {
        let mut rng = SimRng::seed_from(3);
        assert!(FaultPlan::generate(&cfg(), 0, SimDuration::from_ticks(10), &mut rng).is_empty());
        assert!(FaultPlan::generate(&cfg(), 10, SimDuration::ZERO, &mut rng).is_empty());
    }

    #[test]
    fn degradation_factors_stay_in_bounds() {
        let plan = FaultPlan::generate(
            &FaultConfig {
                degradations: 50,
                degradation_factor: (0.01, 1.5),
                ..FaultConfig::none()
            },
            4,
            SimDuration::from_ticks(100),
            &mut SimRng::seed_from(11),
        );
        for f in plan.faults() {
            let FaultKind::Degradation { factor } = f.kind else {
                panic!("only degradations scheduled");
            };
            assert!((0.05..=1.0).contains(&factor), "{factor}");
        }
    }

    #[test]
    fn summary_totals_add_up() {
        let s = FaultSummary {
            outages_injected: 2,
            degradations_injected: 1,
            transfer_faults_injected: 3,
            transfer_faults_absorbed: 1,
            breaks_by_perturbation: 4,
            breaks_by_overrun: 5,
            breaks_by_outage: 2,
            breaks_by_transfer_fault: 2,
            switches: 3,
            replans: 6,
            migrations: 1,
            drops: 2,
        };
        assert_eq!(s.injected(), 6);
        assert_eq!(s.breaks(), 13);
        assert_eq!(s.resolutions(), 12);
    }
}
