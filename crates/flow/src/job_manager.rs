//! Per-domain job managers: the middle tier of the paper's hierarchy.
//!
//! §2, Fig. 1 places a *job manager* over each processor-node domain: the
//! metascheduler distributes job-flows between domains, and each domain's
//! manager owns the supporting schedules executing there — its admission
//! queue (online serving), its active jobs, and the hand-off bookkeeping
//! when a reallocation moves a job's schedule into another domain
//! (migration, see [`crate::metascheduler::Metascheduler`]).
//!
//! # Determinism
//!
//! Sharding live jobs across managers must not change any campaign
//! decision, so every cross-manager scan orders jobs by their global
//! activation sequence number [`ActiveJob::seq`] — exactly the order the
//! pre-hierarchy flat job vector produced. The tie-break contract is
//! documented on `DESIGN.md`'s hierarchy section and pinned bit-for-bit by
//! `tests/hierarchy.rs` against recorded monolithic traces.

use std::collections::{HashMap, VecDeque};

use gridsched_core::distribution::{Distribution, Placement};
use gridsched_core::strategy::StrategyKind;
use gridsched_data::policy::{DataPolicy, DataPolicyKind};
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{DomainId, NodeId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::timetable::ReservationId;
use gridsched_sim::time::SimTime;

/// One job's live state inside a domain's job manager.
///
/// `pub(crate)` (with its fields) so the [`crate::simulation`] dynamics
/// engine and the [`crate::online`] serving loop drive the same state.
#[derive(Debug, Clone)]
pub(crate) struct ActiveJob {
    /// Global activation sequence number, assigned by the metascheduler:
    /// the total order every cross-domain scan ties on.
    pub(crate) seq: u64,
    pub(crate) record: usize,
    pub(crate) job: Job,
    pub(crate) policy: DataPolicy,
    pub(crate) scenario: EstimateScenario,
    pub(crate) activation: SimTime,
    pub(crate) deadline_abs: SimTime,
    pub(crate) current: HashMap<TaskId, Placement>,
    pub(crate) reservations: HashMap<TaskId, ReservationId>,
    pub(crate) task_factors: Vec<f64>,
    /// The strategy's other supporting schedules, available for switching
    /// while no task has started yet.
    pub(crate) alternatives: Vec<Distribution>,
    /// Start times of the user's optimistic forecast (the best-case
    /// supporting schedule), per task.
    pub(crate) reference_starts: Vec<SimTime>,
    /// Planned runtime of that forecast, in ticks.
    pub(crate) reference_runtime: f64,
    /// `(break time, overrunning task)` of the earliest pending overrun.
    pub(crate) pending_overrun: Option<(SimTime, TaskId)>,
    pub(crate) first_break: Option<SimTime>,
    pub(crate) dropped: bool,
    /// Realized completion instant, once the online loop observes every
    /// window closed. Batch campaigns never set it: completion facts are
    /// only known at the horizon there, and the campaign finalizer stamps
    /// them for every surviving job whose completion was not yet recorded.
    pub(crate) completed: Option<SimTime>,
}

/// One queued arrival awaiting admission in a domain's manager.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    /// Global arrival sequence number: the admission pass processes all
    /// domains' queues merged in this order (the pre-hierarchy single
    /// queue's FIFO order).
    pub(crate) arrival_seq: u64,
    pub(crate) job: Job,
    pub(crate) kind: StrategyKind,
    pub(crate) record: usize,
    pub(crate) arrival: SimTime,
    pub(crate) deadline_abs: SimTime,
    pub(crate) probes: usize,
}

/// Addresses one live job: which manager holds it and at which slot.
///
/// Handles are invalidated by [`crate::metascheduler::Metascheduler::rehome`]
/// (migration swaps slots) — re-resolve by job id afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobHandle {
    pub(crate) manager: usize,
    pub(crate) slot: usize,
}

/// The job manager of one processor-node domain.
#[derive(Debug, Clone)]
pub(crate) struct JobManager {
    domain: DomainId,
    /// Jobs homed here (majority of reserved ticks in this domain).
    /// Dropped jobs stay in place — their records still finalize.
    pub(crate) active: Vec<ActiveJob>,
    /// This domain's admission queue (online serving only; batch
    /// campaigns admit at release and never queue).
    pub(crate) queue: VecDeque<Queued>,
}

impl JobManager {
    pub(crate) fn new(domain: DomainId) -> Self {
        JobManager {
            domain,
            active: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// The domain this manager schedules.
    pub(crate) fn domain(&self) -> DomainId {
        self.domain
    }

    /// Load metric the metascheduler balances arrivals on: live (not yet
    /// dropped) jobs plus queued arrivals.
    pub(crate) fn load(&self) -> usize {
        self.active.iter().filter(|a| !a.dropped).count() + self.queue.len()
    }
}

/// Whether `a` has a pending inter-node data transfer exposed to an
/// incident at `node` at time `at` — the shared transfer-fault test of
/// both flow drivers.
///
/// A transfer is in flight while its consumer has not started; same-node
/// exchanges never touch the network. Static storage stages every
/// cross-node exchange through the storage node, so it is exposed to
/// incidents there as well as at either endpoint; every other policy
/// moves data directly and only inter-domain transfers traverse the
/// faulted backbone link.
pub(crate) fn transfer_exposed(
    a: &ActiveJob,
    node: NodeId,
    at: SimTime,
    pool: &ResourcePool,
) -> bool {
    a.job.edges().iter().any(|e| {
        let from = &a.current[&e.from()];
        let to = &a.current[&e.to()];
        if to.window.start() <= at || from.node == to.node {
            return false;
        }
        let touches = from.node == node || to.node == node;
        match a.policy.kind() {
            DataPolicyKind::StaticStorage => touches || a.policy.storage_node() == Some(node),
            _ => touches && pool.node(from.node).domain() != pool.node(to.node).domain(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_manager_is_idle() {
        let m = JobManager::new(DomainId::new(3));
        assert_eq!(m.domain(), DomainId::new(3));
        assert_eq!(m.load(), 0);
        assert!(m.active.is_empty());
        assert!(m.queue.is_empty());
    }
}
