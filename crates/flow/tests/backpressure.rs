//! Backpressure: a bursty trace-driven arrival process saturates the
//! bounded admission queue. The drop ordering must be deterministic (the
//! newest arrival is shed), the rejection counters must match the report,
//! and the trace-invariant oracle must accept the run.

use gridsched_flow::online::{run_online, AdmissionOutcome, OnlineConfig};
use gridsched_flow::oracle::audit;
use gridsched_flow::simulation::CampaignConfig;
use gridsched_flow::trace::{CampaignEvent, RejectReason};
use gridsched_workload::arrivals::ArrivalProcess;

fn burst_config() -> OnlineConfig {
    OnlineConfig {
        base: CampaignConfig {
            jobs: 24,
            perturbations: 10,
            collect_trace: true,
            seed: 909,
            ..CampaignConfig::default()
        },
        // Bursts of six simultaneous arrivals, then a long lull.
        arrivals: ArrivalProcess::Trace {
            gaps: vec![0, 0, 0, 0, 0, 120],
        },
        queue_capacity: 2,
        ..OnlineConfig::default()
    }
}

/// The burst overwhelms the 2-deep queue: queue-full rejections must
/// occur, land at the exact arrival instants, and hit the *newest*
/// arrivals (everything older already holds a queue slot).
#[test]
fn bursts_shed_the_newest_arrivals_deterministically() {
    let cfg = burst_config();
    let report = run_online(&cfg);
    assert!(
        report.summary.rejected_queue_full > 0,
        "a 6-wide burst against a 2-deep queue must shed load: {:?}",
        report.summary
    );
    for a in &report.admission {
        if let AdmissionOutcome::Rejected {
            at,
            reason: RejectReason::QueueFull,
        } = a.outcome
        {
            assert_eq!(
                at, a.arrival,
                "{}: queue-full is decided on arrival",
                a.job_id
            );
            assert_eq!(a.probes, 0, "{}: shed arrivals are never probed", a.job_id);
        }
    }
    // Within every simultaneous burst, shed jobs arrived after every job
    // that got a queue slot: drop ordering is newest-first, hence
    // deterministic — no tie-breaking on anything but arrival order.
    let mut seen_rejected_at = Vec::new();
    for a in &report.admission {
        if matches!(
            a.outcome,
            AdmissionOutcome::Rejected {
                reason: RejectReason::QueueFull,
                ..
            }
        ) {
            seen_rejected_at.push((a.arrival, a.job_id));
        } else {
            assert!(
                !seen_rejected_at
                    .iter()
                    .any(|&(t, shed)| t == a.arrival && shed < a.job_id),
                "{}: admitted/queued although an older same-instant arrival was shed",
                a.job_id
            );
        }
    }
    // Bit-identical under re-run, including which jobs were shed.
    let again = run_online(&cfg);
    assert_eq!(report.admission, again.admission);
    assert_eq!(report.report.trace, again.report.trace);
}

/// The rejection counters reconcile with the trace and the report, and
/// the oracle accepts the saturated run.
#[test]
fn saturated_runs_keep_counters_and_oracle_consistent() {
    let report = run_online(&burst_config());
    assert!(report.counters_reconcile(), "{:?}", report.summary);
    let trace = report.report.trace.as_ref().expect("trace collected");
    assert_eq!(
        trace.count(|e| matches!(
            e,
            CampaignEvent::Rejected {
                reason: RejectReason::QueueFull,
                ..
            }
        )),
        report.summary.rejected_queue_full,
        "every shed arrival is traced exactly once"
    );
    assert_eq!(
        trace.count(|e| matches!(e, CampaignEvent::Rejected { .. })),
        report.summary.rejected
    );
    // Shed jobs never make it into the pool: no released/activated events.
    for a in &report.admission {
        if matches!(a.outcome, AdmissionOutcome::Rejected { .. }) {
            assert_eq!(
                trace
                    .for_job(a.job_id)
                    .filter(|(_, e)| !matches!(
                        e,
                        CampaignEvent::Arrived { .. } | CampaignEvent::Rejected { .. }
                    ))
                    .count(),
                0,
                "{}: rejected job leaked into the campaign",
                a.job_id
            );
        }
    }
    audit(&report.report).expect("oracle must accept the saturated run");
}

/// Draining works: the burst's survivors are probed again on later events
/// (incremental replans), and every re-probed job eventually reaches a
/// terminal decision *after* its arrival instant — the queue does not
/// silently sit on work.
#[test]
fn lulls_drain_the_queue_with_incremental_replans() {
    let report = run_online(&burst_config());
    assert!(
        report.summary.incremental_replans > 0,
        "queued survivors must be re-probed: {:?}",
        report.summary
    );
    let late_decisions = report
        .admission
        .iter()
        .filter(|a| match a.outcome {
            AdmissionOutcome::Admitted { at }
            | AdmissionOutcome::Rejected {
                at,
                reason: RejectReason::Unmeetable,
            } => at > a.arrival,
            _ => false,
        })
        .count();
    assert!(
        late_decisions > 0,
        "re-probes must settle deferred jobs after their arrival: {:?}",
        report.summary
    );
    assert!(
        report.summary.queue_peak <= 2,
        "peak bounded by capacity: {:?}",
        report.summary
    );
}
