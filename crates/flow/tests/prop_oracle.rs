//! Property tests for the trace-invariant oracle.
//!
//! Two halves. First, *soundness on real campaigns*: arbitrary small
//! campaign configurations — random job counts, background load,
//! perturbation pressure and fault mixes across every strategy kind —
//! always produce traces the oracle accepts. Second, *sensitivity to
//! corruption*: a clean campaign trace or report, mutated in any of
//! several distinct corruption classes (chronology violations, lifecycle
//! violations, phantom events, erased terminals, tampered record counters,
//! tampered fault accounting), is always rejected.

use gridsched_core::strategy::StrategyKind;
use gridsched_flow::faults::FaultConfig;
use gridsched_flow::metascheduler::FlowAssignment;
use gridsched_flow::oracle::{self, OracleViolation};
use gridsched_flow::simulation::{run_campaign, CampaignConfig};
use gridsched_flow::trace::{BreakKind, CampaignEvent};
use gridsched_flow::VoReport;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::time::{SimDuration, SimTime};

/// Draws a small arbitrary campaign configuration: a handful of jobs, a
/// random strategy, random benign noise and a random fault mix.
fn arbitrary_config(g: &mut Gen) -> CampaignConfig {
    let kind = *g.pick(&StrategyKind::ALL);
    let slow_lo = g.f64_in(1.0, 1.5);
    let slow_hi = slow_lo + g.f64_in(0.0, 1.0);
    CampaignConfig {
        assignment: FlowAssignment::Single(kind),
        jobs: g.usize_in(3, 14),
        background_load: g.f64_in(0.0, 0.5),
        perturbations: g.usize_in(0, 25),
        slowdown_range: (slow_lo, slow_hi),
        task_jitter: g.f64_in(0.0, 0.2),
        horizon: SimDuration::from_ticks(g.u64_in(200, 600)),
        faults: FaultConfig {
            outages: g.usize_in(0, 6),
            outage_len: (2, g.u64_in(4, 20)),
            degradations: g.usize_in(0, 5),
            transfer_faults: g.usize_in(0, 6),
            transfer_retry: (1, g.u64_in(2, 8)),
            ..FaultConfig::none()
        },
        collect_trace: true,
        seed: g.u64_in(0, u64::MAX - 1),
        ..CampaignConfig::default()
    }
}

/// Runs an arbitrary campaign and hands the (oracle-clean) report to the
/// mutation under test; the mutated report must be rejected.
fn rejects(g: &mut Gen, corrupt: impl Fn(&mut Gen, &mut VoReport) -> bool) {
    let config = arbitrary_config(g);
    let mut report = run_campaign(&config);
    oracle::audit(&report).expect("uncorrupted campaign must be oracle-clean");
    if corrupt(g, &mut report) {
        assert!(
            oracle::audit(&report).is_err(),
            "corrupted report slipped past the oracle (config {config:?})"
        );
    }
}

#[test]
fn arbitrary_small_campaigns_are_oracle_clean() {
    check(48, |g| {
        let config = arbitrary_config(g);
        let report = run_campaign(&config);
        oracle::audit(&report).unwrap_or_else(|v| {
            panic!("oracle violation on a real campaign: {v} (config {config:?})")
        });
    });
}

// ---- Corruption class 1: chronology ----------------------------------

#[test]
fn mutation_time_reversal_is_rejected() {
    check(32, |g| {
        rejects(g, |g, report| {
            let trace = report.trace.as_mut().expect("trace collected");
            let events = trace.events_mut();
            if events.len() < 2 {
                return false;
            }
            // Push one event's timestamp past its successor's, leaving
            // the order of events untouched.
            let i = g.usize_in(0, events.len() - 2);
            let next = events[i + 1].0;
            events[i].0 = SimTime::from_ticks(next.ticks() + 1 + g.u64_in(0, 50));
            true
        });
    });
}

// ---- Corruption class 2: lifecycle (phantom events) ------------------

#[test]
fn mutation_phantom_break_is_rejected() {
    check(32, |g| {
        rejects(g, |g, report| {
            let Some(job) = report
                .records
                .iter()
                .find(|r| r.cost.is_some())
                .map(|r| r.job_id)
            else {
                return false;
            };
            let trace = report.trace.as_mut().expect("trace collected");
            let at = trace
                .events()
                .last()
                .map(|(t, _)| *t)
                .unwrap_or(SimTime::ZERO);
            let kind = *g.pick(&BreakKind::ALL);
            trace
                .events_mut()
                .push((at, CampaignEvent::Broken { job, kind }));
            true
        });
    });
}

#[test]
fn mutation_duplicate_release_is_rejected() {
    check(32, |g| {
        rejects(g, |_, report| {
            let trace = report.trace.as_mut().expect("trace collected");
            let Some(release) = trace
                .events()
                .iter()
                .find(|(_, e)| matches!(e, CampaignEvent::Released { .. }))
                .copied()
            else {
                return false;
            };
            let at = trace
                .events()
                .last()
                .map(|(t, _)| *t)
                .unwrap_or(SimTime::ZERO);
            trace.events_mut().push((at, release.1));
            true
        });
    });
}

// ---- Corruption class 3: erased terminals ----------------------------

#[test]
fn mutation_erased_terminal_is_rejected() {
    check(32, |g| {
        rejects(g, |g, report| {
            let trace = report.trace.as_mut().expect("trace collected");
            let terminals: Vec<usize> = trace
                .events()
                .iter()
                .enumerate()
                .filter(|(_, (_, e))| {
                    matches!(
                        e,
                        CampaignEvent::Completed { .. } | CampaignEvent::Dropped { .. }
                    )
                })
                .map(|(i, _)| i)
                .collect();
            if terminals.is_empty() {
                return false;
            }
            let victim = *g.pick(&terminals);
            trace.events_mut().remove(victim);
            true
        });
    });
}

// ---- Corruption class 4: tampered per-job records --------------------

#[test]
fn mutation_record_tampering_is_rejected() {
    check(32, |g| {
        rejects(g, |g, report| {
            let activated: Vec<usize> = report
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.cost.is_some())
                .map(|(i, _)| i)
                .collect();
            if activated.is_empty() {
                return false;
            }
            let idx = *g.pick(&activated);
            let record = &mut report.records[idx];
            match g.usize_in(0, 3) {
                0 => record.breaks += 1,
                1 => record.dropped = !record.dropped,
                2 => record.migrations += 1,
                _ => {
                    let old = record.time_to_live.unwrap_or(SimDuration::ZERO);
                    record.time_to_live =
                        Some(SimDuration::from_ticks(old.ticks() + 1 + g.u64_in(0, 9)));
                }
            }
            true
        });
    });
}

// ---- Corruption class 5: tampered fault accounting -------------------

#[test]
fn mutation_fault_counter_tampering_is_rejected() {
    check(32, |g| {
        rejects(g, |g, report| {
            let f = &mut report.faults;
            let slot = g.usize_in(0, 5);
            let target: &mut usize = match slot {
                0 => &mut f.outages_injected,
                1 => &mut f.transfer_faults_injected,
                2 => &mut f.breaks_by_perturbation,
                3 => &mut f.replans,
                4 => &mut f.drops,
                _ => &mut f.switches,
            };
            *target += 1;
            true
        });
    });
}

/// The oracle names the corruption, not just "error": spot-check a few
/// deterministic mutations map to the expected violation class.
#[test]
fn violations_are_classified() {
    let config = CampaignConfig {
        assignment: FlowAssignment::Single(StrategyKind::S2),
        jobs: 10,
        perturbations: 10,
        faults: FaultConfig {
            outages: 3,
            transfer_faults: 3,
            ..FaultConfig::none()
        },
        horizon: SimDuration::from_ticks(400),
        collect_trace: true,
        seed: 7,
        ..CampaignConfig::default()
    };
    let clean = run_campaign(&config);
    oracle::audit(&clean).expect("clean campaign");

    // No trace at all.
    let mut r = clean.clone();
    r.trace = None;
    assert!(matches!(
        oracle::audit(&r),
        Err(OracleViolation::MissingTrace)
    ));

    // Chronology violation.
    let mut r = clean.clone();
    {
        let events = r.trace.as_mut().unwrap().events_mut();
        let next = events[1].0;
        events[0].0 = SimTime::from_ticks(next.ticks() + 1);
    }
    assert!(matches!(
        oracle::audit(&r),
        Err(OracleViolation::NonMonotoneTime { .. })
    ));

    // Fault-summary tampering.
    let mut r = clean.clone();
    r.faults.drops += 1;
    assert!(matches!(
        oracle::audit(&r),
        Err(OracleViolation::FaultAccountingMismatch { field: "drops", .. })
    ));
}
