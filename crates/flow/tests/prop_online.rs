//! Property sweep over the online serving layer: for a spread of seeds,
//! arrival processes and queue bounds, the admission-control invariants
//! must hold on every run, and the trace-invariant oracle must stay green.

use gridsched_flow::online::{run_online, AdmissionOutcome, OnlineConfig};
use gridsched_flow::oracle::audit;
use gridsched_flow::simulation::CampaignConfig;
use gridsched_flow::trace::{CampaignEvent, RejectReason};
use gridsched_workload::arrivals::ArrivalProcess;

fn configs() -> Vec<OnlineConfig> {
    let mut out = Vec::new();
    for seed in [3u64, 41, 2009, 8080] {
        for (arrivals, queue_capacity) in [
            (ArrivalProcess::Poisson { rate: 0.05 }, 16),
            (ArrivalProcess::Poisson { rate: 0.3 }, 3),
            (
                ArrivalProcess::Trace {
                    gaps: vec![0, 0, 0, 60],
                },
                2,
            ),
        ] {
            out.push(OnlineConfig {
                base: CampaignConfig {
                    jobs: 15,
                    perturbations: 12,
                    collect_trace: true,
                    seed,
                    ..CampaignConfig::default()
                },
                arrivals,
                queue_capacity,
                ..OnlineConfig::default()
            });
        }
    }
    out
}

/// The bounded queue is actually bounded: the observed high-water mark
/// never exceeds the configured capacity.
#[test]
fn queue_depth_never_exceeds_the_bound() {
    for cfg in configs() {
        let report = run_online(&cfg);
        assert!(
            report.summary.queue_peak <= cfg.queue_capacity,
            "peak {} > capacity {} (seed {})",
            report.summary.queue_peak,
            cfg.queue_capacity,
            cfg.base.seed
        );
    }
}

/// Every rejection is justified at admission time: queue-full rejections
/// were never probed (the queue had no room), and unmeetable rejections
/// burned at least one failed probe. No rejected job is ever released,
/// activated or completed.
#[test]
fn every_rejection_fails_the_admit_time_test() {
    for cfg in configs() {
        let report = run_online(&cfg);
        let trace = report.report.trace.as_ref().expect("trace collected");
        for (a, r) in report.admission.iter().zip(&report.report.records) {
            assert_eq!(a.job_id, r.job_id, "admission parallels records");
            let AdmissionOutcome::Rejected { reason, .. } = a.outcome else {
                continue;
            };
            match reason {
                RejectReason::QueueFull => {
                    assert_eq!(a.probes, 0, "{}: queue-full skips the probe", a.job_id);
                }
                RejectReason::Unmeetable => {
                    assert!(
                        a.probes >= 1,
                        "{}: unmeetable needs a failed probe",
                        a.job_id
                    );
                }
            }
            assert!(
                !r.admissible,
                "{}: rejected jobs are not admissible",
                a.job_id
            );
            let post_rejection = trace
                .for_job(a.job_id)
                .filter(|(_, e)| {
                    matches!(
                        e,
                        CampaignEvent::Released { .. }
                            | CampaignEvent::Activated { .. }
                            | CampaignEvent::Completed { .. }
                    )
                })
                .count();
            assert_eq!(
                post_rejection, 0,
                "{}: rejected job must stay out",
                a.job_id
            );
        }
    }
}

/// Every admitted job obtained at least one supporting schedule — the
/// admission probe's promise — and was traced as released and activated.
#[test]
fn every_admitted_job_gets_a_supporting_schedule() {
    for cfg in configs() {
        let report = run_online(&cfg);
        let trace = report.report.trace.as_ref().expect("trace collected");
        let mut admitted = 0;
        for (a, r) in report.admission.iter().zip(&report.report.records) {
            let AdmissionOutcome::Admitted { at } = a.outcome else {
                continue;
            };
            admitted += 1;
            assert!(
                at >= a.arrival,
                "{}: admission cannot precede arrival",
                a.job_id
            );
            assert!(
                r.admissible && r.schedules >= 1,
                "{}: admitted without a supporting schedule",
                a.job_id
            );
            assert!(a.probes >= 1, "{}: admission requires a probe", a.job_id);
            let activated = trace
                .for_job(a.job_id)
                .filter(|(_, e)| matches!(e, CampaignEvent::Activated { .. }))
                .count();
            assert_eq!(activated, 1, "{}: exactly one activation", a.job_id);
        }
        assert_eq!(admitted, report.summary.admitted);
    }
}

/// Conservation: every arrival is admitted, rejected or deferred —
/// nothing is lost, nothing is double-counted — and the trace-invariant
/// oracle accepts the whole run.
#[test]
fn arrivals_are_conserved_and_the_oracle_stays_green() {
    for cfg in configs() {
        let report = run_online(&cfg);
        assert!(
            report.counters_reconcile(),
            "seed {}: {:?}",
            cfg.base.seed,
            report.summary
        );
        assert_eq!(report.summary.arrived, report.admission.len());
        assert_eq!(report.summary.arrived, report.report.records.len());
        let trace = report.report.trace.as_ref().expect("trace collected");
        assert_eq!(
            trace.count(|e| matches!(e, CampaignEvent::Arrived { .. })),
            report.summary.arrived
        );
        assert_eq!(
            trace.count(|e| matches!(e, CampaignEvent::Rejected { .. })),
            report.summary.rejected
        );
        audit(&report.report).expect("oracle must accept every online trace");
    }
}
