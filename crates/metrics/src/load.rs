//! Per-performance-group load accounting (Fig. 4a).

use std::collections::BTreeMap;

use gridsched_model::node::ResourcePool;
use gridsched_model::perf::PerfGroup;
use gridsched_model::window::TimeWindow;

/// Average node load level per performance group over a time range, as
/// plotted in the paper's Fig. 4a.
///
/// The load of a group is the mean utilization of its nodes' timetables
/// over `range` (each node weighted equally, as the paper averages "node
/// load level").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupLoad {
    by_group: BTreeMap<PerfGroup, f64>,
}

impl GroupLoad {
    /// Measures group loads from the pool's timetables over `range`.
    #[must_use]
    pub fn measure(pool: &ResourcePool, range: TimeWindow) -> Self {
        let mut sums: BTreeMap<PerfGroup, (f64, usize)> = BTreeMap::new();
        for node in pool.nodes() {
            let u = pool.timetable(node.id()).utilization(range);
            let entry = sums.entry(node.group()).or_insert((0.0, 0));
            entry.0 += u;
            entry.1 += 1;
        }
        GroupLoad {
            by_group: sums
                .into_iter()
                .map(|(g, (sum, n))| (g, sum / n as f64))
                .collect(),
        }
    }

    /// Builds a measurement from precomputed `(group, level)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a level is outside `[0, 1]` or a group repeats.
    #[must_use]
    pub fn from_levels(levels: impl IntoIterator<Item = (PerfGroup, f64)>) -> Self {
        let mut by_group = BTreeMap::new();
        for (g, v) in levels {
            assert!((0.0..=1.0).contains(&v), "load level out of range: {v}");
            assert!(by_group.insert(g, v).is_none(), "duplicate group {g}");
        }
        GroupLoad { by_group }
    }

    /// Load level of one group in `[0, 1]`; 0.0 if the group has no nodes.
    #[must_use]
    pub fn level(&self, group: PerfGroup) -> f64 {
        self.by_group.get(&group).copied().unwrap_or(0.0)
    }

    /// Iterates `(group, level)` pairs, fastest group first.
    pub fn iter(&self) -> impl Iterator<Item = (PerfGroup, f64)> + '_ {
        PerfGroup::ALL
            .into_iter()
            .filter_map(|g| self.by_group.get(&g).map(|&v| (g, v)))
    }

    /// Merges another measurement by averaging group-wise (for multi-run
    /// experiments). Groups absent on either side keep the present value.
    pub fn average_with(&mut self, other: &GroupLoad, self_weight: f64) {
        assert!(
            (0.0..=1.0).contains(&self_weight),
            "self_weight must be in [0,1], got {self_weight}"
        );
        for (g, v) in &other.by_group {
            let entry = self.by_group.entry(*g).or_insert(*v);
            *entry = *entry * self_weight + v * (1.0 - self_weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;
    use gridsched_model::timetable::ReservationOwner;
    use gridsched_sim::time::SimTime;

    fn w(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_ticks(a), SimTime::from_ticks(b)).unwrap()
    }

    #[test]
    fn measures_per_group_utilization() {
        let mut pool = ResourcePool::new();
        let fast = pool.add_node(DomainId::new(0), Perf::new(1.0).unwrap());
        let slow = pool.add_node(DomainId::new(0), Perf::new(0.33).unwrap());
        pool.timetable_mut(fast)
            .reserve(w(0, 5), ReservationOwner::Background(0))
            .unwrap();
        pool.timetable_mut(slow)
            .reserve(w(0, 10), ReservationOwner::Background(1))
            .unwrap();
        let load = GroupLoad::measure(&pool, w(0, 10));
        assert!((load.level(PerfGroup::Fast) - 0.5).abs() < 1e-12);
        assert!((load.level(PerfGroup::Slow) - 1.0).abs() < 1e-12);
        assert_eq!(load.level(PerfGroup::Medium), 0.0);
    }

    #[test]
    fn group_average_over_nodes() {
        let mut pool = ResourcePool::new();
        let a = pool.add_node(DomainId::new(0), Perf::new(0.9).unwrap());
        let _b = pool.add_node(DomainId::new(0), Perf::new(0.8).unwrap());
        pool.timetable_mut(a)
            .reserve(w(0, 10), ReservationOwner::Background(0))
            .unwrap();
        let load = GroupLoad::measure(&pool, w(0, 10));
        // One fully busy + one idle fast node -> 0.5 average.
        assert!((load.level(PerfGroup::Fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_orders_fast_first() {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::new(0.33).unwrap());
        pool.add_node(DomainId::new(0), Perf::new(1.0).unwrap());
        let load = GroupLoad::measure(&pool, w(0, 1));
        let groups: Vec<PerfGroup> = load.iter().map(|(g, _)| g).collect();
        assert_eq!(groups, vec![PerfGroup::Fast, PerfGroup::Slow]);
    }

    #[test]
    fn average_with_blends() {
        let mut pool = ResourcePool::new();
        let n = pool.add_node(DomainId::new(0), Perf::new(1.0).unwrap());
        pool.timetable_mut(n)
            .reserve(w(0, 10), ReservationOwner::Background(0))
            .unwrap();
        let busy = GroupLoad::measure(&pool, w(0, 10));
        pool.reset_timetables();
        let mut idle = GroupLoad::measure(&pool, w(0, 10));
        idle.average_with(&busy, 0.5);
        assert!((idle.level(PerfGroup::Fast) - 0.5).abs() < 1e-12);
    }
}
