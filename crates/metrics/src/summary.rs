//! Streaming summary statistics.

use std::fmt;

/// Single-pass accumulator of count / mean / variance / min / max
/// (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use gridsched_metrics::summary::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one observation.
    ///
    /// Saturating inputs are handled without poisoning: when the running
    /// delta overflows `f64` (e.g. mixing `f64::MAX` and `-f64::MAX`), the
    /// mean falls back to an overflow-free scaled update and the variance
    /// saturates to `f64::INFINITY` instead of turning NaN.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN observation would silently poison
    /// every derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Summary::record: NaN observation");
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let n = self.count as f64;
        let delta = value - self.mean;
        if delta.is_finite() {
            self.mean += delta / n;
            self.m2 += delta * (value - self.mean);
        } else {
            // `value - mean` overflowed: update the mean in the scaled
            // form `mean·(n−1)/n + value/n`, whose terms cannot overflow,
            // and saturate the (genuinely astronomically large) variance.
            self.mean = self.mean / n * (n - 1.0) + value / n;
            self.m2 = f64::INFINITY;
        }
    }

    /// Merges another summary into this one.
    ///
    /// Like [`Summary::record`], a mean delta that overflows `f64` falls
    /// back to a scaled, overflow-free mean update and saturates the
    /// variance to `f64::INFINITY` instead of producing NaN.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        if delta.is_finite() {
            self.mean += delta * n2 / total;
            self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        } else {
            self.mean = self.mean * (n1 / total) + other.mean * (n2 / total);
            self.m2 = f64::INFINITY;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 if empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0.0 if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0.0 if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn basic_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let all: Summary = (0..100).map(f64::from).collect();
        let mut left: Summary = (0..37).map(f64::from).collect();
        let right: Summary = (37..100).map(f64::from).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sum(), 42.0);
    }

    #[test]
    fn saturating_inputs_do_not_poison_the_mean() {
        // Regression: `f64::MAX` followed by `-f64::MAX` used to overflow
        // the Welford delta to -inf, dragging the mean itself to -inf (and
        // a subsequent m2 update to NaN). The true mean is 0.
        let mut s = Summary::new();
        s.record(f64::MAX);
        s.record(-f64::MAX);
        assert!(s.mean().is_finite(), "mean poisoned: {}", s.mean());
        assert!(s.mean().abs() < 1e294, "mean should be ~0: {}", s.mean());
        // The variance genuinely exceeds f64 range: it saturates, never NaN.
        assert_eq!(s.variance(), f64::INFINITY);
        assert!(!s.std_dev().is_nan());
        assert_eq!(s.min(), -f64::MAX);
        assert_eq!(s.max(), f64::MAX);
    }

    #[test]
    fn repeated_extreme_values_stay_exact() {
        let mut s = Summary::new();
        s.record(f64::MAX);
        s.record(f64::MAX);
        assert_eq!(s.mean(), f64::MAX);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_of_saturating_halves_does_not_poison() {
        let lo: Summary = [-f64::MAX, -f64::MAX].into_iter().collect();
        let hi: Summary = [f64::MAX, f64::MAX].into_iter().collect();
        let mut merged = lo;
        merged.merge(&hi);
        assert_eq!(merged.count(), 4);
        assert!(merged.mean().is_finite());
        assert!(!merged.variance().is_nan());
        assert_eq!(merged.variance(), f64::INFINITY);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s: Summary = [1.0].into_iter().collect();
        let text = s.to_string();
        for field in ["n=", "mean=", "sd=", "min=", "max="] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
