//! Node load-level forecasting.
//!
//! The paper's future-work list (§5) calls for "local processor nodes load
//! level forecasting methods": the metascheduler dispatches job flows to
//! domains based on where load is *going*, not just where it is. This
//! module provides the standard lightweight forecaster — exponential
//! smoothing over periodic utilization observations — plus a direct
//! look-ahead that reads a timetable's already-booked future.

use gridsched_model::node::ResourcePool;
use gridsched_model::window::TimeWindow;
use gridsched_sim::time::{SimDuration, SimTime};

/// Exponentially smoothed load estimate for one resource.
///
/// # Examples
///
/// ```
/// use gridsched_metrics::forecast::LoadForecaster;
///
/// let mut f = LoadForecaster::new(0.5);
/// f.observe(0.8);
/// f.observe(0.4);
/// // 0.8 then 0.5·0.4 + 0.5·0.8 = 0.6
/// assert!((f.level() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadForecaster {
    alpha: f64,
    level: Option<f64>,
}

impl LoadForecaster {
    /// Creates a forecaster with smoothing factor `alpha` in `(0, 1]`:
    /// higher alpha weights recent observations more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor must be in (0, 1], got {alpha}"
        );
        LoadForecaster { alpha, level: None }
    }

    /// Feeds one utilization observation in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `[0, 1]`.
    pub fn observe(&mut self, load: f64) {
        assert!(
            (0.0..=1.0).contains(&load),
            "load observation out of range: {load}"
        );
        self.level = Some(match self.level {
            None => load,
            Some(prev) => self.alpha * load + (1.0 - self.alpha) * prev,
        });
    }

    /// Current smoothed load level; 0.0 before any observation.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level.unwrap_or(0.0)
    }

    /// Whether any observation has been fed yet.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.level.is_some()
    }
}

/// Booked-ahead load of a domain: mean utilization of its nodes'
/// timetables over `[now, now + lookahead)`. Unlike the smoother, this
/// reads the reservations that *already exist* in the future — the exact
/// information a metascheduler has when choosing a domain.
#[must_use]
pub fn booked_load(
    pool: &ResourcePool,
    domain: gridsched_model::ids::DomainId,
    now: SimTime,
    lookahead: SimDuration,
) -> f64 {
    let Ok(range) = TimeWindow::starting_at(now, lookahead) else {
        return 0.0;
    };
    let mut sum = 0.0;
    let mut count = 0usize;
    for node in pool.in_domain(domain) {
        sum += pool.timetable(node.id()).utilization(range);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Ranks domains by booked-ahead load, least-loaded first (ties towards
/// the smaller domain id) — the dispatch order for Fig. 1's metascheduler.
#[must_use]
pub fn rank_domains_by_forecast(
    pool: &ResourcePool,
    now: SimTime,
    lookahead: SimDuration,
) -> Vec<gridsched_model::ids::DomainId> {
    let mut domains = pool.domains();
    domains.sort_by(|&a, &b| {
        booked_load(pool, a, now, lookahead)
            .partial_cmp(&booked_load(pool, b, now, lookahead))
            .expect("loads are finite")
            .then(a.cmp(&b))
    });
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;
    use gridsched_model::timetable::ReservationOwner;

    #[test]
    fn smoothing_converges_to_constant_input() {
        let mut f = LoadForecaster::new(0.3);
        assert!(!f.is_warm());
        for _ in 0..200 {
            f.observe(0.7);
        }
        assert!((f.level() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn higher_alpha_tracks_changes_faster() {
        let mut slow = LoadForecaster::new(0.1);
        let mut fast = LoadForecaster::new(0.9);
        for f in [&mut slow, &mut fast] {
            f.observe(0.0);
            f.observe(1.0);
        }
        assert!(fast.level() > slow.level());
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn zero_alpha_rejected() {
        let _ = LoadForecaster::new(0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_observation_rejected() {
        LoadForecaster::new(0.5).observe(1.5);
    }

    fn two_domain_pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(1), Perf::FULL);
        pool.add_node(DomainId::new(1), Perf::FULL);
        pool
    }

    #[test]
    fn booked_load_reads_future_reservations() {
        let mut pool = two_domain_pool();
        // Domain 0: one node fully booked for the next 10 ticks.
        pool.timetable_mut(gridsched_model::ids::NodeId::new(0))
            .reserve(
                TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap(),
                ReservationOwner::Background(0),
            )
            .unwrap();
        let look = SimDuration::from_ticks(10);
        let d0 = booked_load(&pool, DomainId::new(0), SimTime::ZERO, look);
        let d1 = booked_load(&pool, DomainId::new(1), SimTime::ZERO, look);
        assert!((d0 - 0.5).abs() < 1e-12);
        assert_eq!(d1, 0.0);
        // Past the booking horizon, domain 0 looks free again.
        let later = booked_load(&pool, DomainId::new(0), SimTime::from_ticks(10), look);
        assert_eq!(later, 0.0);
    }

    #[test]
    fn ranking_puts_the_freer_domain_first() {
        let mut pool = two_domain_pool();
        pool.timetable_mut(gridsched_model::ids::NodeId::new(2))
            .reserve(
                TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(20)).unwrap(),
                ReservationOwner::Background(0),
            )
            .unwrap();
        let order = rank_domains_by_forecast(&pool, SimTime::ZERO, SimDuration::from_ticks(20));
        assert_eq!(order, vec![DomainId::new(0), DomainId::new(1)]);
        // Tie (no load anywhere from t100): smaller id first.
        let tie =
            rank_domains_by_forecast(&pool, SimTime::from_ticks(100), SimDuration::from_ticks(20));
        assert_eq!(tie, vec![DomainId::new(0), DomainId::new(1)]);
    }

    #[test]
    fn empty_domain_has_zero_booked_load() {
        let pool = two_domain_pool();
        assert_eq!(
            booked_load(
                &pool,
                DomainId::new(9),
                SimTime::ZERO,
                SimDuration::from_ticks(5)
            ),
            0.0
        );
    }
}
