//! Fixed-bucket histograms for waiting times, deviations and ratios.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width buckets plus overflow /
/// underflow counters.
///
/// # Examples
///
/// ```
/// use gridsched_metrics::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(3.0);
/// h.record(12.0); // overflow
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Histogram::record: NaN observation");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `q`-quantile (0..=1) estimated from bucket midpoints, ignoring
    /// under/overflow. Returns `None` when no in-range observations exist.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let in_range: u64 = self.buckets.iter().sum();
        if in_range == 0 {
            return None;
        }
        // Clamp the float-derived rank into [1, in_range]: for large counts
        // `q * n` can round *above* n (and `ceil` never rounds below 1), in
        // which case the scan would fall off the end and report `None` for
        // a perfectly populated histogram.
        let target = ((q * in_range as f64).ceil() as u64).clamp(1, in_range);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + width * (i as f64 + 0.5));
            }
        }
        None
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hist[{}, {}) n={} buckets={:?} under={} over={}",
            self.lo,
            self.hi,
            self.total(),
            self.buckets,
            self.underflow,
            self.overflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0);
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.quantile(0.0), Some(0.5));
        assert_eq!(h.quantile(0.5), Some(4.5));
        assert_eq!(h.quantile(1.0), Some(9.5));
        assert_eq!(Histogram::new(0.0, 1.0, 1).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.total(), 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn single_sample_quantiles_all_agree() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(4.2);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(5.0), "q={q} (bucket midpoint)");
        }
    }

    #[test]
    fn quantile_rank_is_clamped_into_range() {
        // Regression guard for the float-rank overshoot: every q in [0, 1]
        // must land inside the populated buckets, never fall off the end.
        let mut h = Histogram::new(0.0, 1.0, 3);
        for _ in 0..7 {
            h.record(0.99);
        }
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            assert!(h.quantile(q).is_some(), "q={q} fell off the histogram");
        }
    }

    #[test]
    fn saturating_observations_land_in_overflow_not_panic() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(f64::MAX);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(-f64::MAX);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.total(), 4);
        // In-range quantiles stay `None`: nothing landed in a bucket.
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn boundary_observations_split_consistently() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0); // inclusive low edge → first bucket
        h.record(10.0); // exclusive high edge → overflow
        h.record(10.0 - 1e-12); // just inside → last bucket
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn tiny_range_histograms_stay_in_bounds() {
        // A denormal-width range: the bucket index math must clamp rather
        // than index out of bounds.
        let lo = 0.0;
        let hi = f64::MIN_POSITIVE;
        let mut h = Histogram::new(lo, hi, 3);
        h.record(0.0);
        assert_eq!(h.total(), 1);
        assert_eq!(
            (0..h.bucket_count()).map(|i| h.bucket(i)).sum::<u64>(),
            1,
            "the observation must land in exactly one bucket"
        );
    }
}
