//! Zero-dependency observability: hierarchical timing spans, monotonic
//! event counters, gauges, and machine/human exporters.
//!
//! Monitoring is a first-class concern for hierarchical Grid schedulers:
//! the paper's job-flow framework is *evaluated* by measuring strategy
//! behaviour — schedule switches, replans, migrations, CF/load trade-offs
//! — so every phase of a campaign (release → strategy generation →
//! planning session → scenario sweep → critical-works pass) and every QoS
//! event must be observable without changing behaviour.
//!
//! # Design
//!
//! A [`Telemetry`] handle is a cheap `Arc` clone; a **disabled** handle
//! (the default) is a `None` and every operation on it is a no-op branch,
//! so hot paths can be instrumented unconditionally. The handle is `Send +
//! Sync`: counters are atomics and completed spans are pushed into one
//! mutex-guarded vector, which keeps the recorder safe under the scoped-
//! thread parallel scenario sweep.
//!
//! Instrumentation is strictly **observational**: nothing the planner or
//! the campaign does may read telemetry state, so an instrumented run is
//! bit-identical to an uninstrumented one (the determinism suite pins
//! this).
//!
//! # Spans
//!
//! A [`Span`] records its wall-clock duration when dropped. Hierarchy is
//! explicit: children name their parent's [`SpanId`], which is `Copy` and
//! can cross scoped-thread boundaries (a thread-local "current span" would
//! lose the hierarchy exactly where we need it most — inside the parallel
//! sweep).
//!
//! ```
//! use gridsched_metrics::telemetry::{Counter, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! {
//!     let campaign = telemetry.span("campaign");
//!     let _release = telemetry.span_under("release", campaign.id());
//!     telemetry.incr(Counter::JobsReleased);
//! }
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counter("jobs_released"), 1);
//! assert_eq!(snapshot.spans().len(), 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::Histogram;
use crate::summary::Summary;
use crate::table::Table;

/// The monotonic event counters of the QoS story.
///
/// Every variant maps to one `snake_case` metric name (see
/// [`Counter::name`]); the set is fixed so counters can live in a plain
/// atomic array with no per-event allocation or hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Jobs released to the metascheduler.
    JobsReleased,
    /// Jobs whose strategy was admissible and got activated.
    JobsActivated,
    /// Jobs the metascheduler assigned to a strategy flow.
    FlowAssignments,
    /// Active schedules broken by any dynamics (perturbation, overrun,
    /// outage, transfer fault).
    ScheduleBreaks,
    /// Breaks resolved by switching to a precomputed supporting schedule.
    ScheduleSwitches,
    /// Breaks resolved by replanning pending tasks.
    Replans,
    /// Breaks resolved by migrating started tasks off a dead node.
    Migrations,
    /// Breaks with no feasible resolution: the job was dropped.
    Drops,
    /// External perturbations that seized node time.
    Perturbations,
    /// Node outages injected by the fault plan.
    OutagesInjected,
    /// Node degradations injected by the fault plan.
    DegradationsInjected,
    /// Data-transfer faults injected by the fault plan.
    TransferFaultsInjected,
    /// Transfer faults absorbed by active replication.
    TransferFaultsAbsorbed,
    /// Faults scheduled up front by the fault plan (some may land beyond
    /// the horizon and never fire).
    FaultsPlanned,
    /// Planning sessions opened (availability snapshots taken).
    SessionsOpened,
    /// Copy-on-write timetable overlays created over session snapshots.
    OverlaysCreated,
    /// Critical-works engine passes (one per schedule construction).
    CriticalWorksPasses,
    /// Plan conflicts observed while placing tasks (collisions on busy
    /// windows, successful and failed passes alike).
    PlanConflicts,
    /// Scenario sweeps that yielded a supporting schedule.
    ScenariosPlanned,
    /// Scenario sweeps that admitted no schedule.
    ScenariosFailed,
    /// Aggressive-objective replans that degraded to `MinCost`.
    ObjectiveFallbacks,
    /// EASY backfill: jobs that jumped the queue under the head's shadow
    /// reservation.
    BackfillShadowHits,
    /// Conservative backfill: trial reservations placed in what-if
    /// overlays.
    ConservativeTrials,
    /// Batch-profile what-if overlays created.
    ProfileOverlays,
    /// Start-time forecasts computed for newly arrived batch jobs.
    StartPredictions,
    /// Scenario sweeps actually executed on the persistent worker pool
    /// (sweeps that fell back to sequential — small sweeps, single-core
    /// machines — do not count).
    PooledSweeps,
    /// Jobs that entered the online serving loop (arrival events).
    JobsArrived,
    /// Arrivals admitted past the deadline/budget probe.
    JobsAdmitted,
    /// Arrivals rejected (queue overflow or unmeetable deadline).
    JobsRejected,
    /// Admission probes run against the planning session (first-chance
    /// and re-probe alike).
    AdmissionProbes,
    /// High-water mark of the admission queue depth (recorded with
    /// [`Telemetry::record_max`], not incremented).
    QueuePeakDepth,
    /// Re-probes of deferred arrivals triggered by completion/fault
    /// events — the online loop's incremental replanning work.
    IncrementalReplans,
    /// Differential chaos campaigns executed by the chaos harness.
    ChaosCampaigns,
    /// Chaos campaigns that diverged across configuration axes or failed
    /// the trace oracle (each one ships a shrunken repro artifact).
    ChaosDivergences,
    /// Cold `earliest_fit` probes answered through a snapshot's gap
    /// index (the O(log R) base-layer descent).
    IndexSeeks,
    /// Gap indexes lazily built — at most one per (snapshot, node) pair,
    /// so this counts distinct node calendars actually probed cold.
    IndexRebuilds,
    /// Cold probes that took the linear merged walk because the gap
    /// index was switched off (chaos axis / benches only; answers are
    /// bit-identical either way).
    IndexBypasses,
    /// Snapshot captures of a node answered by the pool's cross-snapshot
    /// calendar cache (frozen windows + gap index reused, nothing
    /// copied or rebuilt).
    IndexCacheHits,
    /// Cached calendars dropped to respect the cache's byte budget.
    IndexCacheEvictions,
    /// Cold-probe batches fanned out across worker threads by the Pareto
    /// allocator's node loop (answers bit-identical to the sequential
    /// loop; this is the only counter that sees the dispatch).
    ProbeFanouts,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 40] = [
        Counter::JobsReleased,
        Counter::JobsActivated,
        Counter::FlowAssignments,
        Counter::ScheduleBreaks,
        Counter::ScheduleSwitches,
        Counter::Replans,
        Counter::Migrations,
        Counter::Drops,
        Counter::Perturbations,
        Counter::OutagesInjected,
        Counter::DegradationsInjected,
        Counter::TransferFaultsInjected,
        Counter::TransferFaultsAbsorbed,
        Counter::FaultsPlanned,
        Counter::SessionsOpened,
        Counter::OverlaysCreated,
        Counter::CriticalWorksPasses,
        Counter::PlanConflicts,
        Counter::ScenariosPlanned,
        Counter::ScenariosFailed,
        Counter::ObjectiveFallbacks,
        Counter::BackfillShadowHits,
        Counter::ConservativeTrials,
        Counter::ProfileOverlays,
        Counter::StartPredictions,
        Counter::PooledSweeps,
        Counter::JobsArrived,
        Counter::JobsAdmitted,
        Counter::JobsRejected,
        Counter::AdmissionProbes,
        Counter::QueuePeakDepth,
        Counter::IncrementalReplans,
        Counter::ChaosCampaigns,
        Counter::ChaosDivergences,
        Counter::IndexSeeks,
        Counter::IndexRebuilds,
        Counter::IndexBypasses,
        Counter::IndexCacheHits,
        Counter::IndexCacheEvictions,
        Counter::ProbeFanouts,
    ];

    const COUNT: usize = Counter::ALL.len();

    /// The counter's stable `snake_case` metric name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::JobsReleased => "jobs_released",
            Counter::JobsActivated => "jobs_activated",
            Counter::FlowAssignments => "flow_assignments",
            Counter::ScheduleBreaks => "schedule_breaks",
            Counter::ScheduleSwitches => "schedule_switches",
            Counter::Replans => "replans",
            Counter::Migrations => "migrations",
            Counter::Drops => "drops",
            Counter::Perturbations => "perturbations",
            Counter::OutagesInjected => "outages_injected",
            Counter::DegradationsInjected => "degradations_injected",
            Counter::TransferFaultsInjected => "transfer_faults_injected",
            Counter::TransferFaultsAbsorbed => "transfer_faults_absorbed",
            Counter::FaultsPlanned => "faults_planned",
            Counter::SessionsOpened => "sessions_opened",
            Counter::OverlaysCreated => "overlays_created",
            Counter::CriticalWorksPasses => "critical_works_passes",
            Counter::PlanConflicts => "plan_conflicts",
            Counter::ScenariosPlanned => "scenarios_planned",
            Counter::ScenariosFailed => "scenarios_failed",
            Counter::ObjectiveFallbacks => "objective_fallbacks",
            Counter::BackfillShadowHits => "backfill_shadow_hits",
            Counter::ConservativeTrials => "conservative_trials",
            Counter::ProfileOverlays => "profile_overlays",
            Counter::StartPredictions => "start_predictions",
            Counter::PooledSweeps => "pooled_sweeps",
            Counter::JobsArrived => "jobs_arrived",
            Counter::JobsAdmitted => "jobs_admitted",
            Counter::JobsRejected => "jobs_rejected",
            Counter::AdmissionProbes => "admission_probes",
            Counter::QueuePeakDepth => "queue_peak_depth",
            Counter::IncrementalReplans => "incremental_replans",
            Counter::ChaosCampaigns => "chaos_campaigns",
            Counter::ChaosDivergences => "chaos_divergences",
            Counter::IndexSeeks => "index_seeks",
            Counter::IndexRebuilds => "index_rebuilds",
            Counter::IndexBypasses => "index_bypasses",
            Counter::IndexCacheHits => "index_cache_hits",
            Counter::IndexCacheEvictions => "index_cache_evictions",
            Counter::ProbeFanouts => "probe_fanouts",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque identifier of a recorded span; `Copy`, so it can be captured by
/// scoped threads to parent their own spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

/// One completed span: a named interval with an optional parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id.
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Phase name (shared by all spans of the same kind).
    pub name: &'static str,
    /// Start offset from the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder's epoch, in nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    counters: [AtomicU64; Counter::COUNT],
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    /// Labeled counters: `(domain label, counter)` → value. Domains are
    /// dynamic (one pool may shard into any number of them), so these live
    /// in a map rather than the fixed atomic array.
    domains: Mutex<BTreeMap<(u64, usize), u64>>,
}

/// A cheap, thread-safe telemetry handle; disabled by default.
///
/// Cloning shares the underlying recorder. A disabled handle makes every
/// operation a no-op, so instrumentation can stay in place permanently.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An **enabled** recorder.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: Mutex::new(BTreeMap::new()),
                domains: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A **disabled** handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. Recorded when the returned guard drops.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_under(name, None)
    }

    /// Opens a span under `parent` (pass `None` for a root).
    #[must_use]
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> Span {
        match &self.inner {
            None => Span {
                inner: None,
                id: None,
                parent: None,
                name,
                start_ns: 0,
            },
            Some(inner) => {
                let id = SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed));
                Span {
                    inner: Some(Arc::clone(inner)),
                    id: Some(id),
                    parent,
                    name,
                    start_ns: nanos_since(inner.epoch),
                }
            }
        }
    }

    /// Increments a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises a counter to at least `value` (high-water-mark semantics,
    /// e.g. [`Counter::QueuePeakDepth`]).
    pub fn record_max(&self, counter: Counter, value: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Increments the per-domain series of `counter` for `domain` by one.
    ///
    /// Domain-labeled series are recorded *in addition to* the global
    /// counter, never instead of it — callers keep `incr`/`add` for the
    /// totals and add a labeled increment where the domain is known.
    pub fn incr_domain(&self, counter: Counter, domain: u64) {
        self.add_domain(counter, domain, 1);
    }

    /// Adds `n` to the per-domain series of `counter` for `domain`.
    pub fn add_domain(&self, counter: Counter, domain: u64, n: u64) {
        if let Some(inner) = &self.inner {
            *inner
                .domains
                .lock()
                .expect("domain counter map never poisoned")
                .entry((domain, counter as usize))
                .or_insert(0) += n;
        }
    }

    /// The per-domain value of `counter` for `domain` (0 when disabled or
    /// never recorded).
    #[must_use]
    pub fn domain_counter(&self, counter: Counter, domain: u64) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => *inner
                .domains
                .lock()
                .expect("domain counter map never poisoned")
                .get(&(domain, counter as usize))
                .unwrap_or(&0),
        }
    }

    /// The counter's current value (0 when disabled).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.counters[counter as usize].load(Ordering::Relaxed),
        }
    }

    /// Sets a named gauge to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN gauge would poison the exporters.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        assert!(!value.is_nan(), "set_gauge({name}): NaN value");
        if let Some(inner) = &self.inner {
            inner
                .gauges
                .lock()
                .expect("gauge map never poisoned")
                .insert(name, value);
        }
    }

    /// A consistent copy of everything recorded so far.
    ///
    /// Spans are sorted by start offset (ties by id) so exports are stable
    /// regardless of drop order under the parallel sweep.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot {
                spans: Vec::new(),
                counters: Counter::ALL.iter().map(|c| (c.name(), 0)).collect(),
                gauges: BTreeMap::new(),
                domains: BTreeMap::new(),
            },
            Some(inner) => {
                let mut spans = inner
                    .spans
                    .lock()
                    .expect("span recorder never poisoned")
                    .clone();
                spans.sort_by_key(|s| (s.start_ns, s.id));
                let mut domains: BTreeMap<u64, Vec<(&'static str, u64)>> = BTreeMap::new();
                for (&(domain, counter), &value) in inner
                    .domains
                    .lock()
                    .expect("domain counter map never poisoned")
                    .iter()
                {
                    domains
                        .entry(domain)
                        .or_default()
                        .push((Counter::ALL[counter].name(), value));
                }
                TelemetrySnapshot {
                    spans,
                    counters: Counter::ALL
                        .iter()
                        .map(|c| {
                            (
                                c.name(),
                                inner.counters[*c as usize].load(Ordering::Relaxed),
                            )
                        })
                        .collect(),
                    gauges: inner
                        .gauges
                        .lock()
                        .expect("gauge map never poisoned")
                        .clone(),
                    domains,
                }
            }
        }
    }
}

fn nanos_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An open span; records itself into the recorder when dropped.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: Option<SpanId>,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
}

impl Span {
    /// The span's id, for parenting children — `None` when the recorder is
    /// disabled (children become roots, which a disabled recorder drops
    /// anyway).
    #[must_use]
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// The phase name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(inner), Some(id)) = (self.inner.take(), self.id) else {
            return;
        };
        let end_ns = nanos_since(inner.epoch);
        inner
            .spans
            .lock()
            .expect("span recorder never poisoned")
            .push(SpanRecord {
                id,
                parent: self.parent,
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
            });
    }
}

/// An immutable copy of a recorder's state, with exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    spans: Vec<SpanRecord>,
    counters: Vec<(&'static str, u64)>,
    gauges: BTreeMap<&'static str, f64>,
    /// Per-domain labeled counters: domain label → `(metric name, value)`
    /// pairs in export order. Empty unless the run recorded any.
    domains: BTreeMap<u64, Vec<(&'static str, u64)>>,
}

impl TelemetrySnapshot {
    /// Completed spans, sorted by start offset.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Every counter with its value (zero-valued counters included, so
    /// the schema is stable).
    #[must_use]
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// A counter's value by metric name (0 for unknown names).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauges, by name.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<&'static str, f64> {
        &self.gauges
    }

    /// The per-domain labeled counters: domain label → `(name, value)`.
    #[must_use]
    pub fn domains(&self) -> &BTreeMap<u64, Vec<(&'static str, u64)>> {
        &self.domains
    }

    /// A domain's labeled counter by metric name (0 for unknown pairs).
    #[must_use]
    pub fn domain_counter(&self, domain: u64, name: &str) -> u64 {
        self.domains.get(&domain).map_or(0, |counters| {
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v)
        })
    }

    /// The distinct phase names, in first-seen (start-offset) order.
    #[must_use]
    pub fn phases(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for s in &self.spans {
            if !seen.contains(&s.name) {
                seen.push(s.name);
            }
        }
        seen
    }

    /// Duration statistics (milliseconds) of every span named `phase`.
    #[must_use]
    pub fn phase_summary(&self, phase: &str) -> Summary {
        self.spans
            .iter()
            .filter(|s| s.name == phase)
            .map(|s| s.duration_ns() as f64 / 1e6)
            .collect()
    }

    /// The human phase-breakdown table: one row per phase with span count
    /// and total/mean/min/max duration in milliseconds.
    #[must_use]
    pub fn phase_table(&self) -> Table {
        let mut table = Table::new(vec![
            "phase", "spans", "total ms", "mean ms", "min ms", "max ms",
        ]);
        for phase in self.phases() {
            let s = self.phase_summary(phase);
            table.row(vec![
                phase.to_owned(),
                s.count().to_string(),
                format!("{:.3}", s.sum()),
                format!("{:.3}", s.mean()),
                format!("{:.3}", s.min()),
                format!("{:.3}", s.max()),
            ]);
        }
        table
    }

    /// Machine-readable JSON: schema id, counters, gauges, per-phase
    /// duration statistics, and the full span tree (children nested under
    /// parents; orphans promoted to roots).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"gridsched-telemetry/1\",\n");

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {}", json_f64(*value));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"domains\": {");
        for (i, (domain, counters)) in self.domains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{domain}\": {{");
            for (j, (name, value)) in counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {value}");
            }
            out.push('}');
        }
        out.push_str("\n  },\n");

        out.push_str("  \"phases\": [");
        for (i, phase) in self.phases().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.phase_summary(phase);
            let _ = write!(
                out,
                "\n    {{\"name\": \"{phase}\", \"spans\": {}, \"total_ms\": {}, \"mean_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
                s.count(),
                json_f64(s.sum()),
                json_f64(s.mean()),
                json_f64(s.min()),
                json_f64(s.max()),
            );
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"span_tree\": [");
        let forest = self.span_forest();
        let roots = forest.roots.clone();
        for (i, root) in roots.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.write_tree_node(&mut out, &forest, root, 2);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Prometheus-style text dump: one `counter` line per metric, one
    /// `gauge` line per gauge, and a cumulative duration histogram plus
    /// sum/count per phase.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE gridsched_{name} counter");
            let _ = writeln!(out, "gridsched_{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE gridsched_gauge_{name} gauge");
            let _ = writeln!(out, "gridsched_gauge_{name} {}", json_f64(*value));
        }
        // Domain-labeled series grouped per metric family, one TYPE line
        // each (the unlabeled totals above are separate families).
        let mut labeled: BTreeMap<&'static str, Vec<(u64, u64)>> = BTreeMap::new();
        for (&domain, counters) in &self.domains {
            for &(name, value) in counters {
                labeled.entry(name).or_default().push((domain, value));
            }
        }
        for (name, series) in labeled {
            let _ = writeln!(out, "# TYPE gridsched_domain_{name} counter");
            for (domain, value) in series {
                let _ = writeln!(
                    out,
                    "gridsched_domain_{name}{{domain=\"{domain}\"}} {value}"
                );
            }
        }
        if self.spans.is_empty() {
            return out;
        }
        let _ = writeln!(out, "# TYPE gridsched_span_duration_ms histogram");
        for phase in self.phases() {
            let summary = self.phase_summary(phase);
            // Exponential-ish bucket edges up to the observed maximum keep
            // the histogram meaningful for micro- and macro-phases alike.
            let hi = summary.max().max(1e-3) * (1.0 + 1e-9);
            let mut hist = Histogram::new(0.0, hi, 8);
            for s in self.spans.iter().filter(|s| s.name == phase) {
                hist.record(s.duration_ns() as f64 / 1e6);
            }
            let width = hi / hist.bucket_count() as f64;
            let mut cumulative = hist.underflow();
            for b in 0..hist.bucket_count() {
                cumulative += hist.bucket(b);
                let le = width * (b + 1) as f64;
                let _ = writeln!(
                    out,
                    "gridsched_span_duration_ms_bucket{{phase=\"{phase}\",le=\"{}\"}} {cumulative}",
                    json_f64(le)
                );
            }
            let _ = writeln!(
                out,
                "gridsched_span_duration_ms_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {}",
                hist.total()
            );
            let _ = writeln!(
                out,
                "gridsched_span_duration_ms_sum{{phase=\"{phase}\"}} {}",
                json_f64(summary.sum())
            );
            let _ = writeln!(
                out,
                "gridsched_span_duration_ms_count{{phase=\"{phase}\"}} {}",
                summary.count()
            );
        }
        out
    }

    fn span_forest(&self) -> SpanForest {
        let present: std::collections::BTreeSet<SpanId> = self.spans.iter().map(|s| s.id).collect();
        let mut roots = Vec::new();
        let mut children: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
        for (idx, s) in self.spans.iter().enumerate() {
            match s.parent {
                Some(p) if present.contains(&p) => children.entry(p).or_default().push(idx),
                _ => roots.push(idx),
            }
        }
        SpanForest { roots, children }
    }

    fn write_tree_node(&self, out: &mut String, forest: &SpanForest, idx: usize, depth: usize) {
        let s = &self.spans[idx];
        let pad = "  ".repeat(depth);
        let _ = write!(
            out,
            "{pad}{{\"name\": \"{}\", \"start_us\": {}, \"duration_us\": {}, \"children\": [",
            s.name,
            s.start_ns / 1_000,
            s.duration_ns() / 1_000,
        );
        let kids = forest.children.get(&s.id).cloned().unwrap_or_default();
        if kids.is_empty() {
            out.push_str("]}");
            return;
        }
        for (i, kid) in kids.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.write_tree_node(out, forest, kid, depth + 1);
        }
        let _ = write!(out, "\n{pad}]}}");
    }
}

struct SpanForest {
    roots: Vec<usize>,
    children: BTreeMap<SpanId, Vec<usize>>,
}

/// Formats a float for JSON/Prometheus output: finite values with ≤ 6
/// significant decimals, non-finite saturated to large sentinels (JSON has
/// no `Infinity`).
fn json_f64(value: f64) -> String {
    if value.is_nan() {
        return "0".to_owned();
    }
    if value == f64::INFINITY {
        return "1e308".to_owned();
    }
    if value == f64::NEG_INFINITY {
        return "-1e308".to_owned();
    }
    let text = format!("{value:.6}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_owned()
    } else {
        trimmed.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.incr(Counter::Replans);
        t.incr_domain(Counter::Replans, 0);
        t.set_gauge("x", 1.0);
        let span = t.span("campaign");
        assert_eq!(span.id(), None);
        drop(span);
        let snap = t.snapshot();
        assert!(snap.spans().is_empty());
        assert_eq!(snap.counter("replans"), 0);
        assert!(snap.domains().is_empty());
        // Schema is still stable: every counter is present at zero.
        assert_eq!(snap.counters().len(), Counter::ALL.len());
    }

    #[test]
    fn domain_labeled_counters_accumulate_and_export() {
        let t = Telemetry::new();
        t.incr_domain(Counter::JobsActivated, 0);
        t.add_domain(Counter::JobsActivated, 1, 2);
        t.incr_domain(Counter::Drops, 1);
        assert_eq!(t.domain_counter(Counter::JobsActivated, 1), 2);
        assert_eq!(t.domain_counter(Counter::Drops, 0), 0);
        let snap = t.snapshot();
        assert_eq!(snap.domain_counter(0, "jobs_activated"), 1);
        assert_eq!(snap.domain_counter(1, "jobs_activated"), 2);
        assert_eq!(snap.domain_counter(1, "drops"), 1);
        assert_eq!(snap.domain_counter(2, "drops"), 0);
        // Within a domain, metrics export in declaration order.
        let json = snap.to_json();
        assert!(json.contains("\"1\": {\"jobs_activated\": 2, \"drops\": 1}"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE gridsched_domain_jobs_activated counter"));
        assert!(prom.contains("gridsched_domain_jobs_activated{domain=\"1\"} 2"));
        assert!(prom.contains("gridsched_domain_drops{domain=\"1\"} 1"));
    }

    #[test]
    fn counters_accumulate_and_export() {
        let t = Telemetry::new();
        t.incr(Counter::JobsReleased);
        t.add(Counter::JobsReleased, 2);
        t.incr(Counter::Drops);
        assert_eq!(t.counter(Counter::JobsReleased), 3);
        let snap = t.snapshot();
        assert_eq!(snap.counter("jobs_released"), 3);
        assert_eq!(snap.counter("drops"), 1);
        assert_eq!(snap.counter("no_such_counter"), 0);
    }

    #[test]
    fn span_hierarchy_is_preserved() {
        let t = Telemetry::new();
        {
            let root = t.span("campaign");
            let child = t.span_under("release", root.id());
            let _grandchild = t.span_under("scenario", child.id());
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans().len(), 3);
        assert_eq!(snap.phases(), vec!["campaign", "release", "scenario"]);
        let by_name = |n: &str| snap.spans().iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("release").parent, Some(by_name("campaign").id));
        assert_eq!(by_name("scenario").parent, Some(by_name("release").id));
        assert_eq!(by_name("campaign").parent, None);
        // Nesting shows up in the JSON tree: inside `span_tree`, the child
        // `release` node appears within `campaign`'s `children` array.
        let json = snap.to_json();
        let tree = &json[json.find("\"span_tree\"").unwrap()..];
        let campaign_pos = tree.find("\"campaign\"").unwrap();
        let release_pos = tree.find("\"release\"").unwrap();
        let children_pos = tree.find("\"children\"").unwrap();
        assert!(campaign_pos < children_pos);
        assert!(children_pos < release_pos);
    }

    #[test]
    fn spans_survive_scoped_threads() {
        let t = Telemetry::new();
        {
            let root = t.span("sweep");
            let parent = root.id();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let t = &t;
                    s.spawn(move || {
                        let _span = t.span_under("scenario", parent);
                        t.incr(Counter::ScenariosPlanned);
                    });
                }
            });
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("scenarios_planned"), 4);
        assert_eq!(snap.phase_summary("scenario").count(), 4);
        let root_id = snap.spans().iter().find(|s| s.name == "sweep").unwrap().id;
        for s in snap.spans().iter().filter(|s| s.name == "scenario") {
            assert_eq!(s.parent, Some(root_id));
        }
    }

    #[test]
    fn orphan_spans_become_roots_in_the_tree() {
        let t = Telemetry::new();
        let leaked_parent = {
            let root = t.span("never-recorded");
            root.id()
        };
        // Parent recorded above (dropped), now a child of a *fresh* id that
        // will never be recorded.
        let fake = SpanId(9_999);
        assert_ne!(Some(fake), leaked_parent);
        drop(t.span_under("orphan", Some(fake)));
        let snap = t.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"orphan\""));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Telemetry::new().snapshot();
        assert!(snap.phases().is_empty());
        assert_eq!(snap.phase_summary("anything").count(), 0);
        let table = snap.phase_table();
        assert!(table.is_empty());
        let json = snap.to_json();
        assert!(json.contains("\"span_tree\": [\n  ]"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("gridsched_jobs_released 0"));
        assert!(!prom.contains("span_duration"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_and_complete() {
        let t = Telemetry::new();
        for _ in 0..5 {
            drop(t.span("phase"));
        }
        let snap = t.snapshot();
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE gridsched_span_duration_ms histogram"));
        assert!(prom.contains("le=\"+Inf\"} 5"));
        assert!(prom.contains("gridsched_span_duration_ms_count{phase=\"phase\"} 5"));
    }

    #[test]
    fn phase_table_lists_each_phase_once() {
        let t = Telemetry::new();
        drop(t.span("a"));
        drop(t.span("a"));
        drop(t.span("b"));
        let table = t.snapshot().phase_table();
        assert_eq!(table.len(), 2);
        let text = table.to_string();
        assert!(text.contains('a') && text.contains('b'));
    }

    #[test]
    fn json_f64_handles_edge_values() {
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(f64::NEG_INFINITY), "-1e308");
        assert_eq!(json_f64(0.000_000_4), "0");
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }
}
