//! # gridsched-metrics
//!
//! Statistics accumulators and plain-text report tables for the `gridsched`
//! experiments:
//!
//! - [`summary::Summary`]: streaming mean/variance/min/max;
//! - [`histogram::Histogram`]: fixed-bucket histograms with quantiles;
//! - [`load::GroupLoad`]: per-performance-group node load (Fig. 4a);
//! - [`table::Table`]: aligned text tables for experiment output;
//! - [`forecast`]: node load-level forecasting (§5 future work) — the
//!   metascheduler's domain-ranking signal;
//! - [`telemetry`]: hierarchical timing spans, monotonic QoS-event
//!   counters/gauges, and JSON / Prometheus / table exporters — the
//!   observability layer threaded through the planner, the job-flow
//!   campaign and the batch systems.
//!
//! # Examples
//!
//! ```
//! use gridsched_metrics::summary::Summary;
//!
//! let waits: Summary = [3.0, 5.0, 4.0].into_iter().collect();
//! assert_eq!(waits.count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecast;
pub mod histogram;
pub mod load;
pub mod summary;
pub mod table;
pub mod telemetry;

pub use forecast::{booked_load, rank_domains_by_forecast, LoadForecaster};
pub use histogram::Histogram;
pub use load::GroupLoad;
pub use summary::Summary;
pub use table::Table;
pub use telemetry::{Counter, Span, SpanId, Telemetry, TelemetrySnapshot};
