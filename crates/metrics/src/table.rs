//! Plain-text result tables.
//!
//! The experiment binaries print the paper's figures as aligned text tables;
//! this module is the tiny formatter behind them.

use std::fmt;

/// A column-aligned text table.
///
/// # Examples
///
/// ```
/// use gridsched_metrics::table::Table;
///
/// let mut t = Table::new(vec!["strategy", "admissible %"]);
/// t.row(vec!["S1".into(), "38".into()]);
/// let text = t.to_string();
/// assert!(text.contains("S1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.382` →
/// `"38.2"`.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a ratio with two decimals.
#[must_use]
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      longer"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx  1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.382), "38.2");
        assert_eq!(ratio(1.5), "1.50");
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = Table::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
