//! Property tests: event-queue ordering and engine determinism.

use proptest::prelude::*;

use gridsched_sim::engine::{Engine, Scheduler, World};
use gridsched_sim::event::EventQueue;
use gridsched_sim::time::SimTime;

proptest! {
    /// Events pop in non-decreasing time order, with insertion order
    /// breaking ties, regardless of scheduling order.
    #[test]
    fn queue_pops_in_stable_time_order(times in prop::collection::vec(0u64..100, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_victims(
        times in prop::collection::vec(0u64..100, 1..40),
        kill in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_ticks(t), i)))
            .collect();
        let mut expected: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for (i, id) in &ids {
            if kill.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
                expected.remove(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            seen.insert(i);
        }
        prop_assert_eq!(seen, expected);
    }

    /// The engine delivers every scheduled event exactly once, in time
    /// order, and two identical runs behave identically.
    #[test]
    fn engine_is_exhaustive_and_deterministic(times in prop::collection::vec(0u64..200, 1..60)) {
        struct Recorder {
            log: Vec<(u64, usize)>,
        }
        impl World for Recorder {
            type Event = usize;
            fn handle(&mut self, now: SimTime, ev: usize, _s: &mut Scheduler<'_, usize>) {
                self.log.push((now.ticks(), ev));
            }
        }
        let run = || {
            let mut engine = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                engine.prime(SimTime::from_ticks(t), i);
            }
            let mut world = Recorder { log: Vec::new() };
            let report = engine.run(&mut world);
            (world.log, report.events_processed)
        };
        let (log_a, n_a) = run();
        let (log_b, n_b) = run();
        prop_assert_eq!(&log_a, &log_b);
        prop_assert_eq!(n_a, times.len() as u64);
        prop_assert_eq!(n_b, times.len() as u64);
        for pair in log_a.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
    }
}
