//! Property tests: event-queue ordering and engine determinism.

use gridsched_sim::check::{check, Gen};
use gridsched_sim::engine::{Engine, Scheduler, World};
use gridsched_sim::event::EventQueue;
use gridsched_sim::time::SimTime;

fn gen_times(g: &mut Gen, min: usize, max: usize, hi: u64) -> Vec<u64> {
    g.vec_of(min, max, |g| g.u64_in(0, hi))
}

/// Events pop in non-decreasing time order, with insertion order
/// breaking ties, regardless of scheduling order.
#[test]
fn queue_pops_in_stable_time_order() {
    check(256, |g| {
        let times = gen_times(g, 1, 49, 99);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "tie-break violated");
            }
        }
    });
}

/// Cancelling an arbitrary subset removes exactly those events.
#[test]
fn cancellation_removes_exactly_the_victims() {
    check(256, |g| {
        let times = gen_times(g, 1, 39, 99);
        let kill: Vec<bool> = g.vec_of(1, 39, |g| g.chance(0.5));
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_ticks(t), i)))
            .collect();
        let mut expected: std::collections::HashSet<usize> = (0..times.len()).collect();
        for (i, id) in &ids {
            if kill.get(*i).copied().unwrap_or(false) {
                assert!(q.cancel(*id));
                expected.remove(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            seen.insert(i);
        }
        assert_eq!(seen, expected);
    });
}

/// The engine delivers every scheduled event exactly once, in time
/// order, and two identical runs behave identically.
#[test]
fn engine_is_exhaustive_and_deterministic() {
    check(256, |g| {
        let times = gen_times(g, 1, 59, 199);
        struct Recorder {
            log: Vec<(u64, usize)>,
        }
        impl World for Recorder {
            type Event = usize;
            fn handle(&mut self, now: SimTime, ev: usize, _s: &mut Scheduler<'_, usize>) {
                self.log.push((now.ticks(), ev));
            }
        }
        let run = || {
            let mut engine = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                engine.prime(SimTime::from_ticks(t), i);
            }
            let mut world = Recorder { log: Vec::new() };
            let report = engine.run(&mut world);
            (world.log, report.events_processed)
        };
        let (log_a, n_a) = run();
        let (log_b, n_b) = run();
        assert_eq!(&log_a, &log_b);
        assert_eq!(n_a, times.len() as u64);
        assert_eq!(n_b, times.len() as u64);
        for pair in log_a.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    });
}
