//! Integer simulation time.
//!
//! All scheduling decisions in the paper are expressed in integer "time
//! units" (see Fig. 2: task durations 1..12, Gantt charts on a 0..20 axis).
//! Using integers keeps the discrete-event simulation exactly reproducible:
//! there is no floating-point drift in event ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in abstract ticks since simulation
/// start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Adding a
/// [`SimDuration`] produces a later `SimTime`.
///
/// # Examples
///
/// ```
/// use gridsched_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in ticks.
///
/// # Examples
///
/// ```
/// use gridsched_sim::time::SimDuration;
///
/// let d = SimDuration::from_ticks(3) + SimDuration::from_ticks(4);
/// assert_eq!(d.ticks(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "unreachable" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One tick.
    pub const TICK: SimDuration = SimDuration(1);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by an integer factor, saturating on overflow.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a non-negative real factor, rounding up to the
    /// nearest whole tick ("nearest not-smaller integer", as the paper rounds
    /// all derived times).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN or infinite.
    #[must_use]
    pub fn scale_ceil(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale_ceil: factor must be finite and non-negative, got {factor}"
        );
        let scaled = (self.0 as f64 * factor).ceil();
        SimDuration(scaled as u64)
    }

    /// Returns the ratio of two durations as `f64`.
    ///
    /// Returns 0.0 when `other` is zero.
    #[must_use]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflowed"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration addition overflowed"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflowed"),
        )
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(ticks: u64) -> Self {
        SimDuration(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = SimTime::from_ticks(3);
        let b = a + SimDuration::from_ticks(4);
        assert_eq!(b.ticks(), 7);
        assert!(b > a);
        assert_eq!(b.since(a), SimDuration::from_ticks(4));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_ticks(6));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(9);
        let _ = a.since(b);
    }

    #[test]
    fn scale_ceil_rounds_up() {
        let d = SimDuration::from_ticks(10);
        assert_eq!(d.scale_ceil(0.33).ticks(), 4); // 3.3 -> 4
        assert_eq!(d.scale_ceil(1.0).ticks(), 10);
        assert_eq!(d.scale_ceil(0.0).ticks(), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scale_ceil_rejects_nan() {
        let _ = SimDuration::from_ticks(1).scale_ceil(f64::NAN);
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_ticks(3);
        let b = SimDuration::from_ticks(4);
        assert!((a.ratio(b) - 0.75).abs() < 1e-12);
        assert_eq!(a.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_ticks).sum();
        assert_eq!(total.ticks(), 6);
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(SimTime::from_ticks(5).to_string(), "t5");
        assert_eq!(SimDuration::from_ticks(5).to_string(), "5d");
    }

    #[test]
    fn max_of_picks_later() {
        let a = SimTime::from_ticks(2);
        let b = SimTime::from_ticks(7);
        assert_eq!(a.max_of(b), b);
        assert_eq!(b.max_of(a), b);
    }
}
