//! Seeded random number generation for reproducible experiments.
//!
//! Every stochastic element of the simulation study (task volumes, estimate
//! spreads, node performances, arrival processes, fault plans) draws from a
//! [`SimRng`] created from an explicit seed, so a whole 12 000-job campaign
//! replays bit-identically from its seed.
//!
//! The generator is a self-contained **xoshiro256++** implementation
//! (Blackman & Vigna), seeded through a splitmix64 expansion. Keeping the
//! PRNG inside the workspace — instead of depending on an external crate —
//! pins the exact output sequence forever: byte-identical reports across
//! toolchains and dependency upgrades are a hard requirement of the
//! determinism test suite.

use crate::time::SimDuration;

/// Splitmix64 step; used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random source.
///
/// Wraps a fast non-cryptographic generator (xoshiro256++) and exposes the
/// handful of distributions the paper's workload model needs (§4: uniform
/// parameters with a 2–3× spread).
///
/// # Examples
///
/// ```
/// use gridsched_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(1, 100), b.uniform_u64(1, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The raw xoshiro256++ step: uniform over all of `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each subsystem
    /// (workload, background flow, data placement, fault plan) its own
    /// stream so that changing one experiment knob does not perturb the
    /// others.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.next_u64();
        // Mix the stream id in with a splitmix64-style finalizer so that
        // consecutive stream ids produce uncorrelated seeds.
        let mut z = base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::seed_from(z)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Widening-multiply range reduction (Lemire); the residual bias is
        // below 2^-64 for the ranges the simulation uses.
        let range = span + 1;
        let hi_bits = ((u128::from(self.next_u64()) * u128::from(range)) >> 64) as u64;
        lo + hi_bits
    }

    /// Uniform real in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "uniform_f64: invalid range [{lo}, {hi})"
        );
        let unit = self.unit_f64();
        let v = lo + unit * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform real in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform duration in `[lo, hi]` ticks (inclusive).
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_ticks(self.uniform_u64(lo.ticks(), hi.ticks()))
    }

    /// Draws a base value and applies the paper's "difference equal to
    /// 2...3" spread: returns a value uniform in `[base, spread * base]`
    /// where `spread` is itself uniform in `[2.0, 3.0]`.
    pub fn spread_2_to_3(&mut self, base: u64) -> u64 {
        let spread = self.uniform_f64(2.0, 3.0);
        let hi = ((base as f64) * spread).ceil() as u64;
        self.uniform_u64(base, hi.max(base))
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p out of range: {p}");
        self.unit_f64() < p
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index: empty collection");
        self.uniform_u64(0, len as u64 - 1) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..32).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from(99);
        let mut root2 = SimRng::seed_from(99);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        assert_eq!(a1.uniform_u64(0, 1 << 40), a2.uniform_u64(0, 1 << 40));
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = rng.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_supported() {
        let mut rng = SimRng::seed_from(17);
        // Must not overflow or panic.
        let _ = rng.uniform_u64(0, u64::MAX);
        let _ = rng.uniform_u64(u64::MAX, u64::MAX);
    }

    #[test]
    fn spread_respects_paper_band() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = rng.spread_2_to_3(10);
            assert!((10..=30).contains(&v), "value {v} outside [10, 30]");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_empty_range() {
        let mut rng = SimRng::seed_from(1);
        let _ = rng.uniform_u64(5, 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn sequence_is_stable_across_clones() {
        let mut a = SimRng::seed_from(123);
        let mut b = a.clone();
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).all(|w| w[0] != w[1]));
    }
}
