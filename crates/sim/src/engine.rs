//! The simulation driver: a clock plus an event loop.

use crate::event::{EventId, EventQueue};
use crate::time::SimTime;

/// The behaviour plugged into an [`Engine`].
///
/// A world receives each fired event together with a [`Scheduler`] handle it
/// can use to schedule (or cancel) follow-up events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        scheduler: &mut Scheduler<'_, Self::Event>,
    );
}

/// Handle given to [`World::handle`] for scheduling follow-up events.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<E> Scheduler<'_, E> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a world must never rewind time.
    pub fn at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule an event at {at}, before now ({})",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedules an event `delay` ticks from now.
    pub fn after(&mut self, delay: crate::time::SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// Outcome of an [`Engine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of events delivered to the world.
    pub events_processed: u64,
    /// Simulated time when the run stopped.
    pub finished_at: SimTime,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Why an engine run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list drained.
    QueueEmpty,
    /// The configured horizon was reached; later events remain pending.
    HorizonReached,
    /// The configured event budget was exhausted.
    EventBudgetExhausted,
}

/// A discrete-event simulation engine.
///
/// # Examples
///
/// ```
/// use gridsched_sim::engine::{Engine, Scheduler, World};
/// use gridsched_sim::time::{SimDuration, SimTime};
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _ev: (), s: &mut Scheduler<'_, ()>) {
///         self.fired += 1;
///         if self.fired < 3 {
///             s.after(SimDuration::from_ticks(5), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.prime(SimTime::ZERO, ());
/// let mut world = Counter { fired: 0 };
/// let report = engine.run(&mut world);
/// assert_eq!(world.fired, 3);
/// assert_eq!(report.finished_at.ticks(), 10);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    event_budget: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with no horizon and an effectively unlimited event
    /// budget.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            event_budget: u64::MAX,
        }
    }

    /// Limits the run to events at or before `horizon`.
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Limits the run to at most `budget` delivered events — a guard against
    /// accidentally self-perpetuating worlds.
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an initial event before the run starts.
    pub fn prime(&mut self, at: SimTime, event: E) -> EventId {
        self.queue.schedule(at, event)
    }

    /// Runs the event loop until the queue drains, the horizon passes, or
    /// the event budget is exhausted.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W) -> RunReport {
        let mut processed: u64 = 0;
        loop {
            if processed >= self.event_budget {
                return RunReport {
                    events_processed: processed,
                    finished_at: self.now,
                    stop: StopReason::EventBudgetExhausted,
                };
            }
            match self.queue.peek_time() {
                None => {
                    return RunReport {
                        events_processed: processed,
                        finished_at: self.now,
                        stop: StopReason::QueueEmpty,
                    };
                }
                Some(t) if t > self.horizon => {
                    self.now = self.horizon;
                    return RunReport {
                        events_processed: processed,
                        finished_at: self.now,
                        stop: StopReason::HorizonReached,
                    };
                }
                Some(_) => {}
            }
            let (at, event) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(
                at >= self.now,
                "event queue delivered an event from the past"
            );
            self.now = at;
            let mut scheduler = Scheduler {
                now: self.now,
                queue: &mut self.queue,
            };
            world.handle(at, event, &mut scheduler);
            processed += 1;
        }
    }

    /// Total number of events ever scheduled.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.queue.scheduled_count()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Tick {
        Ping,
        Pong,
    }

    struct PingPong {
        log: Vec<(u64, Tick)>,
        rounds: u32,
    }

    impl World for PingPong {
        type Event = Tick;
        fn handle(&mut self, now: SimTime, ev: Tick, s: &mut Scheduler<'_, Tick>) {
            self.log.push((now.ticks(), ev));
            if self.rounds == 0 {
                return;
            }
            self.rounds -= 1;
            match ev {
                Tick::Ping => {
                    s.after(SimDuration::from_ticks(2), Tick::Pong);
                }
                Tick::Pong => {
                    s.after(SimDuration::from_ticks(3), Tick::Ping);
                }
            }
        }
    }

    #[test]
    fn ping_pong_alternates_with_correct_times() {
        let mut engine = Engine::new();
        engine.prime(SimTime::ZERO, Tick::Ping);
        let mut world = PingPong {
            log: Vec::new(),
            rounds: 4,
        };
        let report = engine.run(&mut world);
        assert_eq!(report.stop, StopReason::QueueEmpty);
        assert_eq!(
            world.log,
            vec![
                (0, Tick::Ping),
                (2, Tick::Pong),
                (5, Tick::Ping),
                (7, Tick::Pong),
                (10, Tick::Ping),
            ]
        );
    }

    #[test]
    fn horizon_stops_run() {
        let mut engine = Engine::new().with_horizon(SimTime::from_ticks(4));
        engine.prime(SimTime::ZERO, Tick::Ping);
        let mut world = PingPong {
            log: Vec::new(),
            rounds: 100,
        };
        let report = engine.run(&mut world);
        assert_eq!(report.stop, StopReason::HorizonReached);
        assert_eq!(report.finished_at, SimTime::from_ticks(4));
        // Only events at t=0 and t=2 fit under the horizon.
        assert_eq!(world.log.len(), 2);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut engine = Engine::new().with_event_budget(3);
        engine.prime(SimTime::ZERO, Tick::Ping);
        let mut world = PingPong {
            log: Vec::new(),
            rounds: u32::MAX,
        };
        let report = engine.run(&mut world);
        assert_eq!(report.stop, StopReason::EventBudgetExhausted);
        assert_eq!(report.events_processed, 3);
    }

    struct Canceller {
        victim: Option<crate::event::EventId>,
        delivered: Vec<&'static str>,
    }

    impl World for Canceller {
        type Event = &'static str;
        fn handle(&mut self, _now: SimTime, ev: &'static str, s: &mut Scheduler<'_, &'static str>) {
            self.delivered.push(ev);
            if ev == "first" {
                if let Some(id) = self.victim.take() {
                    assert!(s.cancel(id));
                }
            }
        }
    }

    #[test]
    fn world_can_cancel_pending_events() {
        let mut engine = Engine::new();
        engine.prime(SimTime::from_ticks(1), "first");
        let victim = engine.prime(SimTime::from_ticks(5), "victim");
        engine.prime(SimTime::from_ticks(9), "last");
        let mut world = Canceller {
            victim: Some(victim),
            delivered: Vec::new(),
        };
        engine.run(&mut world);
        assert_eq!(world.delivered, vec!["first", "last"]);
    }

    #[test]
    fn empty_engine_reports_queue_empty() {
        let mut engine = Engine::<Tick>::new();
        struct Nop;
        impl World for Nop {
            type Event = Tick;
            fn handle(&mut self, _: SimTime, _: Tick, _: &mut Scheduler<'_, Tick>) {}
        }
        let report = engine.run(&mut Nop);
        assert_eq!(report.events_processed, 0);
        assert_eq!(report.stop, StopReason::QueueEmpty);
    }
}
