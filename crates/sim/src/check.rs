//! Minimal deterministic property-testing harness.
//!
//! A self-contained replacement for an external property-testing crate:
//! each property runs against a configurable number of generated cases,
//! every case is seeded deterministically from the case index, and a
//! failing case reports its index and seed so it can be replayed in
//! isolation with [`replay`].
//!
//! There is no shrinking — cases are intentionally kept small by the
//! generators instead — but failures are perfectly reproducible, which is
//! what the workspace's determinism-first test style needs.
//!
//! # Examples
//!
//! ```
//! use gridsched_sim::check::{check, Gen};
//!
//! check(64, |g: &mut Gen| {
//!     let a = g.u64_in(0, 100);
//!     let b = g.u64_in(0, 100);
//!     assert!(a + b <= 200);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Default number of cases for [`check_default`].
pub const DEFAULT_CASES: usize = 256;

/// A deterministic case generator handed to each property invocation.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
    case: usize,
    seed: u64,
}

impl Gen {
    /// Creates a generator for one case.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SimRng::seed_from(seed),
            case: 0,
            seed,
        }
    }

    /// The case index within the current [`check`] run.
    #[must_use]
    pub fn case(&self) -> usize {
        self.case
    }

    /// The seed this case was generated from (replayable via [`replay`]).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the underlying random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.uniform_u64(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.uniform_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform real in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform_f64(lo, hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A vector of `len in [min_len, max_len]` elements drawn by `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.index(items.len())]
    }
}

/// Derives the per-case seed for `(base, case)`.
#[must_use]
fn case_seed(base: u64, case: usize) -> u64 {
    // splitmix64-style finalizer over (base, case).
    let mut z = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `property` against `cases` deterministically seeded cases.
///
/// # Panics
///
/// Re-raises the first failing case, annotated with its index and seed.
pub fn check(cases: usize, property: impl Fn(&mut Gen)) {
    check_with_base(0x0C0F_FEE0_0D15_EA5E_u64, cases, property);
}

/// [`check`] with the default case count.
pub fn check_default(property: impl Fn(&mut Gen)) {
    check(DEFAULT_CASES, property);
}

/// Runs `property` against cases derived from an explicit base seed.
///
/// # Panics
///
/// Re-raises the first failing case, annotated with its index and seed.
pub fn check_with_base(base: u64, cases: usize, property: impl Fn(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(base, case);
        let mut gen = Gen::from_seed(seed);
        gen.case = case;
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut gen)));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed at case {case} (replay seed {seed:#x}): {message}");
        }
    }
}

/// Re-runs a property against one previously reported seed.
pub fn replay(seed: u64, property: impl Fn(&mut Gen)) {
    let mut gen = Gen::from_seed(seed);
    property(&mut gen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        // Fn (not FnMut) closure: count via Cell.
        let counter = std::cell::Cell::new(0usize);
        check(32, |g| {
            let _ = g.u64_in(0, 10);
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_case_and_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(16, |g| {
                let v = g.u64_in(0, 100);
                assert!(v > 1_000, "impossible bound {v}");
            });
        }));
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("annotated panic is a String");
        assert!(msg.contains("property failed at case 0"), "{msg}");
        assert!(msg.contains("replay seed"), "{msg}");
        assert!(msg.contains("impossible bound"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = |_: ()| {
            let values = std::cell::RefCell::new(Vec::new());
            check(8, |g| values.borrow_mut().push(g.u64_in(0, 1 << 40)));
            values.into_inner()
        };
        assert_eq!(collect(()), collect(()));
    }

    #[test]
    fn replay_reproduces_a_case() {
        let seed = case_seed(0x0C0F_FEE0_0D15_EA5E, 3);
        let from_check = std::cell::Cell::new(0u64);
        check(8, |g| {
            if g.case() == 3 {
                from_check.set(g.u64_in(0, u64::MAX - 1));
            } else {
                let _ = g.u64_in(0, u64::MAX - 1);
            }
        });
        let direct = std::cell::Cell::new(0u64);
        replay(seed, |g| direct.set(g.u64_in(0, u64::MAX - 1)));
        assert_eq!(from_check.get(), direct.get());
    }

    #[test]
    fn vec_of_and_pick() {
        check(32, |g| {
            let v = g.vec_of(1, 9, |g| g.u64_in(0, 5));
            assert!((1..=9).contains(&v.len()));
            let item = *g.pick(&v);
            assert!(v.contains(&item));
        });
    }
}
