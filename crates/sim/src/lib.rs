//! # gridsched-sim
//!
//! Deterministic discrete-event simulation engine underlying the `gridsched`
//! reproduction of Toporkov's PaCT 2009 scheduling framework.
//!
//! The crate provides three small building blocks:
//!
//! - [`time`]: integer simulated time ([`time::SimTime`]) and spans
//!   ([`time::SimDuration`]);
//! - [`event`]: a deterministic future-event list with cancellation;
//! - [`engine`]: the event loop ([`engine::Engine`]) driving a user-supplied
//!   [`engine::World`];
//! - [`rng`]: seeded random streams ([`rng::SimRng`]) so whole simulation
//!   campaigns replay bit-identically;
//! - [`check`]: a tiny deterministic property-testing harness used by the
//!   workspace's randomized test suites.
//!
//! # Examples
//!
//! ```
//! use gridsched_sim::engine::{Engine, Scheduler, World};
//! use gridsched_sim::time::{SimDuration, SimTime};
//!
//! // A world that fires a chain of three events, 5 ticks apart.
//! struct Chain(u32);
//! impl World for Chain {
//!     type Event = ();
//!     fn handle(&mut self, _now: SimTime, _ev: (), s: &mut Scheduler<'_, ()>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             s.after(SimDuration::from_ticks(5), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.prime(SimTime::ZERO, ());
//! let report = engine.run(&mut Chain(0));
//! assert_eq!(report.finished_at.ticks(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use engine::{Engine, RunReport, Scheduler, StopReason, World};
pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
