//! Time-ordered event queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    id: EventId,
    payload: E,
}

/// A deterministic future-event list.
///
/// Events fire in `(time, insertion order)` order, which makes simulation
/// runs reproducible: two events scheduled for the same tick are delivered
/// in the order they were scheduled.
///
/// # Examples
///
/// ```
/// use gridsched_sim::event::EventQueue;
/// use gridsched_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(10), "late");
/// q.schedule(SimTime::from_ticks(5), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (5, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    scheduled_count: u64,
}

#[derive(Debug)]
struct HeapEntry<E>(Scheduled<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.id == other.0.id
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.id).cmp(&(other.0.at, other.0.id))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            scheduled_count: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns an id usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled_count += 1;
        self.heap
            .push(Reverse(HeapEntry(Scheduled { at, id, payload })));
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when its time comes).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(HeapEntry(ev))) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(HeapEntry(ev))) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let id = ev.id;
                self.heap.pop();
                self.cancelled.remove(&id);
                continue;
            }
            return Some(ev.at);
        }
        None
    }

    /// Whether no non-cancelled events remain.
    #[must_use]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of events scheduled over the queue's lifetime (including
    /// cancelled ones).
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled_count
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(5), "b");
        q.schedule(t(5), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(12345)));
    }

    #[test]
    fn peek_time_sees_through_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(7), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn scheduled_count_is_lifetime_total() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        assert_eq!(q.scheduled_count(), 2);
    }
}
