//! Piecewise-constant capacity allocation profiles.
//!
//! A local batch system with `m` identical nodes tracks how many nodes are
//! allocated at every future instant — by running jobs (until their
//! *estimated* ends) and by advance reservations. Scheduling decisions
//! (FCFS head starts, backfill shadow times, reservation placement) are all
//! queries against this profile.
//!
//! What-if questions (start predictions, backfill shadows, conservative
//! trial reservations) go through a [`ProfileOverlay`]: a copy-on-write
//! view holding only the what-if deltas on top of a borrowed base profile —
//! the batch-level analogue of the planning-session overlay timetables in
//! `gridsched-model`.

use std::collections::BTreeMap;

use gridsched_sim::time::{SimDuration, SimTime};

use gridsched_model::window::TimeWindow;

/// Piecewise-constant map from time to allocated node count.
///
/// # Examples
///
/// ```
/// use gridsched_batch::profile::Profile;
/// use gridsched_model::window::TimeWindow;
/// use gridsched_sim::time::{SimDuration, SimTime};
///
/// let mut p = Profile::new();
/// let w = TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap();
/// p.add(w, 2);
/// assert_eq!(p.allocation_at(SimTime::from_ticks(5)), 2);
/// // With 3 nodes total, a 1-wide job fits immediately…
/// assert_eq!(
///     p.earliest_fit(SimTime::ZERO, SimDuration::from_ticks(4), 1, 3),
///     SimTime::ZERO
/// );
/// // …but a 2-wide job must wait for the window to end.
/// assert_eq!(
///     p.earliest_fit(SimTime::ZERO, SimDuration::from_ticks(4), 2, 3),
///     SimTime::from_ticks(10)
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Capacity deltas: +width at window start, -width at window end.
    deltas: BTreeMap<SimTime, i64>,
}

impl Profile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Profile::default()
    }

    /// Allocates `width` nodes over `window`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` — zero-width allocations are a logic error.
    pub fn add(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "Profile::add: zero width");
        *self.deltas.entry(window.start()).or_insert(0) += i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) -= i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    /// Removes a previously added allocation. The caller must pass exactly
    /// the window/width pair it added.
    pub fn remove(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "Profile::remove: zero width");
        *self.deltas.entry(window.start()).or_insert(0) -= i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) += i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    fn prune(&mut self, key: SimTime) {
        if self.deltas.get(&key) == Some(&0) {
            self.deltas.remove(&key);
        }
    }

    /// Allocation at instant `t`.
    #[must_use]
    pub fn allocation_at(&self, t: SimTime) -> u32 {
        u32::try_from(self.raw_allocation_at(t).max(0)).expect("allocation out of range")
    }

    /// Unclamped delta sum up to and including `t`.
    fn raw_allocation_at(&self, t: SimTime) -> i64 {
        self.deltas.range(..=t).map(|(_, &d)| d).sum()
    }

    /// Maximum allocation over `[window.start, window.end)`.
    #[must_use]
    pub fn max_allocation_in(&self, window: TimeWindow) -> u32 {
        let mut current = i64::from(self.allocation_at(window.start()));
        let mut max = current;
        for (_, &d) in self.deltas.range((
            std::ops::Bound::Excluded(window.start()),
            std::ops::Bound::Excluded(window.end()),
        )) {
            current += d;
            max = max.max(current);
        }
        u32::try_from(max.max(0)).expect("allocation out of range")
    }

    /// Earliest `t >= from` such that allocating `width` more nodes over
    /// `[t, t + duration)` never exceeds `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `width > capacity` (such a job can never run).
    #[must_use]
    pub fn earliest_fit(
        &self,
        from: SimTime,
        duration: SimDuration,
        width: u32,
        capacity: u32,
    ) -> SimTime {
        assert!(
            width <= capacity,
            "job width {width} exceeds cluster capacity {capacity}"
        );
        let budget = capacity - width;
        let mut candidate = from;
        loop {
            let window =
                TimeWindow::starting_at(candidate, duration.max_one()).expect("non-empty window");
            if self.max_allocation_in(window) <= budget {
                return candidate;
            }
            // Jump to the next breakpoint where allocation can decrease.
            let next = self
                .deltas
                .range((
                    std::ops::Bound::Excluded(candidate),
                    std::ops::Bound::Unbounded,
                ))
                .map(|(&t, _)| t)
                .next();
            match next {
                Some(t) => candidate = t,
                // No more breakpoints but still over budget: impossible,
                // since allocation past the last breakpoint is 0.
                None => unreachable!("profile allocation never drops to zero"),
            }
        }
    }

    /// Whether the profile has no allocations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of breakpoints (diagnostics).
    #[must_use]
    pub fn breakpoints(&self) -> usize {
        self.deltas.len()
    }
}

/// A copy-on-write what-if view over a borrowed [`Profile`].
///
/// The overlay records only its own allocation deltas; every query answers
/// over the *sum* of base and overlay deltas — exactly what a cloned
/// profile holding both sets of allocations would answer. Dropping the
/// overlay discards the what-if state without ever touching (or copying)
/// the base.
///
/// # Examples
///
/// ```
/// use gridsched_batch::profile::{Profile, ProfileOverlay};
/// use gridsched_model::window::TimeWindow;
/// use gridsched_sim::time::{SimDuration, SimTime};
///
/// let mut base = Profile::new();
/// base.add(TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap(), 3);
/// let mut what_if = ProfileOverlay::new(&base);
/// what_if.add(TimeWindow::new(SimTime::from_ticks(10), SimTime::from_ticks(20)).unwrap(), 3);
/// // The overlay sees both allocations…
/// assert_eq!(
///     what_if.earliest_fit(SimTime::ZERO, SimDuration::from_ticks(4), 2, 4),
///     SimTime::from_ticks(20)
/// );
/// // …while the base never learns about the what-if window.
/// assert_eq!(base.allocation_at(SimTime::from_ticks(15)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileOverlay<'a> {
    base: &'a Profile,
    /// This view's own capacity deltas, same encoding as [`Profile`].
    deltas: BTreeMap<SimTime, i64>,
}

impl<'a> ProfileOverlay<'a> {
    /// Creates an overlay with no what-if allocations over `base`.
    #[must_use]
    pub fn new(base: &'a Profile) -> Self {
        ProfileOverlay {
            base,
            deltas: BTreeMap::new(),
        }
    }

    /// [`ProfileOverlay::new`] with a telemetry recorder attached: bumps
    /// [`Counter::ProfileOverlays`](gridsched_metrics::telemetry::Counter)
    /// so what-if pressure on the batch profile is observable. The overlay
    /// itself is identical to [`ProfileOverlay::new`].
    #[must_use]
    pub fn instrumented(
        base: &'a Profile,
        telemetry: &gridsched_metrics::telemetry::Telemetry,
    ) -> Self {
        telemetry.incr(gridsched_metrics::telemetry::Counter::ProfileOverlays);
        ProfileOverlay::new(base)
    }

    /// Allocates `width` nodes over `window` in this view only.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn add(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "ProfileOverlay::add: zero width");
        *self.deltas.entry(window.start()).or_insert(0) += i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) -= i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    /// Removes a what-if allocation previously [`ProfileOverlay::add`]ed
    /// to this view.
    pub fn remove(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "ProfileOverlay::remove: zero width");
        *self.deltas.entry(window.start()).or_insert(0) -= i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) += i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    fn prune(&mut self, key: SimTime) {
        if self.deltas.get(&key) == Some(&0) {
            self.deltas.remove(&key);
        }
    }

    /// Combined (base + what-if) allocation at instant `t`.
    #[must_use]
    pub fn allocation_at(&self, t: SimTime) -> u32 {
        let sum =
            self.base.raw_allocation_at(t) + self.deltas.range(..=t).map(|(_, &d)| d).sum::<i64>();
        u32::try_from(sum.max(0)).expect("allocation out of range")
    }

    /// Maximum combined allocation over `[window.start, window.end)` — a
    /// merged breakpoint walk over both delta maps, mirroring
    /// [`Profile::max_allocation_in`].
    #[must_use]
    pub fn max_allocation_in(&self, window: TimeWindow) -> u32 {
        let bounds = (
            std::ops::Bound::Excluded(window.start()),
            std::ops::Bound::Excluded(window.end()),
        );
        let mut current = self.base.raw_allocation_at(window.start())
            + self
                .deltas
                .range(..=window.start())
                .map(|(_, &d)| d)
                .sum::<i64>();
        let mut max = current;
        let mut a = self.base.deltas.range(bounds).peekable();
        let mut b = self.deltas.range(bounds).peekable();
        loop {
            // Merge the two breakpoint streams; equal instants apply both
            // deltas at once (as a materialized sum-profile would).
            let step = match (a.peek(), b.peek()) {
                (Some((&ta, _)), Some((&tb, _))) => {
                    if ta < tb {
                        *a.next().expect("peeked").1
                    } else if tb < ta {
                        *b.next().expect("peeked").1
                    } else {
                        *a.next().expect("peeked").1 + *b.next().expect("peeked").1
                    }
                }
                (Some(_), None) => *a.next().expect("peeked").1,
                (None, Some(_)) => *b.next().expect("peeked").1,
                (None, None) => break,
            };
            current += step;
            max = max.max(current);
        }
        u32::try_from(max.max(0)).expect("allocation out of range")
    }

    /// Earliest `t >= from` such that allocating `width` more nodes over
    /// `[t, t + duration)` never exceeds `capacity` in the combined view —
    /// the jump loop of [`Profile::earliest_fit`] over merged breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `width > capacity`.
    #[must_use]
    pub fn earliest_fit(
        &self,
        from: SimTime,
        duration: SimDuration,
        width: u32,
        capacity: u32,
    ) -> SimTime {
        assert!(
            width <= capacity,
            "job width {width} exceeds cluster capacity {capacity}"
        );
        let budget = capacity - width;
        let mut candidate = from;
        loop {
            let window =
                TimeWindow::starting_at(candidate, duration.max_one()).expect("non-empty window");
            if self.max_allocation_in(window) <= budget {
                return candidate;
            }
            let after = (
                std::ops::Bound::Excluded(candidate),
                std::ops::Bound::Unbounded,
            );
            let next = [
                self.base.deltas.range(after).map(|(&t, _)| t).next(),
                self.deltas.range(after).map(|(&t, _)| t).next(),
            ]
            .into_iter()
            .flatten()
            .min();
            match next {
                Some(t) => candidate = t,
                None => unreachable!("profile allocation never drops to zero"),
            }
        }
    }
}

/// Extension used internally: treat zero durations as one tick so windows
/// stay non-empty.
trait MaxOne {
    fn max_one(self) -> SimDuration;
}

impl MaxOne for SimDuration {
    fn max_one(self) -> SimDuration {
        if self.is_zero() {
            SimDuration::TICK
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_ticks(a), SimTime::from_ticks(b)).unwrap()
    }

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    #[test]
    fn allocation_tracks_overlapping_windows() {
        let mut p = Profile::new();
        p.add(w(0, 10), 2);
        p.add(w(5, 15), 3);
        assert_eq!(p.allocation_at(t(0)), 2);
        assert_eq!(p.allocation_at(t(5)), 5);
        assert_eq!(p.allocation_at(t(10)), 3);
        assert_eq!(p.allocation_at(t(15)), 0);
        assert_eq!(p.max_allocation_in(w(0, 20)), 5);
        assert_eq!(p.max_allocation_in(w(10, 20)), 3);
    }

    #[test]
    fn remove_restores_profile() {
        let mut p = Profile::new();
        p.add(w(0, 10), 2);
        p.add(w(5, 15), 3);
        p.remove(w(5, 15), 3);
        assert_eq!(p.allocation_at(t(7)), 2);
        p.remove(w(0, 10), 2);
        assert!(p.is_empty());
    }

    #[test]
    fn earliest_fit_simple() {
        let mut p = Profile::new();
        p.add(w(0, 10), 3); // cluster of 4: only 1 node free until t10
        assert_eq!(p.earliest_fit(t(0), d(5), 1, 4), t(0));
        assert_eq!(p.earliest_fit(t(0), d(5), 2, 4), t(10));
        assert_eq!(p.earliest_fit(t(3), d(5), 1, 4), t(3));
    }

    #[test]
    fn earliest_fit_must_clear_whole_duration() {
        let mut p = Profile::new();
        p.add(w(4, 6), 4); // full blockage in the middle, capacity 4
                           // A 3-tick 1-wide job starting at t0 would run into the blockage at
                           // t4? No: [0,3) clears it. A 5-tick job cannot.
        assert_eq!(p.earliest_fit(t(0), d(3), 1, 4), t(0));
        assert_eq!(p.earliest_fit(t(0), d(5), 1, 4), t(6));
        // From t2, even a 2-tick job collides with [4,6).
        assert_eq!(p.earliest_fit(t(3), d(2), 1, 4), t(6));
    }

    #[test]
    fn earliest_fit_threads_between_reservations() {
        let mut p = Profile::new();
        p.add(w(0, 2), 2);
        p.add(w(6, 8), 2);
        // Capacity 2, width 2: must fit entirely inside [2, 6).
        assert_eq!(p.earliest_fit(t(0), d(4), 2, 2), t(2));
        assert_eq!(p.earliest_fit(t(0), d(5), 2, 2), t(8));
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversized_job_rejected() {
        let _ = Profile::new().earliest_fit(t(0), d(1), 5, 4);
    }

    #[test]
    fn zero_duration_treated_as_tick() {
        let mut p = Profile::new();
        p.add(w(0, 4), 1);
        assert_eq!(p.earliest_fit(t(0), SimDuration::ZERO, 1, 1), t(4));
    }

    #[test]
    fn overlay_matches_materialized_clone() {
        let mut base = Profile::new();
        base.add(w(0, 10), 2);
        base.add(w(5, 15), 1);
        let extra: &[(TimeWindow, u32)] = &[(w(3, 8), 1), (w(12, 20), 3), (w(0, 2), 1)];
        let mut overlay = ProfileOverlay::new(&base);
        let mut clone = base.clone();
        for &(win, width) in extra {
            overlay.add(win, width);
            clone.add(win, width);
        }
        for tick in 0..25 {
            assert_eq!(
                overlay.allocation_at(t(tick)),
                clone.allocation_at(t(tick)),
                "@{tick}"
            );
        }
        for (a, b) in [(0, 25), (3, 8), (7, 13), (11, 12)] {
            assert_eq!(
                overlay.max_allocation_in(w(a, b)),
                clone.max_allocation_in(w(a, b)),
                "[{a},{b})"
            );
        }
        for width in 1..=4u32 {
            for dur in [1u64, 3, 6] {
                assert_eq!(
                    overlay.earliest_fit(t(0), d(dur), width, 6),
                    clone.earliest_fit(t(0), d(dur), width, 6),
                    "w{width} d{dur}"
                );
            }
        }
        // Removing the what-if windows restores base answers; base itself
        // was never touched.
        for &(win, width) in extra {
            overlay.remove(win, width);
        }
        for tick in 0..25 {
            assert_eq!(overlay.allocation_at(t(tick)), base.allocation_at(t(tick)));
        }
        assert_eq!(base.max_allocation_in(w(0, 25)), 3);
    }

    #[test]
    fn overlay_equal_breakpoints_apply_together() {
        // Base ends a window exactly where the overlay starts one: the
        // merged walk must apply both deltas at that instant.
        let mut base = Profile::new();
        base.add(w(0, 5), 2);
        let mut overlay = ProfileOverlay::new(&base);
        overlay.add(w(5, 10), 2);
        assert_eq!(overlay.max_allocation_in(w(0, 10)), 2);
        assert_eq!(overlay.earliest_fit(t(0), d(3), 1, 3), t(0));
        assert_eq!(overlay.earliest_fit(t(0), d(3), 2, 3), t(10));
    }

    #[test]
    fn breakpoints_are_pruned() {
        let mut p = Profile::new();
        p.add(w(0, 10), 1);
        p.add(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 2);
        p.remove(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 2);
        p.remove(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 0);
    }
}
