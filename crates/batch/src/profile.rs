//! Piecewise-constant capacity allocation profiles.
//!
//! A local batch system with `m` identical nodes tracks how many nodes are
//! allocated at every future instant — by running jobs (until their
//! *estimated* ends) and by advance reservations. Scheduling decisions
//! (FCFS head starts, backfill shadow times, reservation placement) are all
//! queries against this profile.

use std::collections::BTreeMap;

use gridsched_sim::time::{SimDuration, SimTime};

use gridsched_model::window::TimeWindow;

/// Piecewise-constant map from time to allocated node count.
///
/// # Examples
///
/// ```
/// use gridsched_batch::profile::Profile;
/// use gridsched_model::window::TimeWindow;
/// use gridsched_sim::time::{SimDuration, SimTime};
///
/// let mut p = Profile::new();
/// let w = TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap();
/// p.add(w, 2);
/// assert_eq!(p.allocation_at(SimTime::from_ticks(5)), 2);
/// // With 3 nodes total, a 1-wide job fits immediately…
/// assert_eq!(
///     p.earliest_fit(SimTime::ZERO, SimDuration::from_ticks(4), 1, 3),
///     SimTime::ZERO
/// );
/// // …but a 2-wide job must wait for the window to end.
/// assert_eq!(
///     p.earliest_fit(SimTime::ZERO, SimDuration::from_ticks(4), 2, 3),
///     SimTime::from_ticks(10)
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Capacity deltas: +width at window start, -width at window end.
    deltas: BTreeMap<SimTime, i64>,
}

impl Profile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Profile::default()
    }

    /// Allocates `width` nodes over `window`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` — zero-width allocations are a logic error.
    pub fn add(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "Profile::add: zero width");
        *self.deltas.entry(window.start()).or_insert(0) += i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) -= i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    /// Removes a previously added allocation. The caller must pass exactly
    /// the window/width pair it added.
    pub fn remove(&mut self, window: TimeWindow, width: u32) {
        assert!(width > 0, "Profile::remove: zero width");
        *self.deltas.entry(window.start()).or_insert(0) -= i64::from(width);
        *self.deltas.entry(window.end()).or_insert(0) += i64::from(width);
        self.prune(window.start());
        self.prune(window.end());
    }

    fn prune(&mut self, key: SimTime) {
        if self.deltas.get(&key) == Some(&0) {
            self.deltas.remove(&key);
        }
    }

    /// Allocation at instant `t`.
    #[must_use]
    pub fn allocation_at(&self, t: SimTime) -> u32 {
        let sum: i64 = self
            .deltas
            .range(..=t)
            .map(|(_, &d)| d)
            .sum();
        u32::try_from(sum.max(0)).expect("allocation out of range")
    }

    /// Maximum allocation over `[window.start, window.end)`.
    #[must_use]
    pub fn max_allocation_in(&self, window: TimeWindow) -> u32 {
        let mut current = i64::from(self.allocation_at(window.start()));
        let mut max = current;
        for (_, &d) in self
            .deltas
            .range((
                std::ops::Bound::Excluded(window.start()),
                std::ops::Bound::Excluded(window.end()),
            ))
        {
            current += d;
            max = max.max(current);
        }
        u32::try_from(max.max(0)).expect("allocation out of range")
    }

    /// Earliest `t >= from` such that allocating `width` more nodes over
    /// `[t, t + duration)` never exceeds `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `width > capacity` (such a job can never run).
    #[must_use]
    pub fn earliest_fit(
        &self,
        from: SimTime,
        duration: SimDuration,
        width: u32,
        capacity: u32,
    ) -> SimTime {
        assert!(
            width <= capacity,
            "job width {width} exceeds cluster capacity {capacity}"
        );
        let budget = capacity - width;
        let mut candidate = from;
        loop {
            let window =
                TimeWindow::starting_at(candidate, duration.max_one()).expect("non-empty window");
            if self.max_allocation_in(window) <= budget {
                return candidate;
            }
            // Jump to the next breakpoint where allocation can decrease.
            let next = self
                .deltas
                .range((std::ops::Bound::Excluded(candidate), std::ops::Bound::Unbounded))
                .map(|(&t, _)| t)
                .next();
            match next {
                Some(t) => candidate = t,
                // No more breakpoints but still over budget: impossible,
                // since allocation past the last breakpoint is 0.
                None => unreachable!("profile allocation never drops to zero"),
            }
        }
    }

    /// Whether the profile has no allocations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of breakpoints (diagnostics).
    #[must_use]
    pub fn breakpoints(&self) -> usize {
        self.deltas.len()
    }
}

/// Extension used internally: treat zero durations as one tick so windows
/// stay non-empty.
trait MaxOne {
    fn max_one(self) -> SimDuration;
}

impl MaxOne for SimDuration {
    fn max_one(self) -> SimDuration {
        if self.is_zero() {
            SimDuration::TICK
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_ticks(a), SimTime::from_ticks(b)).unwrap()
    }

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    #[test]
    fn allocation_tracks_overlapping_windows() {
        let mut p = Profile::new();
        p.add(w(0, 10), 2);
        p.add(w(5, 15), 3);
        assert_eq!(p.allocation_at(t(0)), 2);
        assert_eq!(p.allocation_at(t(5)), 5);
        assert_eq!(p.allocation_at(t(10)), 3);
        assert_eq!(p.allocation_at(t(15)), 0);
        assert_eq!(p.max_allocation_in(w(0, 20)), 5);
        assert_eq!(p.max_allocation_in(w(10, 20)), 3);
    }

    #[test]
    fn remove_restores_profile() {
        let mut p = Profile::new();
        p.add(w(0, 10), 2);
        p.add(w(5, 15), 3);
        p.remove(w(5, 15), 3);
        assert_eq!(p.allocation_at(t(7)), 2);
        p.remove(w(0, 10), 2);
        assert!(p.is_empty());
    }

    #[test]
    fn earliest_fit_simple() {
        let mut p = Profile::new();
        p.add(w(0, 10), 3); // cluster of 4: only 1 node free until t10
        assert_eq!(p.earliest_fit(t(0), d(5), 1, 4), t(0));
        assert_eq!(p.earliest_fit(t(0), d(5), 2, 4), t(10));
        assert_eq!(p.earliest_fit(t(3), d(5), 1, 4), t(3));
    }

    #[test]
    fn earliest_fit_must_clear_whole_duration() {
        let mut p = Profile::new();
        p.add(w(4, 6), 4); // full blockage in the middle, capacity 4
        // A 3-tick 1-wide job starting at t0 would run into the blockage at
        // t4? No: [0,3) clears it. A 5-tick job cannot.
        assert_eq!(p.earliest_fit(t(0), d(3), 1, 4), t(0));
        assert_eq!(p.earliest_fit(t(0), d(5), 1, 4), t(6));
        // From t2, even a 2-tick job collides with [4,6).
        assert_eq!(p.earliest_fit(t(3), d(2), 1, 4), t(6));
    }

    #[test]
    fn earliest_fit_threads_between_reservations() {
        let mut p = Profile::new();
        p.add(w(0, 2), 2);
        p.add(w(6, 8), 2);
        // Capacity 2, width 2: must fit entirely inside [2, 6).
        assert_eq!(p.earliest_fit(t(0), d(4), 2, 2), t(2));
        assert_eq!(p.earliest_fit(t(0), d(5), 2, 2), t(8));
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversized_job_rejected() {
        let _ = Profile::new().earliest_fit(t(0), d(1), 5, 4);
    }

    #[test]
    fn zero_duration_treated_as_tick() {
        let mut p = Profile::new();
        p.add(w(0, 4), 1);
        assert_eq!(p.earliest_fit(t(0), SimDuration::ZERO, 1, 1), t(4));
    }

    #[test]
    fn breakpoints_are_pruned() {
        let mut p = Profile::new();
        p.add(w(0, 10), 1);
        p.add(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 2);
        p.remove(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 2);
        p.remove(w(0, 10), 1);
        assert_eq!(p.breakpoints(), 0);
    }
}
