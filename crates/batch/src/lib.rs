//! # gridsched-batch
//!
//! Local batch-job management systems for the `gridsched` reproduction of
//! Toporkov's PaCT 2009 scheduling framework.
//!
//! The paper's two-level architecture hands each task of a compound job to
//! a *local* batch system as a single job with a resource request; §5 then
//! discusses how the local queue policy (FCFS, LWF, backfilling) and
//! advance reservations affect waiting times and start-time forecasts.
//! This crate simulates exactly that:
//!
//! - [`job::BatchJob`]: rigid parallel jobs with wall-time estimates and
//!   (shorter) actual runtimes;
//! - [`profile::Profile`]: the piecewise-constant allocation profile that
//!   scheduling decisions query;
//! - [`policy::QueuePolicy`]: FCFS / LWF / EASY / conservative backfilling;
//! - [`cluster::ClusterConfig`]: the event-driven cluster simulation with
//!   advance reservations and per-job start-time forecasts.
//!
//! # Examples
//!
//! ```
//! use gridsched_batch::cluster::ClusterConfig;
//! use gridsched_batch::job::{BatchJob, BatchJobId};
//! use gridsched_batch::policy::QueuePolicy;
//! use gridsched_sim::time::{SimDuration, SimTime};
//!
//! let cluster = ClusterConfig::new(4, QueuePolicy::EasyBackfill);
//! let jobs = vec![BatchJob::new(
//!     BatchJobId(0),
//!     SimTime::ZERO,
//!     2,
//!     SimDuration::from_ticks(10),
//!     SimDuration::from_ticks(8),
//! )];
//! let outcome = cluster.run(&jobs);
//! assert_eq!(outcome.jobs()[0].wait(), SimDuration::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod gang;
pub mod job;
pub mod policy;
pub mod profile;

pub use cluster::{AdvanceReservation, BatchOutcome, ClusterConfig, JobOutcome};
pub use gang::{run_gang, GangConfig};
pub use job::{BatchJob, BatchJobId};
pub use policy::QueuePolicy;
pub use profile::Profile;
