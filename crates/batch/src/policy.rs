//! Queue management policies (§5).

use std::fmt;
use std::str::FromStr;

/// The local queue-management disciplines the paper discusses in §5:
/// FCFS (used in its experiments), least-work-first, and the two standard
/// backfilling variants (EASY as in the Maui scheduler, and conservative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// First-come-first-served: the queue head blocks everyone behind it.
    Fcfs,
    /// Least-work-first: the queued job with the smallest
    /// `width × estimate` runs next.
    Lwf,
    /// EASY backfilling: jobs may jump the queue if they do not delay the
    /// head's shadow reservation.
    EasyBackfill,
    /// Conservative backfilling: every queued job holds a reservation;
    /// jumping is allowed only if no earlier reservation moves.
    ConservativeBackfill,
}

impl QueuePolicy {
    /// All policies, in the order §5 discusses them.
    pub const ALL: [QueuePolicy; 4] = [
        QueuePolicy::Fcfs,
        QueuePolicy::Lwf,
        QueuePolicy::EasyBackfill,
        QueuePolicy::ConservativeBackfill,
    ];

    /// Short name used in report tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "FCFS",
            QueuePolicy::Lwf => "LWF",
            QueuePolicy::EasyBackfill => "EASY",
            QueuePolicy::ConservativeBackfill => "CONS",
        }
    }
}

impl fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`QueuePolicy`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown queue policy {:?} (expected FCFS, LWF, EASY or CONS)",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for QueuePolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "FCFS" => Ok(QueuePolicy::Fcfs),
            "LWF" => Ok(QueuePolicy::Lwf),
            "EASY" => Ok(QueuePolicy::EasyBackfill),
            "CONS" | "CONSERVATIVE" => Ok(QueuePolicy::ConservativeBackfill),
            _ => Err(ParsePolicyError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in QueuePolicy::ALL {
            assert_eq!(p.name().parse::<QueuePolicy>().unwrap(), p);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("fcfs".parse::<QueuePolicy>().unwrap(), QueuePolicy::Fcfs);
        assert_eq!(
            "conservative".parse::<QueuePolicy>().unwrap(),
            QueuePolicy::ConservativeBackfill
        );
    }

    #[test]
    fn parse_error_is_descriptive() {
        let err = "SJF".parse::<QueuePolicy>().unwrap_err();
        assert!(err.to_string().contains("SJF"));
    }
}
