//! Gang scheduling (§5).
//!
//! The paper lists gang scheduling among the local queue-management models
//! worth studying. We implement the classic Ousterhout-matrix form: jobs
//! are packed into *rows* (sets of jobs whose widths fit the cluster
//! side by side); rows take turns running for one time quantum each, so
//! every job makes progress concurrently instead of waiting in a queue.
//!
//! Gang scheduling time-shares rather than space-shares, so it is driven
//! by a dedicated simulator ([`run_gang`]) instead of the allocation
//! profile the space-sharing policies use.

use std::collections::VecDeque;

use gridsched_sim::time::{SimDuration, SimTime};

use crate::cluster::JobOutcome;
use crate::job::BatchJob;

/// Configuration of the gang scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GangConfig {
    /// Number of identical nodes.
    pub capacity: u32,
    /// Length of one scheduling quantum, in ticks.
    pub quantum: SimDuration,
}

impl GangConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `quantum` is zero.
    #[must_use]
    pub fn new(capacity: u32, quantum: SimDuration) -> Self {
        assert!(capacity > 0, "gang capacity must be positive");
        assert!(!quantum.is_zero(), "gang quantum must be positive");
        GangConfig { capacity, quantum }
    }
}

#[derive(Debug)]
struct Row {
    members: Vec<usize>,
    used: u32,
}

/// Runs `jobs` under gang scheduling; returns per-job outcomes in arrival
/// order.
///
/// Jobs join the first row with spare width (first-fit); a new row opens
/// when none fits. Rows rotate round-robin, one quantum at a time. A job's
/// *actual* runtime is its required service time; it completes once it has
/// accumulated that much quantum time. The start-time forecast made at
/// arrival is the beginning of its row's next turn, assuming the row set
/// stays as it is.
///
/// # Panics
///
/// Panics if any job is wider than the cluster.
#[must_use]
pub fn run_gang(config: GangConfig, jobs: &[BatchJob]) -> Vec<JobOutcome> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].arrival(), jobs[i].id()));
    for j in jobs {
        assert!(
            j.width() <= config.capacity,
            "job {} width {} exceeds capacity {}",
            j.id(),
            j.width(),
            config.capacity
        );
    }

    let q = config.quantum;
    let mut rows: VecDeque<Row> = VecDeque::new();
    let mut remaining: Vec<SimDuration> = jobs.iter().map(BatchJob::actual).collect();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    let mut next_arrival = 0usize;
    let mut now = SimTime::ZERO;
    let mut done = 0usize;

    while done < jobs.len() {
        // Admit everything that has arrived by now.
        while next_arrival < order.len() && jobs[order[next_arrival]].arrival() <= now {
            let idx = order[next_arrival];
            next_arrival += 1;
            let width = jobs[idx].width();
            let row_pos = rows.iter().position(|r| r.used + width <= config.capacity);
            let row_pos = match row_pos {
                Some(p) => {
                    rows[p].members.push(idx);
                    rows[p].used += width;
                    p
                }
                None => {
                    rows.push_back(Row {
                        members: vec![idx],
                        used: width,
                    });
                    rows.len() - 1
                }
            };
            // Forecast: the row at position `row_pos` runs after `row_pos`
            // more quanta from now (rows rotate from the front).
            let predicted = now + q.saturating_mul(row_pos as u64);
            outcomes[idx] = Some(JobOutcome {
                id: jobs[idx].id(),
                arrival: jobs[idx].arrival(),
                predicted_start: predicted,
                start: SimTime::MAX,
                end: SimTime::MAX,
            });
        }

        let Some(mut row) = rows.pop_front() else {
            // Idle: jump to the next arrival, keeping the quantum grid.
            match order.get(next_arrival) {
                Some(&idx) => {
                    now = now.max_of(jobs[idx].arrival());
                    continue;
                }
                None => break,
            }
        };

        // The front row runs for one quantum.
        let mut still_running = Vec::with_capacity(row.members.len());
        for &idx in &row.members {
            let o = outcomes[idx].as_mut().expect("admitted job has an outcome");
            if o.start == SimTime::MAX {
                o.start = now;
            }
            if remaining[idx] > q {
                remaining[idx] = remaining[idx] - q;
                still_running.push(idx);
            } else {
                o.end = now + remaining[idx];
                remaining[idx] = SimDuration::ZERO;
                row.used -= jobs[idx].width();
                done += 1;
            }
        }
        row.members = still_running;
        now += q;
        if !row.members.is_empty() {
            rows.push_back(row);
        }
    }

    let mut result: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job completed"))
        .collect();
    result.sort_by_key(|o| (o.arrival, o.id));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::BatchJobId;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    fn job(id: u64, arrival: u64, width: u32, runtime: u64) -> BatchJob {
        BatchJob::new(BatchJobId(id), t(arrival), width, d(runtime), d(runtime))
    }

    fn outcome(out: &[JobOutcome], id: u64) -> JobOutcome {
        *out.iter()
            .find(|o| o.id == BatchJobId(id))
            .expect("job present")
    }

    #[test]
    fn single_job_runs_contiguously() {
        let out = run_gang(GangConfig::new(4, d(5)), &[job(0, 0, 2, 12)]);
        let o = outcome(&out, 0);
        assert_eq!(o.start, t(0));
        assert_eq!(o.end, t(12));
        assert_eq!(o.predicted_start, t(0));
    }

    #[test]
    fn fitting_jobs_share_a_row_and_run_concurrently() {
        let out = run_gang(
            GangConfig::new(4, d(5)),
            &[job(0, 0, 2, 10), job(1, 0, 2, 10)],
        );
        assert_eq!(outcome(&out, 0).start, t(0));
        assert_eq!(outcome(&out, 1).start, t(0));
        assert_eq!(outcome(&out, 0).end, t(10));
        assert_eq!(outcome(&out, 1).end, t(10));
    }

    #[test]
    fn oversized_pair_time_slices() {
        // Two width-3 jobs on 4 nodes: two rows alternate, each job gets
        // every other quantum.
        let out = run_gang(
            GangConfig::new(4, d(5)),
            &[job(0, 0, 3, 10), job(1, 0, 3, 10)],
        );
        let a = outcome(&out, 0);
        let b = outcome(&out, 1);
        assert_eq!(a.start, t(0));
        assert_eq!(b.start, t(5), "second row starts one quantum later");
        // Each needs 10 ticks of service over alternating quanta:
        // a runs [0,5) and [10,15) -> ends 15; b runs [5,10) and [15,20).
        assert_eq!(a.end, t(15));
        assert_eq!(b.end, t(20));
    }

    #[test]
    fn time_slicing_bounds_worst_case_latency() {
        // Unlike FCFS, a short job never waits for a long one to finish:
        // it gets a quantum within (rows-1) quanta.
        let jobs = [job(0, 0, 4, 100), job(1, 1, 1, 5)];
        let out = run_gang(GangConfig::new(4, d(5)), &jobs);
        let short = outcome(&out, 1);
        assert!(
            short.start <= t(10),
            "short job started at {} despite time-slicing",
            short.start
        );
        assert!(short.end < t(30));
    }

    #[test]
    fn row_width_never_exceeds_capacity() {
        let jobs: Vec<BatchJob> = (0..12)
            .map(|i| job(i, i % 5, 1 + (i % 4) as u32, 6 + i % 7))
            .collect();
        let out = run_gang(GangConfig::new(4, d(3)), &jobs);
        // Reconstruct concurrency at quantum boundaries from outcomes:
        // jobs that share a running interval must fit the capacity only if
        // they are in the same row — which we can't see from outside; what
        // we can check is completion and sane times.
        assert_eq!(out.len(), jobs.len());
        for o in &out {
            assert!(o.start >= o.arrival);
            assert!(o.end > o.start);
        }
    }

    #[test]
    fn total_service_time_is_preserved() {
        let jobs = [job(0, 0, 2, 7), job(1, 0, 2, 9)];
        let out = run_gang(GangConfig::new(2, d(4)), &jobs);
        // Width-2 jobs on 2 nodes never share a row; they alternate.
        // j0: [0,4) + [8,11) = 7 service; j1: [4,8) + [11..) hmm — row
        // rotation after a member finishes mid-quantum keeps the grid, so
        // j1 finishes after two more turns.
        let a = outcome(&out, 0);
        let b = outcome(&out, 1);
        assert!(a.end > a.start && b.end > b.start);
        assert!(b.end.ticks() >= 7 + 9, "total service preserved");
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn too_wide_job_rejected() {
        let _ = run_gang(GangConfig::new(2, d(5)), &[job(0, 0, 3, 5)]);
    }
}
