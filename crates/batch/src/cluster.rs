//! Event-driven simulation of one local batch-job management system.
//!
//! A cluster of `capacity` identical nodes runs rigid parallel jobs under a
//! selectable queue policy (§5 of the paper: FCFS, LWF, backfilling), with
//! optional advance reservations blocking node-time ahead of the queue.
//!
//! Jobs are planned with their wall-time *estimates* but complete after
//! their *actual* runtimes, so early completions open backfill holes and
//! make start-time forecasts err — exactly the effects §5 discusses.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gridsched_metrics::telemetry::{Counter, Telemetry};
use gridsched_sim::time::{SimDuration, SimTime};

use gridsched_model::window::TimeWindow;

use crate::job::{BatchJob, BatchJobId};
use crate::policy::QueuePolicy;
use crate::profile::{Profile, ProfileOverlay};

/// An advance reservation blocking `width` nodes over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvanceReservation {
    /// The blocked window.
    pub window: TimeWindow,
    /// Number of nodes blocked.
    pub width: u32,
}

/// Configuration of a local batch system.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    capacity: u32,
    policy: QueuePolicy,
    reservations: Vec<AdvanceReservation>,
    telemetry: Telemetry,
}

impl ClusterConfig {
    /// Creates a cluster of `capacity` nodes under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: u32, policy: QueuePolicy) -> Self {
        assert!(capacity > 0, "cluster capacity must be positive");
        ClusterConfig {
            capacity,
            policy,
            reservations: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry recorder: runs count backfill shadow hits,
    /// conservative trial reservations, profile what-if overlays and
    /// start-time forecasts, and each [`ClusterConfig::run`] executes
    /// under a `batch_run` span. Outcomes are bit-identical to an
    /// uninstrumented run.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Adds an advance reservation.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is wider than the cluster.
    pub fn reserve(&mut self, reservation: AdvanceReservation) -> &mut Self {
        assert!(
            reservation.width <= self.capacity,
            "reservation width {} exceeds capacity {}",
            reservation.width,
            self.capacity
        );
        self.reservations.push(reservation);
        self
    }

    /// The node count.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The queue policy.
    #[must_use]
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// The advance reservations.
    #[must_use]
    pub fn reservations(&self) -> &[AdvanceReservation] {
        &self.reservations
    }

    /// Runs the given jobs through this cluster.
    ///
    /// Jobs may be passed in any order; they are processed by arrival time
    /// (ties by id).
    ///
    /// # Panics
    ///
    /// Panics if any job is wider than the cluster.
    #[must_use]
    pub fn run(&self, jobs: &[BatchJob]) -> BatchOutcome {
        let _span = self.telemetry.span("batch_run");
        Simulation::new(self, jobs).run()
    }
}

/// Per-job result of a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's id.
    pub id: BatchJobId,
    /// Submission time.
    pub arrival: SimTime,
    /// Start time the scheduler forecast at submission (estimates taken at
    /// face value, no future arrivals).
    pub predicted_start: SimTime,
    /// Actual start time.
    pub start: SimTime,
    /// Actual completion time.
    pub end: SimTime,
}

impl JobOutcome {
    /// Queue waiting time.
    #[must_use]
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.arrival)
    }

    /// Absolute start-time forecast error (§5: "estimation error for
    /// starting time forecast").
    #[must_use]
    pub fn forecast_error(&self) -> SimDuration {
        if self.start >= self.predicted_start {
            self.start.since(self.predicted_start)
        } else {
            self.predicted_start.since(self.start)
        }
    }
}

/// Result of one cluster run.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    outcomes: Vec<JobOutcome>,
    capacity: u32,
    policy: QueuePolicy,
}

impl BatchOutcome {
    /// Per-job outcomes, in arrival order.
    #[must_use]
    pub fn jobs(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// The policy that produced this outcome.
    #[must_use]
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// The cluster capacity.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Mean queue waiting time in ticks (0.0 when empty).
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let total: u64 = self.outcomes.iter().map(|o| o.wait().ticks()).sum();
        total as f64 / self.outcomes.len() as f64
    }

    /// Mean absolute start-time forecast error in ticks.
    #[must_use]
    pub fn mean_forecast_error(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .outcomes
            .iter()
            .map(|o| o.forecast_error().ticks())
            .sum();
        total as f64 / self.outcomes.len() as f64
    }

    /// Completion time of the last job (`t0` when empty).
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.outcomes
            .iter()
            .map(|o| o.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// The running state of one simulation.
struct Simulation<'a> {
    config: &'a ClusterConfig,
    jobs: Vec<BatchJob>,
    /// Indices into `jobs`, queued, in arrival order.
    queue: Vec<usize>,
    /// Future-allocation profile: reservations + running jobs at estimates.
    profile: Profile,
    /// Completion heap: (actual end, job index, reserved window).
    completions: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Wake-up times at advance-reservation ends, when capacity reappears
    /// without any job completing.
    wakes: BinaryHeap<Reverse<SimTime>>,
    /// Reserved window per running job (for release on completion).
    reserved: Vec<Option<TimeWindow>>,
    outcomes: Vec<Option<JobOutcome>>,
}

impl<'a> Simulation<'a> {
    fn new(config: &'a ClusterConfig, jobs: &[BatchJob]) -> Self {
        let mut jobs: Vec<BatchJob> = jobs.to_vec();
        jobs.sort_by_key(|j| (j.arrival(), j.id()));
        for j in &jobs {
            assert!(
                j.width() <= config.capacity,
                "job {} width {} exceeds capacity {}",
                j.id(),
                j.width(),
                config.capacity
            );
        }
        let mut profile = Profile::new();
        let mut wakes = BinaryHeap::new();
        for r in &config.reservations {
            profile.add(r.window, r.width);
            wakes.push(Reverse(r.window.end()));
        }
        let n = jobs.len();
        Simulation {
            config,
            jobs,
            queue: Vec::new(),
            profile,
            completions: BinaryHeap::new(),
            wakes,
            reserved: vec![None; n],
            outcomes: vec![None; n],
        }
    }

    fn run(mut self) -> BatchOutcome {
        let mut next_arrival = 0usize;
        loop {
            let arrival_time = self.jobs.get(next_arrival).map(BatchJob::arrival);
            let completion_time = self.completions.peek().map(|Reverse((t, _))| *t);
            // Reservation-end wake-ups only matter while work is pending.
            let wake_time = if self.queue.is_empty() && arrival_time.is_none() {
                None
            } else {
                self.wakes.peek().map(|Reverse(t)| *t)
            };
            let now = match [arrival_time, completion_time, wake_time]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) => t,
                None => break,
            };
            while let Some(&Reverse(t)) = self.wakes.peek() {
                if t > now {
                    break;
                }
                self.wakes.pop();
            }
            // Completions first: capacity freed at `now` is usable by jobs
            // arriving at `now`.
            while let Some(&Reverse((t, idx))) = self.completions.peek() {
                if t > now {
                    break;
                }
                self.completions.pop();
                let window = self.reserved[idx]
                    .take()
                    .expect("completed job had a window");
                self.profile.remove(window, self.jobs[idx].width());
                // Re-add the truly used part so past allocation stays
                // consistent for diagnostics (never queried for decisions).
                let used = TimeWindow::new(window.start(), t).expect("non-empty used window");
                self.profile.add(used, self.jobs[idx].width());
            }
            while next_arrival < self.jobs.len() && self.jobs[next_arrival].arrival() == now {
                let idx = next_arrival;
                next_arrival += 1;
                let predicted = self.predict_start(idx, now);
                self.outcomes[idx] = Some(JobOutcome {
                    id: self.jobs[idx].id(),
                    arrival: now,
                    predicted_start: predicted,
                    start: SimTime::MAX,
                    end: SimTime::MAX,
                });
                self.queue.push(idx);
            }
            self.schedule_pass(now);
        }
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .into_iter()
            .map(|o| o.expect("every job completed"))
            .collect();
        BatchOutcome {
            outcomes,
            capacity: self.config.capacity,
            policy: self.config.policy,
        }
    }

    /// Whether starting `idx` at `now` keeps the profile within capacity
    /// for the job's whole estimated duration.
    fn fits_now(&self, idx: usize, now: SimTime) -> bool {
        let j = &self.jobs[idx];
        let window = TimeWindow::starting_at(now, j.estimate()).expect("non-empty window");
        self.profile.max_allocation_in(window) + j.width() <= self.config.capacity
    }

    fn start_job(&mut self, idx: usize, now: SimTime) {
        let j = self.jobs[idx];
        let window = TimeWindow::starting_at(now, j.estimate()).expect("non-empty window");
        debug_assert!(
            self.profile.max_allocation_in(window) + j.width() <= self.config.capacity,
            "oversubscription starting {}",
            j.id()
        );
        self.profile.add(window, j.width());
        self.reserved[idx] = Some(window);
        let end = now + j.actual();
        self.completions.push(Reverse((end, idx)));
        let o = self.outcomes[idx].as_mut().expect("outcome exists");
        o.start = now;
        o.end = end;
        let pos = self
            .queue
            .iter()
            .position(|&q| q == idx)
            .expect("started job was queued");
        self.queue.remove(pos);
    }

    /// Starts every job the policy allows at `now`.
    fn schedule_pass(&mut self, now: SimTime) {
        match self.config.policy {
            QueuePolicy::Fcfs => {
                self.pass_ordered(now, |jobs, q| {
                    q.sort_by_key(|&i| (jobs[i].arrival(), jobs[i].id()));
                });
            }
            QueuePolicy::Lwf => {
                self.pass_ordered(now, |jobs, q| {
                    q.sort_by_key(|&i| (jobs[i].estimated_work(), jobs[i].arrival(), jobs[i].id()));
                });
            }
            QueuePolicy::EasyBackfill => self.pass_easy(now),
            QueuePolicy::ConservativeBackfill => self.pass_conservative(now),
        }
    }

    /// Head-of-line scheduling under a caller-supplied queue order: start
    /// the first job while it fits; the head blocks everyone behind it.
    fn pass_ordered(
        &mut self,
        now: SimTime,
        order: impl Fn(&[BatchJob], &mut Vec<usize>),
    ) -> usize {
        let mut started = 0;
        loop {
            let mut q = self.queue.clone();
            order(&self.jobs, &mut q);
            match q.first() {
                Some(&head) if self.fits_now(head, now) => {
                    self.start_job(head, now);
                    started += 1;
                }
                _ => return started,
            }
        }
    }

    /// EASY backfilling: start FCFS-fitting jobs, then give the blocked head
    /// a shadow reservation at its earliest start and let any later job that
    /// still fits (with the shadow in place) jump the queue.
    fn pass_easy(&mut self, now: SimTime) {
        self.pass_ordered(now, |jobs, q| {
            q.sort_by_key(|&i| (jobs[i].arrival(), jobs[i].id()));
        });
        let Some(&head) = self.queue.first() else {
            return;
        };
        // Shadow-reserve the head at its earliest possible start.
        let head_job = self.jobs[head];
        let shadow_start = self.profile.earliest_fit(
            now,
            head_job.estimate(),
            head_job.width(),
            self.config.capacity,
        );
        let shadow = TimeWindow::starting_at(shadow_start, head_job.estimate())
            .expect("non-empty shadow window");
        // Backfill pass over the rest of the queue, in arrival order. The
        // shadow lives in a what-if overlay (rebuilt per iteration over the
        // committed profile, so earlier backfill starts stay visible)
        // instead of being added to and removed from the real profile.
        loop {
            let candidate = {
                let mut shadowed =
                    ProfileOverlay::instrumented(&self.profile, &self.config.telemetry);
                shadowed.add(shadow, head_job.width());
                self.queue[1..].iter().copied().find(|&i| {
                    let j = &self.jobs[i];
                    let window =
                        TimeWindow::starting_at(now, j.estimate()).expect("non-empty window");
                    shadowed.max_allocation_in(window) + j.width() <= self.config.capacity
                })
            };
            match candidate {
                Some(i) => {
                    // A job jumped the queue under the head's shadow.
                    self.config.telemetry.incr(Counter::BackfillShadowHits);
                    self.start_job(i, now);
                }
                None => break,
            }
        }
    }

    /// Conservative backfilling: every queued job holds a reservation; a job
    /// starts when its reservation is due now. Rebuilt every pass
    /// ("compression"), so early completions pull reservations forward.
    fn pass_conservative(&mut self, now: SimTime) {
        loop {
            let mut to_start: Option<usize> = None;
            {
                // Trial reservations go into a what-if overlay and are
                // simply dropped with it — no removal bookkeeping against
                // the real profile.
                let mut trial = ProfileOverlay::instrumented(&self.profile, &self.config.telemetry);
                for &i in &self.queue {
                    let j = self.jobs[i];
                    let s = trial.earliest_fit(now, j.estimate(), j.width(), self.config.capacity);
                    if s == now {
                        to_start = Some(i);
                        break;
                    }
                    let w = TimeWindow::starting_at(s, j.estimate()).expect("non-empty window");
                    self.config.telemetry.incr(Counter::ConservativeTrials);
                    trial.add(w, j.width());
                }
            }
            match to_start {
                Some(i) => self.start_job(i, now),
                None => break,
            }
        }
    }

    /// Forecasts the start time of a newly arrived job: reserve every job
    /// ahead of it (in policy order) against a copy of the current profile,
    /// then take the job's earliest fit. Estimates are taken at face value
    /// and future arrivals are unknown — both assumptions §5 identifies as
    /// forecast error sources.
    fn predict_start(&self, idx: usize, now: SimTime) -> SimTime {
        self.config.telemetry.incr(Counter::StartPredictions);
        // What-if forecast over the live profile: a copy-on-write overlay
        // instead of cloning the whole breakpoint map.
        let mut profile = ProfileOverlay::instrumented(&self.profile, &self.config.telemetry);
        let mut ahead = self.queue.clone();
        // Head-of-line policies additionally start jobs in queue order, so
        // a queued job can never start before the one ahead of it.
        let head_of_line = matches!(self.config.policy, QueuePolicy::Fcfs | QueuePolicy::Lwf);
        match self.config.policy {
            QueuePolicy::Fcfs | QueuePolicy::EasyBackfill | QueuePolicy::ConservativeBackfill => {
                ahead.sort_by_key(|&i| (self.jobs[i].arrival(), self.jobs[i].id()));
            }
            QueuePolicy::Lwf => {
                // Under LWF, only queued jobs with less work go ahead.
                ahead.retain(|&i| self.jobs[i].estimated_work() <= self.jobs[idx].estimated_work());
                ahead.sort_by_key(|&i| {
                    (
                        self.jobs[i].estimated_work(),
                        self.jobs[i].arrival(),
                        self.jobs[i].id(),
                    )
                });
            }
        }
        let mut prev_start = now;
        for &i in &ahead {
            let j = self.jobs[i];
            let mut s =
                profile.earliest_fit(prev_start, j.estimate(), j.width(), self.config.capacity);
            if !head_of_line {
                s = profile.earliest_fit(now, j.estimate(), j.width(), self.config.capacity);
            }
            let w = TimeWindow::starting_at(s, j.estimate()).expect("non-empty window");
            profile.add(w, j.width());
            if head_of_line {
                prev_start = s;
            }
        }
        let j = self.jobs[idx];
        let from = if head_of_line { prev_start } else { now };
        profile.earliest_fit(from, j.estimate(), j.width(), self.config.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    fn job(id: u64, arrival: u64, width: u32, est: u64, act: u64) -> BatchJob {
        BatchJob::new(BatchJobId(id), t(arrival), width, d(est), d(act))
    }

    fn outcome_of(out: &BatchOutcome, id: u64) -> JobOutcome {
        *out.jobs()
            .iter()
            .find(|o| o.id == BatchJobId(id))
            .expect("job in outcome")
    }

    #[test]
    fn single_job_starts_immediately() {
        let cfg = ClusterConfig::new(2, QueuePolicy::Fcfs);
        let out = cfg.run(&[job(0, 3, 1, 5, 4)]);
        let o = outcome_of(&out, 0);
        assert_eq!(o.start, t(3));
        assert_eq!(o.end, t(7));
        assert_eq!(o.wait(), SimDuration::ZERO);
        assert_eq!(o.predicted_start, t(3));
    }

    #[test]
    fn fcfs_head_blocks_backfillable_job() {
        // Capacity 2. j0 takes both nodes for 10. j1 (width 2) queues.
        // j2 (width 1, short) arrives later: FCFS keeps it behind j1.
        let cfg = ClusterConfig::new(2, QueuePolicy::Fcfs);
        let out = cfg.run(&[
            job(0, 0, 2, 10, 10),
            job(1, 1, 2, 10, 10),
            job(2, 2, 1, 2, 2),
        ]);
        assert_eq!(outcome_of(&out, 1).start, t(10));
        assert_eq!(outcome_of(&out, 2).start, t(20), "FCFS must not backfill");
    }

    #[test]
    fn easy_with_no_hole_behaves_like_fcfs() {
        // Capacity 2, fully occupied until t10; the head needs both nodes,
        // so there is no hole and nothing may backfill.
        let jobs = [
            job(0, 0, 2, 10, 10),
            job(1, 1, 2, 10, 10),
            job(2, 2, 1, 2, 2),
        ];
        let out = ClusterConfig::new(2, QueuePolicy::EasyBackfill).run(&jobs);
        assert_eq!(outcome_of(&out, 1).start, t(10), "head not delayed");
        assert_eq!(outcome_of(&out, 2).start, t(20));
        assert_capacity_respected(&out, &jobs, 2);
    }

    #[test]
    fn easy_backfills_into_side_hole() {
        // Capacity 3: j0 uses 2 nodes for 10; j1 needs 3 (blocked);
        // j2 (width 1, runtime ≤ wait) backfills on the free node.
        let cfg = ClusterConfig::new(3, QueuePolicy::EasyBackfill);
        let jobs = [job(0, 0, 2, 10, 10), job(1, 1, 3, 5, 5), job(2, 2, 1, 8, 8)];
        let out = cfg.run(&jobs);
        assert_eq!(outcome_of(&out, 2).start, t(2), "side hole backfill");
        assert_eq!(outcome_of(&out, 1).start, t(10), "head start unchanged");
        assert_capacity_respected(&out, &jobs, 3);
    }

    #[test]
    fn easy_rejects_backfill_that_would_delay_head() {
        // Capacity 3: j0 uses 2 for 10. Head j1 needs 3 from t10.
        // j2 (width 2) fits "now" by raw capacity (1 free)? No - width 2
        // doesn't fit anyway. Use width 1 but long: the shadow at t10 takes
        // all 3 nodes, so a 1-wide job with estimate crossing t10 must wait.
        let cfg = ClusterConfig::new(3, QueuePolicy::EasyBackfill);
        let jobs = [
            job(0, 0, 2, 10, 10),
            job(1, 1, 3, 5, 5),
            job(2, 2, 1, 9, 9), // would end at t11 > shadow start
        ];
        let out = cfg.run(&jobs);
        assert!(
            outcome_of(&out, 2).start >= t(10),
            "long job must not delay the head"
        );
        assert_capacity_respected(&out, &jobs, 3);
    }

    #[test]
    fn lwf_orders_by_least_work() {
        // Both queued behind j0; LWF runs the small one first even though
        // it arrived later.
        let cfg = ClusterConfig::new(1, QueuePolicy::Lwf);
        let jobs = [job(0, 0, 1, 10, 10), job(1, 1, 1, 8, 8), job(2, 2, 1, 2, 2)];
        let out = cfg.run(&jobs);
        assert_eq!(outcome_of(&out, 2).start, t(10));
        assert_eq!(outcome_of(&out, 1).start, t(12));
    }

    #[test]
    fn conservative_backfill_compresses_on_early_completion() {
        // j0 estimates 10 but actually runs 4; the queued j1's reservation
        // (made at t10 by estimate) is pulled forward to t4.
        let cfg = ClusterConfig::new(1, QueuePolicy::ConservativeBackfill);
        let jobs = [job(0, 0, 1, 10, 4), job(1, 1, 1, 3, 3)];
        let out = cfg.run(&jobs);
        assert_eq!(outcome_of(&out, 1).start, t(4));
    }

    #[test]
    fn conservative_never_delays_earlier_reservations() {
        // Capacity 2: j0 takes both for 10 (est). j1 (w2) reserves [10,20).
        // j2 (w1 est 12) would overlap j1's reservation if started now —
        // conservative places it at its earliest non-disturbing slot.
        let cfg = ClusterConfig::new(2, QueuePolicy::ConservativeBackfill);
        let jobs = [
            job(0, 0, 2, 10, 10),
            job(1, 1, 2, 10, 10),
            job(2, 2, 1, 12, 12),
        ];
        let out = cfg.run(&jobs);
        assert_eq!(outcome_of(&out, 1).start, t(10), "earlier reservation kept");
        assert_eq!(outcome_of(&out, 2).start, t(20));
        assert_capacity_respected(&out, &jobs, 2);
    }

    #[test]
    fn advance_reservation_blocks_jobs() {
        let mut cfg = ClusterConfig::new(1, QueuePolicy::Fcfs);
        cfg.reserve(AdvanceReservation {
            window: TimeWindow::new(t(2), t(6)).unwrap(),
            width: 1,
        });
        // A 4-tick job arriving at t0 cannot finish before the reservation
        // (would need [0,4) ∩ [2,6) free) and must wait until t6.
        let out = cfg.run(&[job(0, 0, 1, 4, 4)]);
        assert_eq!(outcome_of(&out, 0).start, t(6));
        // A 2-tick job slides in before the reservation.
        let out2 = cfg.run(&[job(0, 0, 1, 2, 2)]);
        assert_eq!(outcome_of(&out2, 0).start, t(0));
    }

    #[test]
    fn forecast_is_exact_when_estimates_are_exact() {
        let cfg = ClusterConfig::new(1, QueuePolicy::Fcfs);
        let jobs = [job(0, 0, 1, 5, 5), job(1, 1, 1, 5, 5), job(2, 2, 1, 5, 5)];
        let out = cfg.run(&jobs);
        for o in out.jobs() {
            assert_eq!(o.forecast_error(), SimDuration::ZERO, "{o:?}");
        }
        assert_eq!(out.mean_forecast_error(), 0.0);
    }

    #[test]
    fn forecast_errs_when_jobs_finish_early() {
        let cfg = ClusterConfig::new(1, QueuePolicy::Fcfs);
        let jobs = [job(0, 0, 1, 10, 4), job(1, 1, 1, 5, 5)];
        let out = cfg.run(&jobs);
        let o = outcome_of(&out, 1);
        assert_eq!(o.predicted_start, t(10));
        assert_eq!(o.start, t(4));
        assert_eq!(o.forecast_error(), d(6));
    }

    #[test]
    fn outcome_statistics() {
        let cfg = ClusterConfig::new(1, QueuePolicy::Fcfs);
        let jobs = [job(0, 0, 1, 4, 4), job(1, 0, 1, 4, 4)];
        let out = cfg.run(&jobs);
        assert_eq!(out.mean_wait(), 2.0); // waits 0 and 4
        assert_eq!(out.makespan(), t(8));
        assert_eq!(out.capacity(), 1);
    }

    #[test]
    fn instrumented_run_is_behavior_neutral_and_counts_events() {
        let jobs = [job(0, 0, 2, 10, 10), job(1, 1, 3, 5, 5), job(2, 2, 1, 8, 8)];
        let plain = ClusterConfig::new(3, QueuePolicy::EasyBackfill).run(&jobs);
        let telemetry = Telemetry::new();
        let instrumented = ClusterConfig::new(3, QueuePolicy::EasyBackfill)
            .with_telemetry(&telemetry)
            .run(&jobs);
        assert_eq!(plain.jobs(), instrumented.jobs());
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("start_predictions"),
            jobs.len() as u64,
            "one forecast per arrival"
        );
        assert!(snap.counter("backfill_shadow_hits") >= 1, "j2 backfills");
        assert!(snap.counter("profile_overlays") >= jobs.len() as u64);
        assert!(snap.phases().contains(&"batch_run"));

        // Conservative backfilling places trial reservations.
        let telemetry = Telemetry::new();
        let _ = ClusterConfig::new(1, QueuePolicy::ConservativeBackfill)
            .with_telemetry(&telemetry)
            .run(&[job(0, 0, 1, 10, 4), job(1, 1, 1, 3, 3)]);
        assert!(telemetry.snapshot().counter("conservative_trials") >= 1);
    }

    /// Recomputes real usage from outcomes and asserts the capacity
    /// invariant at every breakpoint.
    fn assert_capacity_respected(out: &BatchOutcome, jobs: &[BatchJob], capacity: u32) {
        let widths: std::collections::HashMap<BatchJobId, u32> =
            jobs.iter().map(|j| (j.id(), j.width())).collect();
        let mut points: Vec<SimTime> = out.jobs().iter().flat_map(|o| [o.start, o.end]).collect();
        points.sort_unstable();
        points.dedup();
        for &p in &points {
            let used: u32 = out
                .jobs()
                .iter()
                .filter(|o| o.start <= p && p < o.end)
                .map(|o| widths[&o.id])
                .sum();
            assert!(
                used <= capacity,
                "capacity exceeded at {p}: {used} > {capacity}"
            );
        }
    }
}
