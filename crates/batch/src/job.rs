//! Jobs as a local batch system sees them.

use std::fmt;

use gridsched_sim::time::{SimDuration, SimTime};

/// Identifier of a job inside one local batch system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchJobId(pub u64);

impl fmt::Display for BatchJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A rigid parallel job submitted to a local batch system: `width` nodes for
/// up to `estimate` ticks, actually running for `actual` ticks.
///
/// At the application level each task of a compound job arrives here as a
/// width-1 batch job ("the local management system interprets it as a job
/// accompanied by a resource request", §1); wider jobs model the independent
/// local workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJob {
    id: BatchJobId,
    arrival: SimTime,
    width: u32,
    estimate: SimDuration,
    actual: SimDuration,
}

impl BatchJob {
    /// Creates a batch job.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `estimate` is zero, `actual` is zero, or
    /// `actual > estimate` (batch systems kill jobs at their wall limit, so
    /// an actual runtime above the estimate cannot be observed).
    #[must_use]
    pub fn new(
        id: BatchJobId,
        arrival: SimTime,
        width: u32,
        estimate: SimDuration,
        actual: SimDuration,
    ) -> Self {
        assert!(width > 0, "batch job width must be positive");
        assert!(!estimate.is_zero(), "batch job estimate must be positive");
        assert!(
            !actual.is_zero(),
            "batch job actual runtime must be positive"
        );
        assert!(
            actual <= estimate,
            "actual runtime {actual} exceeds wall-time estimate {estimate}"
        );
        BatchJob {
            id,
            arrival,
            width,
            estimate,
            actual,
        }
    }

    /// The job's id.
    #[must_use]
    pub fn id(&self) -> BatchJobId {
        self.id
    }

    /// Submission time.
    #[must_use]
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Number of nodes required simultaneously.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// User wall-time estimate (what the scheduler plans with).
    #[must_use]
    pub fn estimate(&self) -> SimDuration {
        self.estimate
    }

    /// Real runtime (what actually happens).
    #[must_use]
    pub fn actual(&self) -> SimDuration {
        self.actual
    }

    /// The job's work under its estimate (`width × estimate`), the key LWF
    /// orders by.
    #[must_use]
    pub fn estimated_work(&self) -> u64 {
        u64::from(self.width) * self.estimate.ticks()
    }
}

impl fmt::Display for BatchJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[w{} est {} act {} @{}]",
            self.id, self.width, self.estimate, self.actual, self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    #[test]
    fn construction_and_work() {
        let j = BatchJob::new(BatchJobId(1), t(5), 2, d(10), d(7));
        assert_eq!(j.width(), 2);
        assert_eq!(j.estimated_work(), 20);
        assert_eq!(j.actual(), d(7));
    }

    #[test]
    #[should_panic(expected = "exceeds wall-time estimate")]
    fn actual_above_estimate_rejected() {
        let _ = BatchJob::new(BatchJobId(1), t(0), 1, d(5), d(6));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = BatchJob::new(BatchJobId(1), t(0), 0, d(5), d(5));
    }

    #[test]
    fn display_is_informative() {
        let j = BatchJob::new(BatchJobId(2), t(1), 3, d(4), d(2));
        let s = j.to_string();
        assert!(s.contains("b2") && s.contains("w3"), "{s}");
    }
}
