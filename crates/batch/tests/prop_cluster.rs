//! Property tests: local batch-system invariants on random workloads.

use gridsched_batch::cluster::{AdvanceReservation, ClusterConfig};
use gridsched_batch::job::{BatchJob, BatchJobId};
use gridsched_batch::policy::QueuePolicy;
use gridsched_model::window::TimeWindow;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::time::{SimDuration, SimTime};

const CAPACITY: u32 = 4;

fn gen_jobs(g: &mut Gen) -> Vec<BatchJob> {
    g.vec_of(1, 24, |g| {
        (
            g.u64_in(0, 79),
            g.u64_in(1, u64::from(CAPACITY)) as u32,
            g.u64_in(1, 11),
            g.u64_in(1, 11),
        )
    })
    .into_iter()
    .enumerate()
    .map(|(i, (arrival, width, estimate, actual_raw))| {
        let actual = actual_raw.min(estimate);
        BatchJob::new(
            BatchJobId(i as u64),
            SimTime::from_ticks(arrival),
            width,
            SimDuration::from_ticks(estimate),
            SimDuration::from_ticks(actual),
        )
    })
    .collect()
}

/// Recomputes node usage from the outcome and asserts capacity is never
/// exceeded at any start/end breakpoint.
fn assert_capacity(out: &gridsched_batch::cluster::BatchOutcome, jobs: &[BatchJob]) {
    let widths: std::collections::HashMap<BatchJobId, u32> =
        jobs.iter().map(|j| (j.id(), j.width())).collect();
    let mut points: Vec<SimTime> = out.jobs().iter().flat_map(|o| [o.start, o.end]).collect();
    points.sort_unstable();
    points.dedup();
    for &p in &points {
        let used: u32 = out
            .jobs()
            .iter()
            .filter(|o| o.start <= p && p < o.end)
            .map(|o| widths[&o.id])
            .sum();
        assert!(used <= CAPACITY, "usage {used} > {CAPACITY} at {p}");
    }
}

/// Every policy completes every job without oversubscription, and no
/// job starts before it arrives or runs a wrong duration.
#[test]
fn policies_are_safe_and_complete() {
    check(192, |g| {
        let jobs = gen_jobs(g);
        let by_id: std::collections::HashMap<BatchJobId, BatchJob> =
            jobs.iter().map(|j| (j.id(), *j)).collect();
        for policy in QueuePolicy::ALL {
            let out = ClusterConfig::new(CAPACITY, policy).run(&jobs);
            assert_eq!(out.jobs().len(), jobs.len());
            for o in out.jobs() {
                let j = &by_id[&o.id];
                assert!(o.start >= j.arrival(), "{policy}: starts early");
                assert_eq!(o.end.since(o.start), j.actual(), "{policy}");
            }
            assert_capacity(&out, &jobs);
        }
    });
}

/// FCFS starts jobs in arrival order.
#[test]
fn fcfs_preserves_arrival_order() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let out = ClusterConfig::new(CAPACITY, QueuePolicy::Fcfs).run(&jobs);
        let mut by_arrival: Vec<_> = out.jobs().to_vec();
        by_arrival.sort_by_key(|o| (o.arrival, o.id));
        for pair in by_arrival.windows(2) {
            assert!(
                pair[0].start <= pair[1].start,
                "{:?} started after {:?}",
                pair[0],
                pair[1]
            );
        }
    });
}

/// With exact estimates and no competing arrivals in the queue,
/// forecasts are exact under FCFS.
#[test]
fn fcfs_forecasts_exact_with_exact_estimates() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let exact: Vec<BatchJob> = jobs
            .iter()
            .map(|j| BatchJob::new(j.id(), j.arrival(), j.width(), j.estimate(), j.estimate()))
            .collect();
        let out = ClusterConfig::new(CAPACITY, QueuePolicy::Fcfs).run(&exact);
        for o in out.jobs() {
            assert_eq!(
                o.forecast_error(),
                SimDuration::ZERO,
                "forecast error for {}",
                o.id
            );
        }
    });
}

/// With exact estimates, conservative backfilling is fully
/// predictable: reservations never move, so every start-time forecast
/// is exact. (Mean-wait domination over FCFS does NOT hold in general:
/// a backfilled narrow job can pin a hole a wide job was waiting for.)
#[test]
fn conservative_forecasts_exact_with_exact_estimates() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let exact: Vec<BatchJob> = jobs
            .iter()
            .map(|j| BatchJob::new(j.id(), j.arrival(), j.width(), j.estimate(), j.estimate()))
            .collect();
        let out = ClusterConfig::new(CAPACITY, QueuePolicy::ConservativeBackfill).run(&exact);
        for o in out.jobs() {
            assert_eq!(
                o.forecast_error(),
                SimDuration::ZERO,
                "forecast error for {}",
                o.id
            );
        }
    });
}

/// Advance reservations are honoured: no job overlaps a reservation
/// window beyond remaining capacity.
#[test]
fn reservations_are_respected() {
    check(192, |g| {
        let jobs = gen_jobs(g);
        let policy = *g.pick(&QueuePolicy::ALL);
        let window = TimeWindow::new(SimTime::from_ticks(30), SimTime::from_ticks(50))
            .expect("valid window");
        let width = CAPACITY / 2;
        let mut cfg = ClusterConfig::new(CAPACITY, policy);
        cfg.reserve(AdvanceReservation { window, width });
        // Only schedulable jobs: widths within remaining capacity exist
        // anyway because width <= CAPACITY.
        let out = cfg.run(&jobs);
        let widths: std::collections::HashMap<BatchJobId, u32> =
            jobs.iter().map(|j| (j.id(), j.width())).collect();
        for t in window.start().ticks()..window.end().ticks() {
            let p = SimTime::from_ticks(t);
            let used: u32 = out
                .jobs()
                .iter()
                .filter(|o| o.start <= p && p < o.end)
                .map(|o| widths[&o.id])
                .sum();
            assert!(
                used + width <= CAPACITY,
                "{policy}: job usage {used} violates reservation at {p}"
            );
        }
    });
}
