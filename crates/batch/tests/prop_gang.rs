//! Property tests: gang-scheduling invariants.

use gridsched_batch::gang::{run_gang, GangConfig};
use gridsched_batch::job::{BatchJob, BatchJobId};
use gridsched_sim::check::{check, Gen};
use gridsched_sim::time::{SimDuration, SimTime};

const CAPACITY: u32 = 4;

fn gen_jobs(g: &mut Gen) -> Vec<BatchJob> {
    g.vec_of(1, 24, |g| {
        (
            g.u64_in(0, 59),
            g.u64_in(1, u64::from(CAPACITY)) as u32,
            g.u64_in(1, 19),
        )
    })
    .into_iter()
    .enumerate()
    .map(|(i, (arrival, width, runtime))| {
        BatchJob::new(
            BatchJobId(i as u64),
            SimTime::from_ticks(arrival),
            width,
            SimDuration::from_ticks(runtime),
            SimDuration::from_ticks(runtime),
        )
    })
    .collect()
}

/// Every job completes, starts no earlier than it arrives, and spends
/// at least its service time between start and end (time-slicing can
/// only stretch, never shrink, a job's span).
#[test]
fn gang_completes_everything() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let quantum = g.u64_in(1, 9);
        let out = run_gang(
            GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum)),
            &jobs,
        );
        assert_eq!(out.len(), jobs.len());
        let by_id: std::collections::HashMap<BatchJobId, &BatchJob> =
            jobs.iter().map(|j| (j.id(), j)).collect();
        for o in &out {
            let j = by_id[&o.id];
            assert!(o.start >= j.arrival(), "{o:?}");
            let span = o.end.since(o.start);
            assert!(span >= j.actual(), "span {span} < service {}", j.actual());
        }
    });
}

/// Time-slicing bounds the time to first service: a job starts within
/// `rows × quantum` of its arrival, where `rows` is at most the number
/// of jobs in the system.
#[test]
fn gang_bounds_time_to_first_service() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let quantum = g.u64_in(1, 9);
        let out = run_gang(
            GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum)),
            &jobs,
        );
        let n = jobs.len() as u64;
        for o in &out {
            let wait = o.wait().ticks();
            // Worst case: every other job occupies its own row ahead of us,
            // plus grid-alignment slack of one quantum.
            assert!(
                wait <= (n + 1) * quantum,
                "wait {wait} exceeds bound {} (quantum {quantum}, {n} jobs)",
                (n + 1) * quantum
            );
        }
    });
}

/// Gang is deterministic.
#[test]
fn gang_is_deterministic() {
    check(256, |g| {
        let jobs = gen_jobs(g);
        let quantum = g.u64_in(1, 9);
        let cfg = GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum));
        assert_eq!(run_gang(cfg, &jobs), run_gang(cfg, &jobs));
    });
}
