//! Property tests: gang-scheduling invariants.

use proptest::prelude::*;

use gridsched_batch::gang::{run_gang, GangConfig};
use gridsched_batch::job::{BatchJob, BatchJobId};
use gridsched_sim::time::{SimDuration, SimTime};

const CAPACITY: u32 = 4;

fn jobs_strategy() -> impl Strategy<Value = Vec<BatchJob>> {
    prop::collection::vec((0u64..60, 1u32..=CAPACITY, 1u64..20), 1..25).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (arrival, width, runtime))| {
                BatchJob::new(
                    BatchJobId(i as u64),
                    SimTime::from_ticks(arrival),
                    width,
                    SimDuration::from_ticks(runtime),
                    SimDuration::from_ticks(runtime),
                )
            })
            .collect()
    })
}

proptest! {
    /// Every job completes, starts no earlier than it arrives, and spends
    /// at least its service time between start and end (time-slicing can
    /// only stretch, never shrink, a job's span).
    #[test]
    fn gang_completes_everything((jobs, quantum) in (jobs_strategy(), 1u64..10)) {
        let out = run_gang(GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum)), &jobs);
        prop_assert_eq!(out.len(), jobs.len());
        let by_id: std::collections::HashMap<BatchJobId, &BatchJob> =
            jobs.iter().map(|j| (j.id(), j)).collect();
        for o in &out {
            let j = by_id[&o.id];
            prop_assert!(o.start >= j.arrival(), "{:?}", o);
            let span = o.end.since(o.start);
            prop_assert!(span >= j.actual(), "span {span} < service {}", j.actual());
        }
    }

    /// Time-slicing bounds the time to first service: a job starts within
    /// `rows × quantum` of its arrival, where `rows` is at most the number
    /// of jobs in the system.
    #[test]
    fn gang_bounds_time_to_first_service((jobs, quantum) in (jobs_strategy(), 1u64..10)) {
        let out = run_gang(GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum)), &jobs);
        let n = jobs.len() as u64;
        for o in &out {
            let wait = o.wait().ticks();
            // Worst case: every other job occupies its own row ahead of us,
            // plus grid-alignment slack of one quantum.
            prop_assert!(
                wait <= (n + 1) * quantum,
                "wait {wait} exceeds bound {} (quantum {quantum}, {n} jobs)",
                (n + 1) * quantum
            );
        }
    }

    /// Gang is deterministic.
    #[test]
    fn gang_is_deterministic((jobs, quantum) in (jobs_strategy(), 1u64..10)) {
        let cfg = GangConfig::new(CAPACITY, SimDuration::from_ticks(quantum));
        prop_assert_eq!(run_gang(cfg, &jobs), run_gang(cfg, &jobs));
    }
}
