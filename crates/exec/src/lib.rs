//! # gridsched-exec
//!
//! A vendored, dependency-free **persistent worker pool** for the strategy
//! sweep hot path.
//!
//! The planning layer regenerates full scenario sweeps on every release,
//! replan and fault-driven schedule switch. Before this crate, each sweep
//! spawned one scoped OS thread per scenario (~20µs of spawn/join churn per
//! ~500µs of planning work) and tore everything down again. The pool keeps
//! long-lived workers parked on a condvar; a sweep is submitted as a *batch*
//! — a shared claim counter over `0..len` that workers (and the submitting
//! thread itself) drain one index at a time. Chunk size 1 is deliberate:
//! scenarios are coarse-grained and few, so per-claim overhead is noise and
//! the finest granularity gives the best load balance.
//!
//! ## Determinism contract
//!
//! [`WorkerPool::scatter`] writes each result into a slot addressed by its
//! input index. Collection order is therefore **input order, regardless of
//! completion order** — the caller observes exactly what a sequential loop
//! would produce, bit for bit, as long as the closure itself is a pure
//! function of its index. This is the contract the strategy sweep's
//! determinism suite pins.
//!
//! ## Why `unsafe` lives here
//!
//! Every other workspace crate carries `#![forbid(unsafe_code)]`. The pool
//! needs two narrow unsafe ingredients — a type-erased closure pointer so a
//! non-generic batch can sit in a queue, and index-addressed result slots
//! written concurrently — so it is quarantined in this crate with the
//! invariants documented at each `unsafe` block.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A batch of `len` independent work items drained through a shared claim
/// counter.
///
/// # Safety invariant
///
/// `data` points at a `F: Fn(usize) + Sync` that lives on the stack of the
/// thread inside [`WorkerPool::run_batch`]. It is dereferenced (via `call`)
/// only between claiming an index `< len` and decrementing `remaining`.
/// While any such dereference is in flight, `remaining > 0`, so the
/// submitting thread is still blocked waiting on `done` and the closure is
/// alive. A laggard worker that still holds an `Arc<Batch>` after the batch
/// completed can only observe `next >= len` and returns without touching
/// `data`.
struct Batch {
    data: *const (),
    call: unsafe fn(*const (), usize),
    len: usize,
    /// Next unclaimed index. Claims beyond `len` mean "drained".
    next: AtomicUsize,
    /// Items not yet finished; the last decrement flips `done`.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload observed while running items, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `data` is only ever dereferenced under the lifetime invariant
// documented on [`Batch`], and the pointee is `Sync` (enforced by the
// `F: Sync` bound on `run_batch`), so shared access from worker threads is
// sound. All other fields are `Send + Sync` already.
unsafe impl Send for Batch {}
// SAFETY: see the `Send` justification above.
unsafe impl Sync for Batch {}

impl Batch {
    fn fully_claimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.len
    }

    /// Drain items from the claim counter until the batch is exhausted.
    ///
    /// Called from worker threads and from the submitting thread itself
    /// (caller participation makes a zero-worker pool a plain sequential
    /// loop with two atomic ops of overhead per item).
    fn run_worker(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // SAFETY: we claimed `i < len` and have not yet decremented
            // `remaining`, so per the struct invariant the closure behind
            // `data` is alive and `call` was monomorphized for its exact
            // type by `run_batch`.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, i) }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // AcqRel: the final decrement acquires every preceding worker's
            // release, so the waiter observes all result-slot writes.
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// Type-erasure trampoline: recovers the concrete closure type `F` that
/// `run_batch` erased into `Batch::data`.
///
/// # Safety
///
/// `data` must point to a live `F` and be called only under the [`Batch`]
/// lifetime invariant.
unsafe fn call_erased<F: Fn(usize)>(data: *const (), i: usize) {
    // SAFETY: `run_batch::<F>` stored `&F` as `data` and paired it with
    // `call_erased::<F>`, so the cast recovers the original type.
    let f = unsafe { &*data.cast::<F>() };
    f(i);
}

/// One result cell of a scatter, written exactly once by whichever thread
/// claims its index.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: each slot is written by exactly one claimant (indices are handed
// out once by the atomic counter) and only read by the submitting thread
// after the batch's completion barrier, so there is never a concurrent
// read/write or write/write.
unsafe impl<T: Send> Sync for Slot<T> {}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Batches currently inside [`WorkerPool::run_batch`]. The probe
    /// fan-out entry ([`WorkerPool::run_tasks_if_idle`]) declines while
    /// this is nonzero so cold-probe batches never contend with a
    /// scenario sweep for the same workers.
    active: AtomicUsize,
}

/// A persistent pool of worker threads draining [`scatter`] batches.
///
/// Workers are spawned once and parked between batches; the pool is meant
/// to be created once per process (see [`WorkerPool::global`]) and reused
/// across every sweep of a campaign. Dropping the pool joins all workers.
///
/// [`scatter`]: WorkerPool::scatter
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with `workers` long-lived threads.
    ///
    /// `workers == 0` is valid and useful: every scatter then runs inline
    /// on the submitting thread (sequential fallback with no thread
    /// hand-off at all).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gridsched-sweep-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sweep worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// The process-wide pool used by the strategy sweep: sized to
    /// `available_parallelism - 1` (the submitting thread participates),
    /// capped at 8 — scenario sweeps are at most a handful of items, so
    /// more workers only add wake-up cost. On a single-core machine this
    /// is a zero-worker pool and every sweep runs sequentially inline.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            WorkerPool::new(cores.saturating_sub(1).min(8))
        })
    }

    /// Number of worker threads (not counting the submitting thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Whether any batch is currently running on the pool.
    ///
    /// Advisory by nature (another submitter can start a batch right
    /// after the load) — callers use it to *decline* optional work, never
    /// for correctness.
    pub fn is_busy(&self) -> bool {
        self.shared.active.load(Ordering::Acquire) > 0
    }

    /// Batch entry point for cross-node probe fan-out: runs
    /// `task(0..len)` across the pool like [`WorkerPool::scatter`] (the
    /// submitting thread participates; results travel through whatever
    /// the closure writes), **unless** the pool is already busy — a
    /// scenario sweep in flight, or a probe batch of another planner —
    /// in which case nothing runs and `false` is returned so the caller
    /// can fall back to its sequential loop.
    ///
    /// Dyn-compatible on purpose: `gridsched-model` dispatches through a
    /// plain function pointer (`ProbeExecutor`) and cannot name generic
    /// closures across the crate boundary.
    pub fn run_tasks_if_idle(&self, len: usize, task: &(dyn Fn(usize) + Sync)) -> bool {
        if len == 0 {
            return true;
        }
        if self.is_busy() {
            return false;
        }
        self.run_batch(len, &task);
        true
    }

    /// Run `f(0..len)` across the pool and return the results **in input
    /// order**, regardless of which thread computed what or when it
    /// finished. The submitting thread participates in the drain.
    ///
    /// If any invocation panics, the batch still runs to completion (so no
    /// worker can outlive the closure) and the first payload is re-raised
    /// on the submitting thread afterwards.
    pub fn scatter<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Slot<T>> = (0..len).map(|_| Slot(UnsafeCell::new(None))).collect();
        let fill = |i: usize| {
            let value = f(i);
            // SAFETY: index `i` was claimed exactly once (atomic counter),
            // so this is the only write to `slots[i]`, and the submitting
            // thread reads it only after the completion barrier.
            unsafe { *slots[i].0.get() = Some(value) };
        };
        self.run_batch(len, &fill);
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("every scatter slot filled"))
            .collect()
    }

    fn run_batch<F: Fn(usize) + Sync>(&self, len: usize, f: &F) {
        if len == 0 {
            return;
        }
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        let batch = Arc::new(Batch {
            data: (f as *const F).cast::<()>(),
            call: call_erased::<F>,
            len,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(len),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        if !self.handles.is_empty() && len > 1 {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(Arc::clone(&batch));
            drop(queue);
            self.shared.work_cv.notify_all();
        }
        // Caller participation: drain alongside the workers.
        batch.run_worker();
        let mut done = batch.done.lock().unwrap();
        while !*done {
            done = batch.done_cv.wait(done).unwrap();
        }
        drop(done);
        if !self.handles.is_empty() && len > 1 {
            // Hygiene: drop the drained batch from the queue so laggards
            // never even see it. (Workers also skip fully-claimed batches.)
            let mut queue = self.shared.queue.lock().unwrap();
            queue.retain(|b| !Arc::ptr_eq(b, &batch));
        }
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                while queue.front().is_some_and(|b| b.fully_claimed()) {
                    queue.pop_front();
                }
                if let Some(front) = queue.front() {
                    break Arc::clone(front);
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        batch.run_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scatter_returns_results_in_input_order() {
        let pool = WorkerPool::new(3);
        // Uneven sleeps force out-of-order completion; collection must
        // still be input-ordered.
        let out = pool.scatter(16, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let main = std::thread::current().id();
        let out = pool.scatter(5, |i| {
            assert_eq!(std::thread::current().id(), main);
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    /// Batches per reuse test: Miri interprets every instruction, so the
    /// loop is shortened there — the interleavings it explores do not
    /// need 50 rounds to show up.
    const REUSE_ROUNDS: u64 = if cfg!(miri) { 4 } else { 50 };

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let touched = AtomicU64::new(0);
        for round in 0..REUSE_ROUNDS {
            let out = pool.scatter(4, |i| {
                touched.fetch_add(1, Ordering::Relaxed);
                round * 10 + i as u64
            });
            assert_eq!(out, (0..4).map(|i| round * 10 + i).collect::<Vec<_>>());
        }
        assert_eq!(touched.load(Ordering::Relaxed), REUSE_ROUNDS * 4);
    }

    #[test]
    fn concurrent_scatters_from_two_submitters_stay_isolated() {
        // Two threads race batches onto one pool. The mutex serializes
        // the batches; the test pins that neither submitter ever sees
        // the other's results — the aliasing scenario Miri watches the
        // type-erased closure pointer for.
        let pool = WorkerPool::new(2);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| pool.scatter(6, |i| i * 2));
            let b = scope.spawn(|| pool.scatter(4, |i| i * 3 + 1));
            assert_eq!(a.join().unwrap(), vec![0, 2, 4, 6, 8, 10]);
            assert_eq!(b.join().unwrap(), vec![1, 4, 7, 10]);
        });
    }

    #[test]
    fn empty_scatter_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.scatter(0, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn panics_propagate_to_the_submitter_after_completion() {
        let pool = WorkerPool::new(2);
        let completed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(8, |i| {
                if i == 3 {
                    panic!("scenario 3 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(result.is_err(), "panic must reach the submitting thread");
        // Every non-panicking item still ran: the batch drains fully so no
        // worker can hold a dangling closure pointer.
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives a panicked batch.
        assert_eq!(pool.scatter(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn global_pool_is_sized_for_the_machine() {
        let pool = WorkerPool::global();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(pool.workers(), cores.saturating_sub(1).min(8));
        assert_eq!(pool.scatter(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn run_tasks_if_idle_runs_when_idle_and_declines_when_busy() {
        let pool = WorkerPool::new(2);
        assert!(!pool.is_busy());
        let hits = AtomicU64::new(0);
        let task = |i: usize| {
            hits.fetch_add(1 + i as u64, Ordering::Relaxed);
        };
        assert!(pool.run_tasks_if_idle(4, &task), "idle pool accepts");
        assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
        // While a slow scatter holds the pool, a nested offer from inside
        // one of its items must be declined (the sweep-in-flight shape).
        let declined = AtomicU64::new(0);
        let noop = |_i: usize| {};
        pool.scatter(4, |i| {
            if !pool.run_tasks_if_idle(2, &noop) {
                declined.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(
            declined.load(Ordering::Relaxed),
            4,
            "every nested offer declines while the batch runs"
        );
        assert!(!pool.is_busy(), "busy flag clears after the batch");
        assert!(pool.run_tasks_if_idle(0, &noop), "empty batch is a no-op");
    }

    #[test]
    fn scatter_matches_sequential_loop_bit_for_bit() {
        // A miniature determinism pin: a stateful-per-index computation
        // must produce identical results pooled and sequential.
        fn compute(i: usize) -> Vec<u64> {
            let mut x = 0x9e3779b97f4a7c15u64 ^ i as u64;
            (0..32)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect()
        }
        let pool = WorkerPool::new(4);
        let pooled = pool.scatter(12, compute);
        let sequential: Vec<_> = (0..12).map(compute).collect();
        assert_eq!(pooled, sequential);
    }
}
