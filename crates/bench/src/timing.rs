//! A small wall-clock timing harness for the `benches/` targets.
//!
//! Replaces the previous Criterion dependency with a self-contained
//! measure-and-print loop: each benchmark warms up, then runs batches until
//! a time budget is exhausted, and reports min/mean per-iteration times.
//! The numbers are indicative, not statistically rigorous — good enough to
//! compare orders of magnitude and catch regressions by eye.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default measurement budget per benchmark.
pub const DEFAULT_BUDGET: Duration = Duration::from_millis(300);

/// Per-benchmark statistics, also returned to the caller so bins can
/// post-process them (speedup ratios, JSON reports).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Timed iterations (the warm-up call is not counted).
    pub iters: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
}

impl Stats {
    /// `self` / `other` as a throughput ratio: how many times faster
    /// `other`'s mean iteration is than `self`'s.
    #[must_use]
    pub fn speedup_over(&self, other: &Stats) -> f64 {
        self.mean.as_secs_f64() / other.mean.as_secs_f64().max(f64::EPSILON)
    }
}

/// One benchmark group, printed as an indented block.
pub struct Group {
    name: String,
    budget: Duration,
}

impl Group {
    /// Starts a named group.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_owned(),
            budget: DEFAULT_BUDGET,
        }
    }

    /// Overrides the per-benchmark time budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Measures `f`, printing and returning per-iteration statistics.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) -> Stats {
        // Warm-up: one untimed call (fills caches, faults pages).
        black_box(f());
        let mut iters: u64 = 0;
        let mut best = Duration::MAX;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            best = best.min(dt);
            iters += 1;
        }
        let mean = started.elapsed() / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
        println!(
            "  {label:<40} {iters:>8} iters   mean {:>12?}   min {:>12?}",
            mean, best
        );
        Stats {
            iters,
            mean,
            min: best,
        }
    }

    /// The group's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_once() {
        let g = Group::new("test").with_budget(Duration::from_millis(5));
        let counter = std::cell::Cell::new(0u64);
        let stats = g.bench("noop", || counter.set(counter.get() + 1));
        assert!(counter.get() >= 1);
        assert!(stats.iters >= 1);
        assert!(stats.min <= stats.mean || stats.iters == 1);
        assert_eq!(g.name(), "test");
    }

    #[test]
    fn speedup_is_a_mean_ratio() {
        let slow = Stats {
            iters: 1,
            mean: Duration::from_millis(40),
            min: Duration::from_millis(40),
        };
        let fast = Stats {
            iters: 1,
            mean: Duration::from_millis(10),
            min: Duration::from_millis(10),
        };
        let ratio = slow.speedup_over(&fast);
        assert!((ratio - 4.0).abs() < 1e-9, "got {ratio}");
    }
}
