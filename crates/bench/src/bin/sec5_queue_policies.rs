//! §5 — local batch-system queue management claims.
//!
//! The paper's conclusions cite four qualitative effects (from the Argonne
//! studies it references):
//!
//! 1. advance reservation "nearly always increases queue waiting time";
//! 2. "backfilling decreases this time";
//! 3. "with the use of FCFS strategy waiting time is shorter than with the
//!    use of LWF";
//! 4. "estimation error for starting time forecast is bigger with FCFS
//!    than with LWF".
//!
//! We measure all four at three utilization levels. Claims 1–2 reproduce
//! robustly. Claims 3–4 are load-dependent: under saturation LWF behaves
//! like shortest-job-first and *reduces* mean waiting at the price of a
//! larger forecast error — the trade-off §5 describes, with the roles of
//! FCFS and LWF swapped relative to the paper's wording. The harness
//! reports the measured direction honestly at every load.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin sec5_queue_policies`
//! Knobs: `--jobs N --capacity N --seed N`

use gridsched::batch::cluster::{AdvanceReservation, BatchOutcome, ClusterConfig};
use gridsched::batch::policy::QueuePolicy;
use gridsched::metrics::histogram::Histogram;
use gridsched::metrics::table::{ratio, Table};
use gridsched::model::window::TimeWindow;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::batch::{generate_batch_jobs, BatchWorkloadConfig};
use gridsched_bench::{keys, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::SEC5_QUEUE_POLICIES);
    let jobs: usize = args.get("jobs", 400);
    let capacity: u32 = args.get("capacity", 8);
    let seed: u64 = args.get("seed", 2009);

    // Three utilization levels via arrival spacing.
    let loads = [("light", 14u64), ("moderate", 7), ("heavy", 3)];
    for (label, gap) in loads {
        let workload = BatchWorkloadConfig {
            jobs,
            width_max: 6,
            mean_gap: gap,
            ..BatchWorkloadConfig::default()
        };
        let stream = generate_batch_jobs(&workload, &mut SimRng::seed_from(seed));
        println!("\n=== load: {label} (mean gap {gap}, {jobs} jobs, {capacity} nodes) ===");
        let mut table = Table::new(vec![
            "policy",
            "mean wait",
            "p95 wait",
            "wait with reservations",
            "forecast error",
        ]);
        let mut waits = std::collections::HashMap::new();
        let mut errors = std::collections::HashMap::new();
        let mut reserved_waits = std::collections::HashMap::new();
        for policy in QueuePolicy::ALL {
            let plain = ClusterConfig::new(capacity, policy).run(&stream);
            let reserved = with_reservations(capacity, policy).run(&stream);
            waits.insert(policy, plain.mean_wait());
            errors.insert(policy, plain.mean_forecast_error());
            reserved_waits.insert(policy, reserved.mean_wait());
            table.row(vec![
                policy.name().to_owned(),
                ratio(plain.mean_wait()),
                ratio(p95_wait(&plain)),
                ratio(reserved.mean_wait()),
                ratio(plain.mean_forecast_error()),
            ]);
        }
        println!("{table}");
        println!("claim checks at this load:");
        verdict(
            "(1) advance reservations increase waiting under every policy",
            QueuePolicy::ALL
                .iter()
                .all(|p| reserved_waits[p] + 1e-9 >= waits[p]),
        );
        verdict(
            "(2) EASY backfilling waits no longer than FCFS",
            waits[&QueuePolicy::EasyBackfill] <= waits[&QueuePolicy::Fcfs] + 1e-9,
        );
        verdict(
            "(3) FCFS waits less than LWF (paper's direction)",
            waits[&QueuePolicy::Fcfs] <= waits[&QueuePolicy::Lwf],
        );
        verdict(
            "(4) FCFS forecast error exceeds LWF's (paper's direction)",
            errors[&QueuePolicy::Fcfs] >= errors[&QueuePolicy::Lwf],
        );
        verdict(
            "(3+4) shorter-wait policy pays with larger forecast error (the §5 trade-off)",
            (waits[&QueuePolicy::Fcfs] - waits[&QueuePolicy::Lwf])
                * (errors[&QueuePolicy::Fcfs] - errors[&QueuePolicy::Lwf])
                <= 0.0,
        );
    }
}

/// 95th-percentile queue wait, estimated from a 100-bucket histogram.
fn p95_wait(out: &BatchOutcome) -> f64 {
    let max = out
        .jobs()
        .iter()
        .map(|o| o.wait().ticks())
        .max()
        .unwrap_or(0);
    let mut h = Histogram::new(0.0, (max + 1) as f64, 100);
    for o in out.jobs() {
        h.record(o.wait().ticks() as f64);
    }
    h.quantile(0.95).unwrap_or(0.0)
}

fn with_reservations(capacity: u32, policy: QueuePolicy) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(capacity, policy);
    for k in 0..60u64 {
        cfg.reserve(AdvanceReservation {
            window: TimeWindow::new(
                SimTime::from_ticks(40 + 80 * k),
                SimTime::from_ticks(55 + 80 * k),
            )
            .expect("valid window"),
            width: capacity / 2,
        });
    }
    cfg
}
