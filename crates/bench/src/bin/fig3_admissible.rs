//! Fig. 3 — application-level scheduling without job-flow coordination.
//!
//! Panel (a): percentage of experiments with admissible schedules per
//! strategy (paper: S1 38 %, S2 37 %, S3 33 %).
//! Panel (b): distribution of collisions over "fast" vs "slow" processor
//! nodes (paper: S1 32/68, S2 56/44, S3 74/26).
//!
//! Setup per §4: for each of 12 000 randomly generated jobs, a fresh pool
//! of 20–30 nodes in three performance groups carries background load from
//! independent flows; application-level strategies are then built "for
//! available resources non-assigned to other independent jobs" and checked
//! against the job's fixed completion time.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin fig3_admissible`
//! Knobs: `--jobs N --load F --deadline-factor F --seed N`

use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::metrics::table::{pct, Table};
use gridsched::model::ids::JobId;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::background::{apply_background_load, BackgroundConfig};
use gridsched::workload::jobs::{generate_job, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::{keys, verdict, Args};

const KINDS: [StrategyKind; 3] = [StrategyKind::S1, StrategyKind::S2, StrategyKind::S3];

/// Calibrated network: the paper's environment is transfer-aware but not
/// transfer-dominated, so inter-domain links are only moderately slower
/// than intra-domain ones.
fn transfer_model() -> gridsched::data::network::TransferModel {
    gridsched::data::network::TransferModel::new(
        5.0,
        3.5,
        gridsched::sim::time::SimDuration::from_ticks(1),
    )
}

#[derive(Default)]
struct Tally {
    admissible: usize,
    collisions_fast: usize,
    collisions_slow: usize,
}

fn main() {
    let args = Args::capture_validated(keys::FIG3_ADMISSIBLE);
    let jobs: usize = args.get("jobs", 12_000);
    let load: f64 = args.get("load", 0.6);
    let deadline_factor: f64 = args.get("deadline-factor", 2.65);
    let seed: u64 = args.get("seed", 2009);

    let job_config = JobConfig {
        deadline_factor,
        ..JobConfig::default()
    };
    // Slightly slow-heavy pool: the paper fixes the perf bands but not the
    // group shares; a VO's cheap nodes usually outnumber its premium ones.
    let pool_config = PoolConfig {
        group_shares: (0.25, 0.35, 0.40),
        ..PoolConfig::default()
    };
    println!(
        "fig3: {jobs} jobs, background load {load}, deadline factor {deadline_factor}, seed {seed}"
    );

    let mut master = SimRng::seed_from(seed);
    let mut tallies: [Tally; 3] = Default::default();
    for i in 0..jobs {
        let mut rng = master.fork(i as u64);
        let mut pool = generate_pool(&pool_config, &mut rng);
        apply_background_load(
            &mut pool,
            &BackgroundConfig {
                load,
                ..BackgroundConfig::default()
            },
            &mut rng,
        );
        let job = generate_job(&job_config, JobId::new(i as u64), SimTime::ZERO, &mut rng);
        for (k, kind) in KINDS.into_iter().enumerate() {
            let config = StrategyConfig::for_kind(kind, &pool);
            let policy = config
                .policy()
                .clone()
                .with_transfer_model(transfer_model());
            let config = config.with_policy(policy);
            let strategy = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
            if strategy.is_admissible() {
                tallies[k].admissible += 1;
            }
            for c in strategy.collisions() {
                if c.group.is_fast() {
                    tallies[k].collisions_fast += 1;
                } else {
                    tallies[k].collisions_slow += 1;
                }
            }
        }
        if (i + 1) % 2000 == 0 {
            eprintln!("  … {}/{jobs} jobs done", i + 1);
        }
    }

    let mut table = Table::new(vec![
        "strategy",
        "admissible %",
        "paper %",
        "fast-node collisions %",
        "paper fast %",
    ]);
    let paper_admissible = [38.0, 37.0, 33.0];
    let paper_fast = [32.0, 56.0, 74.0];
    let mut admissible = [0.0f64; 3];
    let mut fast_share = [0.0f64; 3];
    for (k, kind) in KINDS.into_iter().enumerate() {
        let t = &tallies[k];
        admissible[k] = t.admissible as f64 / jobs as f64;
        let total = t.collisions_fast + t.collisions_slow;
        fast_share[k] = if total == 0 {
            0.0
        } else {
            t.collisions_fast as f64 / total as f64
        };
        table.row(vec![
            kind.name().to_owned(),
            pct(admissible[k]),
            format!("{}", paper_admissible[k]),
            pct(fast_share[k]),
            format!("{}", paper_fast[k]),
        ]);
    }
    println!("\nFig. 3 (a)+(b):\n{table}");

    println!("paper-shape checks:");
    verdict(
        "fig3a: admissible order S1 >= S2 >= S3",
        admissible[0] + 0.005 >= admissible[1] && admissible[1] + 0.005 >= admissible[2],
    );
    verdict(
        "fig3a: admissible shares in the paper's 25-55% band",
        admissible.iter().all(|a| (0.20..=0.60).contains(a)),
    );
    verdict(
        "fig3b: fast-node collision share S3 > S2 > S1",
        fast_share[2] > fast_share[1] && fast_share[1] > fast_share[0],
    );
    verdict(
        "fig3b: S3 collides mostly on fast nodes; S1 has the most slow-node collisions",
        fast_share[2] > 0.5 && fast_share[0] < fast_share[1].min(fast_share[2]),
    );
}
