//! CI gate for the `strategy_sweep` benchmark.
//!
//! Reads a freshly produced sweep result plus the committed baseline and
//! fails (exit code 1) when the measured mean speedup of planning-session
//! sweeps over the clone-per-scenario baseline drops below the committed
//! threshold. This is the regression tripwire behind the repo's headline
//! performance claim (planning sessions ≥ 2× faster, see ROADMAP.md and
//! `BENCH_strategy_sweep.json`).
//!
//! On machines with ≥ 2 cores (or when `--require-pooled true` is forced)
//! an extra line gates the persistent-pool sweep against the sequential
//! sweep: `overall_speedup_pooled` must be at least
//! `overall_speedup_sequential`, the tripwire for pool hand-off overhead.
//! On single-core runners the pooled sweep falls back to the sequential
//! one, so the comparison is skipped unless forced.
//!
//! With `--online FILE` the gate additionally checks a fresh
//! `online_throughput` result: sustained admitted-jobs/sec must be
//! nonzero, the trace-invariant oracle must report zero violations, the
//! QoS counters must reconcile, and every arrival must be accounted for
//! (`jobs_arrived == jobs_admitted + jobs_rejected + jobs_deferred`).
//!
//! With `--domains FILE` the gate compares a fresh *hierarchical*
//! `online_throughput` result (flow layer sharded over ≥ 2 job managers)
//! against a fresh *monolithic* one (`--mono FILE`, default
//! `BENCH_online_mono.json` — the collapsed single-manager flow layer on
//! the same pool, which makes bit-identical campaign decisions; produce
//! both files in one paired `online_throughput --mono-out` invocation so
//! the two runs are interleaved and machine drift cancels out of their
//! ratio): sharding is pure bookkeeping, so hierarchical sustained
//! throughput must stay within `--min-domain-ratio` (default 0.95) of
//! the monolithic run.
//!
//! With `--probe-index FILE` the gate checks a fresh `probe_scaling`
//! result: the gap-indexed cold probe must beat the linear jump-walk by
//! `--min-probe-speedup` (default 1.0; the reference box clears 5×, and
//! CI ratchets the floor to 5.0 — the index answers in O(log R) against
//! the walk's O(R), so at 100k+ reservations even a noisy shared runner
//! clears it with a wide margin, see `BENCH_probe_scaling.json`) at a
//! pool of ≥ 100k reservations.
//!
//! With `--index-cache FILE` the gate checks the same file's
//! warm-capture keys: a warm snapshot capture of an unchanged ≥ 100k
//! window pool must be at least `--min-cache-speedup` (default 10.0)
//! faster than the cache-disabled capture, with **zero** index rebuilds
//! and at least one recorded cache hit.
//!
//! Run with:
//! `cargo run --release -p gridsched-bench --bin bench_check -- \
//!    --fresh BENCH_fresh.json --baseline BENCH_strategy_sweep.json --min-speedup 2.0`

use gridsched_bench::{
    bench_gate, domain_gate, index_cache_gate, json_number, keys, probe_gate, Args,
};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Sanity floor for a fresh `BENCH_online_throughput.json`; returns
/// whether it passes, printing one line per check.
fn online_gate(json: &str) -> bool {
    let num = |key: &str| json_number(json, key);
    let checks: [(&str, bool); 4] = [
        (
            "sustained_jobs_per_sec > 0",
            num("sustained_jobs_per_sec").is_some_and(|v| v > 0.0),
        ),
        (
            "oracle_violations == 0",
            num("oracle_violations") == Some(0.0),
        ),
        (
            "arrivals all accounted for",
            match (
                num("jobs_arrived"),
                num("jobs_admitted"),
                num("jobs_rejected"),
                num("jobs_deferred"),
            ) {
                (Some(a), Some(ad), Some(r), Some(d)) => a == ad + r + d,
                _ => false,
            },
        ),
        (
            "plan_p99_ns >= plan_p50_ns > 0",
            match (num("plan_p50_ns"), num("plan_p99_ns")) {
                (Some(p50), Some(p99)) => p50 > 0.0 && p99 >= p50,
                _ => false,
            },
        ),
    ];
    let mut pass = true;
    for (label, ok) in checks {
        println!("  [{}] online: {label}", if ok { "OK  " } else { "FAIL" });
        pass &= ok;
    }
    pass
}

fn main() {
    let args = Args::capture_validated(keys::BENCH_CHECK);
    let fresh_path: String = args.get("fresh", "BENCH_fresh.json".to_owned());
    let baseline_path: String = args.get("baseline", "BENCH_strategy_sweep.json".to_owned());
    let min_speedup: f64 = args.get("min-speedup", 2.0);
    let multi_core = std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2);
    let require_pooled: bool = args.get("require-pooled", multi_core);

    let online_path: Option<String> = args
        .has("online")
        .then(|| args.get("online", "BENCH_online_throughput.json".to_owned()));
    let domains_path: Option<String> = args
        .has("domains")
        .then(|| args.get("domains", "BENCH_online_domains.json".to_owned()));
    let mono_path: String = args.get("mono", "BENCH_online_mono.json".to_owned());
    let min_domain_ratio: f64 = args.get("min-domain-ratio", 0.95);
    let probe_path: Option<String> = args
        .has("probe-index")
        .then(|| args.get("probe-index", "BENCH_probe_scaling.json".to_owned()));
    let min_probe_speedup: f64 = args.get("min-probe-speedup", 1.0);
    let cache_path: Option<String> = args
        .has("index-cache")
        .then(|| args.get("index-cache", "BENCH_probe_scaling.json".to_owned()));
    let min_cache_speedup: f64 = args.get("min-cache-speedup", 10.0);

    let fresh = read(&fresh_path);
    let baseline = read(&baseline_path);
    let (lines, mut pass) = bench_gate(&fresh, &baseline, min_speedup, require_pooled);

    println!(
        "bench_check: {fresh_path} vs {baseline_path} (floor {min_speedup:.2}x, pooled gate {})",
        if require_pooled { "on" } else { "off" }
    );
    for line in &lines {
        let fmt = |v: Option<f64>| v.map_or("missing".to_owned(), |v| format!("{v:.2}x"));
        println!(
            "  [{}] {:<28} fresh {:>9}   committed baseline {:>9}",
            if line.pass { "OK  " } else { "FAIL" },
            line.key,
            fmt(line.fresh),
            fmt(line.baseline),
        );
    }
    if let Some(online_path) = online_path {
        println!("bench_check: online serving floor ({online_path})");
        pass &= online_gate(&read(&online_path));
    }
    if let Some(domains_path) = domains_path {
        println!(
            "bench_check: hierarchical vs monolithic ({domains_path} vs {mono_path}, floor {min_domain_ratio:.2}x)"
        );
        let (lines, ok) = domain_gate(&read(&domains_path), &read(&mono_path), min_domain_ratio);
        for line in &lines {
            let fmt = |v: Option<f64>| v.map_or("missing".to_owned(), |v| format!("{v:.2}"));
            println!(
                "  [{}] {:<28} fresh {:>9}   required {:>9}",
                if line.pass { "OK  " } else { "FAIL" },
                line.key,
                fmt(line.fresh),
                fmt(line.baseline),
            );
        }
        pass &= ok;
    }
    if let Some(probe_path) = probe_path {
        println!(
            "bench_check: gap-index probe scaling ({probe_path}, floor {min_probe_speedup:.2}x)"
        );
        let (lines, ok) = probe_gate(&read(&probe_path), min_probe_speedup);
        for line in &lines {
            let fmt = |v: Option<f64>| v.map_or("missing".to_owned(), |v| format!("{v:.2}"));
            println!(
                "  [{}] {:<28} fresh {:>9}   required {:>9}",
                if line.pass { "OK  " } else { "FAIL" },
                line.key,
                fmt(line.fresh),
                fmt(line.baseline),
            );
        }
        pass &= ok;
    }
    if let Some(cache_path) = cache_path {
        println!(
            "bench_check: warm snapshot capture ({cache_path}, floor {min_cache_speedup:.2}x)"
        );
        let (lines, ok) = index_cache_gate(&read(&cache_path), min_cache_speedup);
        for line in &lines {
            let fmt = |v: Option<f64>| v.map_or("missing".to_owned(), |v| format!("{v:.2}"));
            println!(
                "  [{}] {:<28} fresh {:>9}   required {:>9}",
                if line.pass { "OK  " } else { "FAIL" },
                line.key,
                fmt(line.fresh),
                fmt(line.baseline),
            );
        }
        pass &= ok;
    }
    if pass {
        println!("bench_check: PASS");
    } else {
        println!("bench_check: FAIL — a gated metric fell below its committed floor");
        std::process::exit(1);
    }
}
