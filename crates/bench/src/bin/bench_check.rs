//! CI gate for the `strategy_sweep` benchmark.
//!
//! Reads a freshly produced sweep result plus the committed baseline and
//! fails (exit code 1) when the measured mean speedup of planning-session
//! sweeps over the clone-per-scenario baseline drops below the committed
//! threshold. This is the regression tripwire behind the repo's headline
//! performance claim (planning sessions ≥ 2× faster, see ROADMAP.md and
//! `BENCH_strategy_sweep.json`).
//!
//! On machines with ≥ 2 cores (or when `--require-pooled true` is forced)
//! an extra line gates the persistent-pool sweep against the sequential
//! sweep: `overall_speedup_pooled` must be at least
//! `overall_speedup_sequential`, the tripwire for pool hand-off overhead.
//! On single-core runners the pooled sweep falls back to the sequential
//! one, so the comparison is skipped unless forced.
//!
//! Run with:
//! `cargo run --release -p gridsched-bench --bin bench_check -- \
//!    --fresh BENCH_fresh.json --baseline BENCH_strategy_sweep.json --min-speedup 2.0`

use gridsched_bench::{bench_gate, Args};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn main() {
    let args = Args::capture();
    let fresh_path: String = args.get("fresh", "BENCH_fresh.json".to_owned());
    let baseline_path: String = args.get("baseline", "BENCH_strategy_sweep.json".to_owned());
    let min_speedup: f64 = args.get("min-speedup", 2.0);
    let multi_core = std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2);
    let require_pooled: bool = args.get("require-pooled", multi_core);

    let fresh = read(&fresh_path);
    let baseline = read(&baseline_path);
    let (lines, pass) = bench_gate(&fresh, &baseline, min_speedup, require_pooled);

    println!(
        "bench_check: {fresh_path} vs {baseline_path} (floor {min_speedup:.2}x, pooled gate {})",
        if require_pooled { "on" } else { "off" }
    );
    for line in &lines {
        let fmt = |v: Option<f64>| v.map_or("missing".to_owned(), |v| format!("{v:.2}x"));
        println!(
            "  [{}] {:<28} fresh {:>9}   committed baseline {:>9}",
            if line.pass { "OK  " } else { "FAIL" },
            line.key,
            fmt(line.fresh),
            fmt(line.baseline),
        );
    }
    if pass {
        println!("bench_check: PASS");
    } else {
        println!("bench_check: FAIL — speedup dropped below the committed {min_speedup:.2}x floor");
        std::process::exit(1);
    }
}
