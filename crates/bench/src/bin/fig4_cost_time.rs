//! Fig. 4 (b) — relative job completion cost and relative task execution
//! time for the MS1, S2 and S3 strategies.
//!
//! Paper's reading: "Lowest-cost strategies are the 'slowest' ones like
//! S3"; S2 is the fastest (shortest task wall times) and among the most
//! expensive; MS1's worst-case-padded reservations make its tasks occupy
//! nodes about as long as S3's coarse ones.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin fig4_cost_time`
//! Knobs: `--jobs N --seed N --perturbations N`

use gridsched::core::strategy::StrategyKind;
use gridsched::metrics::table::{ratio, Table};
use gridsched_bench::{campaign_for, fig4_campaign_base, keys, normalize, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::FIG4);
    let base = fig4_campaign_base(&args);
    println!(
        "fig4b: {} jobs per strategy, horizon {}, seed {}",
        base.jobs, base.horizon, base.seed
    );

    let kinds = [StrategyKind::Ms1, StrategyKind::S2, StrategyKind::S3];
    let mut costs = Vec::new();
    let mut windows = Vec::new();
    let mut traffic = Vec::new();
    let mut nodes_used = Vec::new();
    for kind in kinds {
        let report = campaign_for(kind, &base);
        costs.push(report.cost_summary().mean());
        windows.push(report.task_window_summary().mean());
        traffic.push(report.traffic_summary().mean());
        nodes_used.push(report.nodes_used_summary().mean());
    }
    let rel_cost = normalize(&costs);
    let rel_window = normalize(&windows);

    let mut table = Table::new(vec![
        "strategy",
        "mean job CF",
        "relative cost",
        "mean task wall time",
        "relative time",
        "mean data traffic",
        "nodes per job",
    ]);
    for (i, kind) in kinds.into_iter().enumerate() {
        table.row(vec![
            kind.name().to_owned(),
            ratio(costs[i]),
            ratio(rel_cost[i]),
            ratio(windows[i]),
            ratio(rel_window[i]),
            ratio(traffic[i]),
            ratio(nodes_used[i]),
        ]);
    }
    println!("\nFig. 4 (b) — job completion cost and task execution time:\n{table}");
    println!("paper reference (relative): cost MS1 ≈ S2 ≈ 1.0, S3 ≈ 0.5;");
    println!("                            time MS1 ≈ S3 ≈ 1.0, S2 ≈ 0.5\n");

    println!("paper-shape checks:");
    verdict(
        "fig4b: S3 is the cheapest strategy",
        rel_cost[2] <= rel_cost[0] && rel_cost[2] <= rel_cost[1],
    );
    verdict(
        "fig4b: S2 has the shortest task wall times",
        rel_window[1] <= rel_window[0] && rel_window[1] <= rel_window[2],
    );
    verdict(
        "fig4b: MS1's padded reservations hold nodes longer than S2's tight ones",
        windows[0] > windows[1],
    );
    verdict(
        "fig4b: S3 consolidates onto the fewest nodes (it 'minimizes data exchanges')",
        nodes_used[2] <= nodes_used[0] && nodes_used[2] <= nodes_used[1],
    );
    verdict(
        "fig4b: replication (MS1) moves the most data over the network",
        traffic[0] >= traffic[1] && traffic[0] >= traffic[2],
    );
}
