//! Full-sweep strategy generation: planning sessions vs. the
//! pre-refactor clone-per-scenario path.
//!
//! Generates the paper's §4 random pool (20–30 nodes across three speed
//! groups), paints a *long* dense background calendar onto every node —
//! the situation a VO metascheduler actually faces, where per-node
//! timetables hold thousands of reservations but any single job only
//! scans the slice below its deadline — and then times full S1/S2/S3/MS1
//! strategy generation four ways:
//!
//! * `cloning`    — the pre-refactor baseline: every scenario of the sweep
//!   materializes two full `Vec<Timetable>` copies of the pool
//!   ([`Strategy::generate_cloning`]).
//! * `sequential` — one shared [`AvailabilitySnapshot`] per generation,
//!   copy-on-write overlays per scenario, scenarios swept in order
//!   ([`Strategy::generate_sequential`]).
//! * `parallel`   — same session, scenarios on freshly spawned scoped
//!   threads — the legacy spawn-per-sweep path
//!   ([`Strategy::generate_scoped`]), kept as the historical "parallel"
//!   column.
//! * `pooled`     — same session, scenarios drained by the process-wide
//!   persistent [`WorkerPool`] ([`Strategy::generate`], the production
//!   path; falls back to the sequential sweep on single-core machines).
//!
//! All four must produce bit-identical strategies (checked here cheaply,
//! and rigorously in `tests/determinism.rs` and
//! `crates/core/tests/prop_sweep_determinism.rs`). The acceptance
//! criterion is a ≥ 2× mean speedup of the session sweep over the cloning
//! sweep; the results are written to `BENCH_strategy_sweep.json` in the
//! working directory.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin strategy_sweep`
//! Knobs: `--seed N --load F --horizon TICKS --budget-ms N --out PATH`
//!
//! Pass `--telemetry` to additionally record one instrumented generation
//! per strategy kind, print the phase-breakdown table and write
//! `TELEMETRY_strategy_sweep.json` / `TELEMETRY_strategy_sweep.prom`.
//!
//! [`AvailabilitySnapshot`]: gridsched::model::availability::AvailabilitySnapshot
//! [`WorkerPool`]: gridsched::core::pool::WorkerPool

use std::time::Duration;

use gridsched::core::pool::WorkerPool;
use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::metrics::telemetry::Telemetry;
use gridsched::model::ids::JobId;
use gridsched::model::node::ResourcePool;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::{SimDuration, SimTime};
use gridsched::workload::background::{apply_background_load, BackgroundConfig};
use gridsched::workload::jobs::{generate_job, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::timing::{Group, Stats};
use gridsched_bench::{keys, verdict, Args};

/// A cheap structural fingerprint: enough to catch a divergence between
/// the three sweep implementations without hashing every placement (the
/// determinism suite does the exhaustive comparison).
fn fingerprint(s: &Strategy) -> Vec<(u64, u64, usize, usize)> {
    s.distributions()
        .iter()
        .map(|d| {
            (
                d.cost(),
                d.makespan().ticks(),
                d.placements().len(),
                d.collisions().len(),
            )
        })
        .collect()
}

struct KindResult {
    kind: StrategyKind,
    cloning: Stats,
    sequential: Stats,
    parallel: Stats,
    pooled: Stats,
}

fn json_line(r: &KindResult) -> String {
    format!(
        concat!(
            "    {{\"kind\": \"{}\", ",
            "\"cloning_mean_ns\": {}, \"cloning_min_ns\": {}, ",
            "\"sequential_mean_ns\": {}, \"sequential_min_ns\": {}, ",
            "\"parallel_mean_ns\": {}, \"parallel_min_ns\": {}, ",
            "\"pooled_mean_ns\": {}, \"pooled_min_ns\": {}, ",
            "\"speedup_sequential\": {:.3}, \"speedup_parallel\": {:.3}, ",
            "\"speedup_pooled\": {:.3}}}"
        ),
        r.kind,
        r.cloning.mean.as_nanos(),
        r.cloning.min.as_nanos(),
        r.sequential.mean.as_nanos(),
        r.sequential.min.as_nanos(),
        r.parallel.mean.as_nanos(),
        r.parallel.min.as_nanos(),
        r.pooled.mean.as_nanos(),
        r.pooled.min.as_nanos(),
        r.cloning.speedup_over(&r.sequential),
        r.cloning.speedup_over(&r.parallel),
        r.cloning.speedup_over(&r.pooled),
    )
}

fn main() {
    let args = Args::capture_validated(keys::STRATEGY_SWEEP);
    let seed: u64 = args.get("seed", 2009);
    let load: f64 = args.get("load", 0.8);
    let horizon: u64 = args.get("horizon", 20_000);
    let budget_ms: u64 = args.get("budget-ms", 400);
    let out: String = args.get("out", "BENCH_strategy_sweep.json".to_owned());
    let telemetry = if args.get("telemetry", false) {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };

    let mut master = SimRng::seed_from(seed);
    let mut pool: ResourcePool = generate_pool(&PoolConfig::default(), &mut master.fork(1));
    // Long, dense calendars: the clone-per-scenario baseline copies every
    // reservation on every node for every scenario, while the job's scan
    // is bounded by its deadline (a tiny prefix of the horizon).
    let reservations = apply_background_load(
        &mut pool,
        &BackgroundConfig {
            load,
            horizon: SimDuration::from_ticks(horizon),
            chunk_min: 1,
            chunk_max: 4,
        },
        &mut master.fork(2),
    );
    let job = generate_job(
        &JobConfig {
            deadline_factor: 4.0,
            ..JobConfig::default()
        },
        JobId::new(0),
        SimTime::ZERO,
        &mut master.fork(3),
    );
    // Spin the persistent workers up before timing so the pooled column
    // measures steady-state hand-off, not one-off thread spawn.
    let pool_workers = WorkerPool::global().workers();
    println!(
        "strategy_sweep: {} nodes, {reservations} background reservations over {horizon} ticks, seed {seed}, {pool_workers} persistent sweep workers\n",
        pool.len()
    );

    let group =
        Group::new("full-sweep strategy generation").with_budget(Duration::from_millis(budget_ms));
    let mut results = Vec::new();
    for kind in StrategyKind::ALL {
        let config = StrategyConfig::for_kind(kind, &pool);

        // The four sweeps must agree before their timings mean anything.
        let via_cloning = Strategy::generate_cloning(&job, &pool, &config, SimTime::ZERO);
        let via_sequential = Strategy::generate_sequential(&job, &pool, &config, SimTime::ZERO);
        let via_parallel = Strategy::generate_scoped(&job, &pool, &config, SimTime::ZERO);
        let via_pooled = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
        assert_eq!(
            fingerprint(&via_cloning),
            fingerprint(&via_sequential),
            "{kind}: session sweep diverged from cloning baseline"
        );
        assert_eq!(
            fingerprint(&via_sequential),
            fingerprint(&via_parallel),
            "{kind}: scoped-parallel sweep diverged from sequential sweep"
        );
        assert_eq!(
            fingerprint(&via_sequential),
            fingerprint(&via_pooled),
            "{kind}: pooled sweep diverged from sequential sweep"
        );
        if telemetry.is_enabled() {
            let via_instrumented = Strategy::generate_instrumented(
                &job,
                &pool,
                &config,
                SimTime::ZERO,
                &telemetry,
                None,
            );
            assert_eq!(
                fingerprint(&via_pooled),
                fingerprint(&via_instrumented),
                "{kind}: instrumented sweep diverged from uninstrumented sweep"
            );
        }

        let cloning = group.bench(&format!("{kind} cloning (pre-refactor)"), || {
            Strategy::generate_cloning(&job, &pool, &config, SimTime::ZERO)
        });
        let sequential = group.bench(&format!("{kind} session, sequential"), || {
            Strategy::generate_sequential(&job, &pool, &config, SimTime::ZERO)
        });
        let parallel = group.bench(&format!("{kind} session, scoped threads"), || {
            Strategy::generate_scoped(&job, &pool, &config, SimTime::ZERO)
        });
        let pooled = group.bench(&format!("{kind} session, pooled workers"), || {
            Strategy::generate(&job, &pool, &config, SimTime::ZERO)
        });
        results.push(KindResult {
            kind,
            cloning,
            sequential,
            parallel,
            pooled,
        });
    }

    let total = |f: fn(&KindResult) -> Duration| -> f64 {
        results.iter().map(|r| f(r).as_secs_f64()).sum()
    };
    let cloning_total = total(|r| r.cloning.mean);
    let sequential_total = total(|r| r.sequential.mean);
    let parallel_total = total(|r| r.parallel.mean);
    let pooled_total = total(|r| r.pooled.mean);
    let speedup_sequential = cloning_total / sequential_total.max(f64::EPSILON);
    let speedup_parallel = cloning_total / parallel_total.max(f64::EPSILON);
    let speedup_pooled = cloning_total / pooled_total.max(f64::EPSILON);
    println!(
        "\noverall mean per generation: cloning {:.3} ms, session sequential {:.3} ms ({speedup_sequential:.2}x), session scoped {:.3} ms ({speedup_parallel:.2}x), session pooled {:.3} ms ({speedup_pooled:.2}x)",
        cloning_total * 1e3 / results.len() as f64,
        sequential_total * 1e3 / results.len() as f64,
        parallel_total * 1e3 / results.len() as f64,
        pooled_total * 1e3 / results.len() as f64,
    );

    let kinds_json = results
        .iter()
        .map(json_line)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"strategy_sweep\",\n",
            "  \"seed\": {seed},\n",
            "  \"nodes\": {nodes},\n",
            "  \"background_reservations\": {reservations},\n",
            "  \"background_horizon_ticks\": {horizon},\n",
            "  \"background_load\": {load},\n",
            "  \"budget_ms\": {budget_ms},\n",
            "  \"pool_workers\": {workers},\n",
            "  \"kinds\": [\n{kinds}\n  ],\n",
            "  \"overall_speedup_sequential\": {ss:.3},\n",
            "  \"overall_speedup_parallel\": {sp:.3},\n",
            "  \"overall_speedup_pooled\": {spool:.3}\n",
            "}}\n"
        ),
        seed = seed,
        nodes = pool.len(),
        reservations = reservations,
        horizon = horizon,
        load = load,
        budget_ms = budget_ms,
        workers = pool_workers,
        kinds = kinds_json,
        ss = speedup_sequential,
        sp = speedup_parallel,
        spool = speedup_pooled,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    if telemetry.is_enabled() {
        let snapshot = telemetry.snapshot();
        println!("\ntelemetry phase breakdown (instrumented generations):");
        println!("{}", snapshot.phase_table());
        std::fs::write("TELEMETRY_strategy_sweep.json", snapshot.to_json())
            .expect("write TELEMETRY_strategy_sweep.json");
        std::fs::write("TELEMETRY_strategy_sweep.prom", snapshot.to_prometheus())
            .expect("write TELEMETRY_strategy_sweep.prom");
        println!("wrote TELEMETRY_strategy_sweep.json and TELEMETRY_strategy_sweep.prom");
    }

    verdict(
        "all four sweeps produce bit-identical strategies",
        true, // asserted above, per kind
    );
    verdict(
        "planning sessions are >= 2x faster than clone-per-scenario sweeps",
        speedup_pooled >= 2.0,
    );
    // Only meaningful with real parallel hardware: with zero persistent
    // workers the pooled sweep *is* the sequential sweep.
    if pool_workers >= 1 {
        verdict(
            "pooled sweep is no slower than the sequential sweep",
            speedup_pooled >= speedup_sequential,
        );
    }
}
