//! `chaos_run` — the differential chaos sweep as a CLI.
//!
//! Normal mode generates campaigns from a master seed and runs each one
//! across every differential axis (executors, flow-layer collapse,
//! telemetry, batch-vs-online). A clean sweep exits 0; a divergence or
//! oracle violation is shrunk to a minimal campaign, written as a
//! self-contained `chaos-repro.json`, and the exact replay command is
//! printed before exiting 1.
//!
//! Flags:
//!
//! * `--seed N` — master seed of the sweep (default `0xC4A05EED`).
//! * `--seed-from-run-id` — derive the master seed from the
//!   `GITHUB_RUN_ID` environment variable instead, so every CI run
//!   fuzzes a fresh slice of the campaign space while staying exactly
//!   reproducible from the run id printed in the log.
//! * `--campaigns N` — campaign budget (default 64).
//! * `--budget-ms N` — wall-clock budget; no new campaign starts after
//!   it elapses. `0` disables the cutoff (default 2000).
//! * `--artifact PATH` — where to write the repro on failure
//!   (default `chaos-repro.json`).
//! * `--out PATH` — also write a flat JSON sweep summary.
//! * `--inject AXIS` — test-only divergence injection
//!   (`executors|collapse|telemetry|batch-online`); exercises the
//!   catch → shrink → replay pipeline against a forced failure.
//! * `--replay PATH` — replay a previously written artifact instead of
//!   sweeping: exit 0 if the recorded failure still reproduces, 1 if it
//!   no longer does (the signal a fix landed).

use std::time::{Duration, Instant};

use gridsched::metrics::telemetry::{Counter, Telemetry};
use gridsched_bench::{keys, Args};
use gridsched_chaos::{replay, run_sweep, Axis, ReproArtifact, SweepConfig};

fn main() {
    let args = Args::capture_validated(keys::CHAOS_RUN);
    if args.has("replay") {
        let path: String = args.get("replay", String::new());
        std::process::exit(replay_artifact(&path));
    }
    std::process::exit(sweep(&args));
}

fn replay_artifact(path: &str) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let artifact = match ReproArtifact::from_json(&json) {
        Ok(artifact) => artifact,
        Err(e) => {
            eprintln!("error: cannot parse {path}: {e}");
            return 2;
        }
    };
    println!("replaying {path}");
    println!("  recorded: {}", artifact.message);
    match replay(&artifact) {
        Some(failure) => {
            println!("  observed: {failure}");
            println!("REPRODUCED");
            0
        }
        None => {
            println!("  observed: all axes agree, oracle clean");
            println!("NOT REPRODUCED (fixed?)");
            1
        }
    }
}

fn sweep(args: &Args) -> i32 {
    let mut master_seed: u64 = args.get("seed", 0xC4A0_5EED);
    if args.get("seed-from-run-id", false) {
        match std::env::var("GITHUB_RUN_ID")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(run_id) => master_seed = run_id,
            None => eprintln!(
                "warning: --seed-from-run-id without a numeric GITHUB_RUN_ID; \
                 using seed {master_seed:#x}"
            ),
        }
    }
    let budget_ms: u64 = args.get("budget-ms", 2_000);
    let inject = args.has("inject").then(|| {
        let name: String = args.get("inject", String::new());
        Axis::parse(&name).unwrap_or_else(|| {
            eprintln!("error: --inject {name}: unknown axis");
            std::process::exit(2);
        })
    });
    let config = SweepConfig {
        master_seed,
        campaigns: args.get("campaigns", 64),
        deadline: (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms)),
        inject,
        ..SweepConfig::default()
    };

    println!("chaos_run: differential sweep");
    println!("  master seed  {master_seed:#x}");
    println!(
        "  campaigns    {} (budget {budget_ms} ms)",
        config.campaigns
    );
    if let Some(axis) = inject {
        println!("  injecting    {axis} (test-only)");
    }
    let telemetry = Telemetry::new();
    let started = Instant::now();
    let outcome = run_sweep(&config, &telemetry);
    let elapsed = started.elapsed();
    println!(
        "  ran {} campaigns in {:.1} ms ({} online-compared, {} skipped as incomparable)",
        outcome.campaigns_run,
        elapsed.as_secs_f64() * 1e3,
        outcome.online_compared,
        outcome.online_skipped,
    );

    if let Some(path) = args
        .has("out")
        .then(|| args.get("out", "BENCH_chaos.json".to_owned()))
    {
        let summary = summary_json(master_seed, &outcome, elapsed, &telemetry);
        if let Err(e) = std::fs::write(&path, summary) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
        println!("  summary -> {path}");
    }

    let Some(repro) = outcome.repro else {
        println!("CLEAN");
        return 0;
    };
    let artifact_path: String = args.get("artifact", "chaos-repro.json".to_owned());
    println!("FAILURE: {}", repro.message);
    println!(
        "  shrunk to jobs={} domains={} nodes={}..{} faults={} horizon={} ({} attempts)",
        repro.campaign.jobs,
        repro.campaign.domains,
        repro.campaign.nodes_min,
        repro.campaign.nodes_max,
        repro.campaign.outages + repro.campaign.degradations + repro.campaign.transfer_faults,
        repro.campaign.horizon,
        repro.shrink_attempts,
    );
    if let Err(e) = std::fs::write(&artifact_path, repro.to_json(&artifact_path)) {
        eprintln!("error: cannot write {artifact_path}: {e}");
        return 2;
    }
    println!("  repro -> {artifact_path}");
    println!("  replay with: {}", repro.replay_command(&artifact_path));
    1
}

fn summary_json(
    master_seed: u64,
    outcome: &gridsched_chaos::SweepOutcome,
    elapsed: Duration,
    telemetry: &Telemetry,
) -> String {
    format!(
        "{{\n  \"master_seed\": \"{master_seed:#x}\",\n  \"campaigns_run\": {},\n  \
         \"online_compared\": {},\n  \"online_skipped\": {},\n  \"divergences\": {},\n  \
         \"clean\": {},\n  \"elapsed_ms\": {:.3}\n}}\n",
        outcome.campaigns_run,
        outcome.online_compared,
        outcome.online_skipped,
        telemetry.counter(Counter::ChaosDivergences),
        outcome.clean(),
        elapsed.as_secs_f64() * 1e3,
    )
}
