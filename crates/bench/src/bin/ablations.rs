//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Two-phase collision handling vs. direct allocation** — the paper's
//!    method allocates each critical work against the *background* first
//!    and resolves collisions afterwards; the ablation allocates directly
//!    against the true availability. Compares cost, makespan and the
//!    collision statistics that only the two-phase variant can produce.
//! 2. **VO-wide co-allocation vs. per-domain dispatch** — Fig. 1's job
//!    managers each control one domain; the metascheduler reallocates a
//!    job to another domain when its manager cannot place it. Compares
//!    admissibility and cost against scheduling across the whole VO.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin ablations`
//! Knobs: `--jobs N --seed N --load F`

use gridsched::core::method::{
    build_distribution, build_distribution_direct, build_distribution_in_domain, ScheduleRequest,
};
use gridsched::core::strategy::{StrategyConfig, StrategyKind};
use gridsched::metrics::summary::Summary;
use gridsched::metrics::table::{pct, ratio, Table};
use gridsched::model::ids::JobId;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::background::{apply_background_load, BackgroundConfig};
use gridsched::workload::jobs::{generate_job, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::{keys, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::ABLATIONS);
    let jobs: usize = args.get("jobs", 1_000);
    let load: f64 = args.get("load", 0.5);
    let seed: u64 = args.get("seed", 2009);
    let job_config = JobConfig {
        deadline_factor: args.get("deadline-factor", 3.0),
        ..JobConfig::default()
    };
    println!("ablations: {jobs} jobs, background load {load}, seed {seed}\n");

    let mut master = SimRng::seed_from(seed);

    // --- Ablation 1: two-phase vs direct -------------------------------
    let mut tp_cost = Summary::new();
    let mut di_cost = Summary::new();
    let mut tp_makespan = Summary::new();
    let mut di_makespan = Summary::new();
    let mut tp_ok = 0usize;
    let mut di_ok = 0usize;
    let mut collisions = 0usize;

    // --- Ablation 2: VO-wide vs domain dispatch ------------------------
    let mut vo_ok = 0usize;
    let mut dom_first_ok = 0usize;
    let mut dom_realloc_ok = 0usize;
    let mut vo_cost = Summary::new();
    let mut dom_cost = Summary::new();

    for i in 0..jobs {
        let mut rng = master.fork(i as u64);
        let mut pool = generate_pool(&PoolConfig::default(), &mut rng);
        apply_background_load(
            &mut pool,
            &BackgroundConfig {
                load,
                ..BackgroundConfig::default()
            },
            &mut rng,
        );
        let job = generate_job(&job_config, JobId::new(i as u64), SimTime::ZERO, &mut rng);
        let config = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let req = ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: config.policy(),
            scenario: gridsched::model::estimate::EstimateScenario::BEST,
            release: SimTime::ZERO,
        };

        if let Ok(d) = build_distribution(&req) {
            tp_ok += 1;
            tp_cost.record(d.cost() as f64);
            tp_makespan.record(d.makespan().ticks() as f64);
            collisions += d.collisions().len();
            vo_ok += 1;
            vo_cost.record(d.cost() as f64);
        }
        if let Ok(d) = build_distribution_direct(&req) {
            di_ok += 1;
            di_cost.record(d.cost() as f64);
            di_makespan.record(d.makespan().ticks() as f64);
        }

        // Domain dispatch: the metascheduler ranks domains by forecast
        // booked load (§5's "load level forecasting"), least-loaded first.
        let domains = gridsched::metrics::forecast::rank_domains_by_forecast(
            &pool,
            SimTime::ZERO,
            gridsched::sim::time::SimDuration::from_ticks(200),
        );
        for (attempt, domain) in domains.into_iter().enumerate() {
            if let Ok(d) = build_distribution_in_domain(&req, domain) {
                if attempt == 0 {
                    dom_first_ok += 1;
                } else {
                    dom_realloc_ok += 1;
                }
                dom_cost.record(d.cost() as f64);
                break;
            }
        }
    }

    let mut t1 = Table::new(vec![
        "variant",
        "admissible %",
        "mean CF",
        "mean makespan",
        "collisions",
    ]);
    t1.row(vec![
        "two-phase (paper)".into(),
        pct(tp_ok as f64 / jobs as f64),
        ratio(tp_cost.mean()),
        ratio(tp_makespan.mean()),
        collisions.to_string(),
    ]);
    t1.row(vec![
        "direct (ablation)".into(),
        pct(di_ok as f64 / jobs as f64),
        ratio(di_cost.mean()),
        ratio(di_makespan.mean()),
        "0 (by construction)".into(),
    ]);
    println!("ablation 1 — collision handling:\n{t1}");
    verdict(
        "two-phase and direct admit comparably many jobs (resolution is safe)",
        (tp_ok as f64 - di_ok as f64).abs() / jobs as f64 <= 0.02,
    );
    verdict(
        "only the two-phase variant observes collisions (the Fig. 3b statistic)",
        collisions > 0,
    );

    let dom_ok = dom_first_ok + dom_realloc_ok;
    let mut t2 = Table::new(vec!["variant", "admissible %", "mean CF", "note"]);
    t2.row(vec![
        "VO-wide co-allocation".into(),
        pct(vo_ok as f64 / jobs as f64),
        ratio(vo_cost.mean()),
        String::new(),
    ]);
    t2.row(vec![
        "per-domain dispatch".into(),
        pct(dom_ok as f64 / jobs as f64),
        ratio(dom_cost.mean()),
        format!("{dom_realloc_ok} jobs needed inter-domain reallocation"),
    ]);
    println!("\nablation 2 — co-allocation scope:\n{t2}");
    // Note: the critical-works heuristic is not monotone in the node set —
    // VO-wide chains may spread early tasks across domains and strand the
    // later chains, while domain-local placement keeps transfers short.
    verdict(
        "locality helps admissibility under remote access (domain dispatch >= VO-wide)",
        dom_ok >= vo_ok,
    );
    verdict(
        "locality costs quota: domain dispatch has a higher mean CF than VO-wide",
        dom_cost.mean() > vo_cost.mean(),
    );
    verdict(
        "the metascheduler's inter-domain reallocation rescues some jobs",
        dom_realloc_ok > 0,
    );
}
