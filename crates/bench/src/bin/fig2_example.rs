//! Fig. 2 — the paper's worked example as a checked experiment.
//!
//! Regenerates, from the exact task table of Fig. 2a:
//! - the ranked critical works (12, 11, 10, 9 time units);
//! - a strategy fragment of supporting schedules on the four node types;
//! - the cost-function ordering (cheaper schedules shift work off the
//!   fastest nodes, like the paper's `CF2 = 37 < CF1 = CF3 = 41`);
//! - a collision between critical works and its resolution.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin fig2_example`

use gridsched::core::chains::ranked_maximal_paths;
use gridsched::core::method::{build_distribution, ScheduleRequest};
use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::data::policy::DataPolicy;
use gridsched::metrics::table::Table;
use gridsched::model::estimate::EstimateScenario;
use gridsched::model::fixtures::{fig2_job, fig2_job_with_deadline};
use gridsched::model::ids::DomainId;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::sim::time::{SimDuration, SimTime};
use gridsched_bench::verdict;

fn fig2_pool() -> ResourcePool {
    let mut pool = ResourcePool::new();
    for j in 1..=4u32 {
        pool.add_node(
            DomainId::new(0),
            Perf::new(1.0 / f64::from(j)).expect("valid perf"),
        );
    }
    pool
}

fn main() {
    let job = fig2_job();
    let pool = fig2_pool();

    // Task table.
    let mut task_table = Table::new(vec!["task", "V", "T1", "T2", "T3", "T4"]);
    for task in job.tasks() {
        let mut row = vec![task.id().to_string(), format!("{}", task.volume())];
        for j in 1..=4u32 {
            let perf = Perf::new(1.0 / f64::from(j)).expect("valid perf");
            row.push(task.duration_on(perf).ticks().to_string());
        }
        task_table.row(row);
    }
    println!("Fig. 2a task estimations:\n{task_table}");

    // Critical works.
    let paths = ranked_maximal_paths(
        &job,
        |t| job.task(t).duration_on(Perf::FULL),
        |e| SimDuration::from_ticks((e.volume().units() / 5.0).ceil() as u64),
        16,
    );
    let mut works_table = Table::new(vec!["critical work", "length"]);
    for p in &paths {
        let names: Vec<String> = p.tasks.iter().map(|t| t.to_string()).collect();
        works_table.row(vec![names.join("-"), p.length.ticks().to_string()]);
    }
    println!("critical works:\n{works_table}");
    let lengths: Vec<u64> = paths.iter().map(|p| p.length.ticks()).collect();
    verdict(
        "fig2: critical works are 12, 11, 10, 9 time units",
        lengths == [12, 11, 10, 9],
    );

    // Strategy fragment on the 0..20 axis.
    let config = StrategyConfig::for_kind(StrategyKind::S2, &pool);
    let strategy = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
    let mut dist_table = Table::new(vec!["distribution", "CF", "makespan", "collisions"]);
    for (i, d) in strategy.distributions().iter().enumerate() {
        dist_table.row(vec![
            format!("Distribution {}", i + 1),
            d.cost().to_string(),
            d.makespan().to_string(),
            d.collisions().len().to_string(),
        ]);
    }
    println!("strategy fragment (deadline 20):\n{dist_table}");
    verdict(
        "fig2: every supporting schedule fits the paper's 0..20 time axis",
        strategy
            .distributions()
            .iter()
            .all(|d| d.makespan() <= SimTime::from_ticks(20)),
    );

    // Cost ordering under deadline pressure.
    let policy = DataPolicy::remote_access();
    let cost_at = |deadline: u64| {
        build_distribution(&ScheduleRequest {
            job: &fig2_job_with_deadline(SimDuration::from_ticks(deadline)),
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        })
        .map(|d| d.cost())
    };
    let tight = cost_at(14).expect("deadline 14 feasible");
    let loose = cost_at(40).expect("deadline 40 feasible");
    println!("cost under deadline 14: {tight}; under deadline 40: {loose}");
    verdict(
        "fig2: faster completion costs more quota (CF ordering of Fig. 2b)",
        tight > loose,
    );

    // Collision on a scarce pool.
    let mut scarce = ResourcePool::new();
    scarce.add_node(DomainId::new(0), Perf::FULL);
    scarce.add_node(DomainId::new(0), Perf::FULL);
    let dist = build_distribution(&ScheduleRequest {
        job: &fig2_job_with_deadline(SimDuration::from_ticks(40)),
        pool: &scarce,
        policy: &policy,
        scenario: EstimateScenario::BEST,
        release: SimTime::ZERO,
    })
    .expect("feasible on two nodes");
    for c in dist.collisions() {
        println!("collision: {c}");
    }
    verdict(
        "fig2: critical works collide on scarce resources and are reallocated",
        !dist.collisions().is_empty()
            && dist
                .validate(
                    &fig2_job_with_deadline(SimDuration::from_ticks(40)),
                    &scarce,
                )
                .is_ok(),
    );
}
