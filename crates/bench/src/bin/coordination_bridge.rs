//! Coordination across the two levels: what application-level reservations
//! cost the local queues.
//!
//! §5: "advance reservations have impact on the quality of service …
//! preliminary reservation nearly always increases queue waiting time."
//! Here the reservations are not synthetic: they are the wall-time windows
//! of real supporting schedules built by the critical works method, pushed
//! through [`gridsched::flow::bridge`] into each domain's local batch
//! system, which also serves its own independent jobs.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin coordination_bridge`
//! Knobs: `--jobs N --local-jobs N --seed N`

use gridsched::batch::cluster::ClusterConfig;
use gridsched::batch::policy::QueuePolicy;
use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::flow::bridge::domain_reservations;
use gridsched::metrics::table::{ratio, Table};
use gridsched::model::ids::GlobalTaskId;
use gridsched::model::node::ResourcePool;
use gridsched::model::timetable::ReservationOwner;
use gridsched::sim::rng::SimRng;
use gridsched::workload::batch::{generate_batch_jobs, BatchWorkloadConfig};
use gridsched::workload::jobs::{generate_stream, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::{keys, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::COORDINATION_BRIDGE);
    let grid_jobs: usize = args.get("jobs", 60);
    let local_jobs: usize = args.get("local-jobs", 250);
    let seed: u64 = args.get("seed", 2009);
    println!(
        "coordination bridge: {grid_jobs} grid jobs per strategy, {local_jobs} local jobs per domain"
    );

    let mut table = Table::new(vec![
        "strategy",
        "reserved node-ticks",
        "local wait (no grid)",
        "local wait (with grid)",
        "inflation",
    ]);
    let mut inflations = Vec::new();
    for kind in [StrategyKind::S1, StrategyKind::S2, StrategyKind::S3] {
        let mut rng = SimRng::seed_from(seed);
        let mut pool = generate_pool(&PoolConfig::default(), &mut rng);
        let config = StrategyConfig::for_kind(kind, &pool);
        let stream = generate_stream(
            &JobConfig {
                deadline_factor: 4.0,
                ..JobConfig::default()
            },
            grid_jobs,
            gridsched::sim::time::SimDuration::from_ticks(8),
            &mut rng,
        );

        // Activate the cheapest schedule of each admissible grid job,
        // committing its reservations so later jobs plan around them.
        let mut activated: Vec<gridsched::core::distribution::Distribution> = Vec::new();
        for job in &stream {
            let strategy = Strategy::generate(job, &pool, &config, job.release());
            if let Some(d) = strategy.best_by_cost() {
                for p in d.placements() {
                    pool.timetable_mut(p.node)
                        .reserve(
                            p.window,
                            ReservationOwner::Task(GlobalTaskId {
                                job: job.id(),
                                task: p.task,
                            }),
                        )
                        .expect("schedule built against current availability");
                }
                activated.push(d.clone());
            }
        }

        // Each domain's local batch system runs its own workload around
        // the grid reservations.
        let (reserved_ticks, wait_plain, wait_grid) =
            domain_waits(&pool, &activated, local_jobs, seed);
        let inflation = if wait_plain > 0.0 {
            wait_grid / wait_plain
        } else {
            1.0
        };
        inflations.push(inflation);
        table.row(vec![
            kind.name().to_owned(),
            reserved_ticks.to_string(),
            ratio(wait_plain),
            ratio(wait_grid),
            format!("{inflation:.2}x"),
        ]);
    }
    println!("\n{table}");
    println!("paper-shape checks:");
    verdict(
        "grid reservations inflate local waiting under every strategy (§5)",
        inflations.iter().all(|&i| i >= 1.0),
    );
}

/// Mean local wait across domains, without and with the grid reservations.
fn domain_waits(
    pool: &ResourcePool,
    activated: &[gridsched::core::distribution::Distribution],
    local_jobs: usize,
    seed: u64,
) -> (u64, f64, f64) {
    let mut reserved_ticks = 0u64;
    let mut plain_total = 0.0;
    let mut grid_total = 0.0;
    let domains = pool.domains();
    for &domain in &domains {
        let capacity = pool.in_domain(domain).count() as u32;
        let workload = generate_batch_jobs(
            &BatchWorkloadConfig {
                jobs: local_jobs,
                width_max: capacity.min(4),
                mean_gap: 4,
                ..BatchWorkloadConfig::default()
            },
            &mut SimRng::seed_from(seed ^ u64::from(domain.raw())),
        );
        let plain = ClusterConfig::new(capacity, QueuePolicy::EasyBackfill).run(&workload);
        let mut with_grid = ClusterConfig::new(capacity, QueuePolicy::EasyBackfill);
        for dist in activated {
            for r in domain_reservations(dist, pool, domain) {
                reserved_ticks += r.window.duration().ticks();
                with_grid.reserve(r);
            }
        }
        let grid = with_grid.run(&workload);
        plain_total += plain.mean_wait();
        grid_total += grid.mean_wait();
    }
    let n = domains.len() as f64;
    (reserved_ticks, plain_total / n, grid_total / n)
}
