//! Fig. 4 (a) — average node load level per performance group, per
//! strategy, under coordinated job-flow + application-level scheduling.
//!
//! Paper's reading: S2 balances load best across groups; S1 "tries to
//! occupy 'slow' nodes"; S3 "the processors with the highest performance".
//!
//! Run with: `cargo run --release -p gridsched-bench --bin fig4_load`
//! Knobs: `--jobs N --seed N --perturbations N`

use gridsched::core::strategy::StrategyKind;
use gridsched::metrics::table::{pct, Table};
use gridsched::model::perf::PerfGroup;
use gridsched_bench::{campaign_for, fig4_campaign_base, keys, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::FIG4_LOAD);
    let mut base = fig4_campaign_base(&args);
    // Group-load preferences only show under contention: this panel runs a
    // denser campaign than Fig. 4 (b)/(c) unless overridden.
    if !args.has("jobs") {
        base.jobs = 800;
    }
    if !args.has("job-gap") {
        base.job_gap = gridsched::sim::time::SimDuration::from_ticks(3);
    }
    if !args.has("horizon") {
        base.horizon = gridsched::sim::time::SimDuration::from_ticks(2_500);
    }
    if !args.has("load") {
        base.background_load = 0.25;
    }
    if !args.has("deadline-factor") {
        base.job_config.deadline_factor = 2.65;
    }
    println!(
        "fig4a: {} jobs per strategy, horizon {}, seed {}",
        base.jobs, base.horizon, base.seed
    );

    let kinds = [StrategyKind::S1, StrategyKind::S2, StrategyKind::S3];
    let repeats: u64 = args.get("repeats", 3);
    let mut table = Table::new(vec!["strategy", "fast %", "medium %", "slow %", "spread"]);
    let mut loads: Vec<Vec<f64>> = Vec::new();
    for kind in kinds {
        // Average over several seeds: per-group preferences are a small
        // systematic effect on top of per-campaign noise.
        let mut levels = vec![0.0f64; 3];
        for r in 0..repeats {
            let mut cfg = base.clone();
            cfg.seed = base.seed + r;
            let report = campaign_for(kind, &cfg);
            for (i, g) in PerfGroup::ALL.into_iter().enumerate() {
                levels[i] += report.load_level(g) / repeats as f64;
            }
        }
        table.row(vec![
            kind.name().to_owned(),
            pct(levels[0]),
            pct(levels[1]),
            pct(levels[2]),
            pct(spread(&levels)),
        ]);
        loads.push(levels);
    }
    println!("\nFig. 4 (a) — task load by node group:\n{table}");

    println!("paper-shape checks:");
    verdict(
        "fig4a: S2 balances groups better than S3",
        spread(&loads[1]) < spread(&loads[2]),
    );
    verdict(
        "fig4a: S2 balances groups best of all three (paper's strict reading)",
        spread(&loads[1]) <= spread(&loads[0]) && spread(&loads[1]) <= spread(&loads[2]),
    );
    verdict(
        "fig4a: S1 puts a larger share of its load on slow nodes than S3 does",
        relative_slow(&loads[0]) > relative_slow(&loads[2]),
    );
    verdict(
        "fig4a: S3 concentrates on the fastest group",
        loads[2][0] >= loads[2][1] && loads[2][0] >= loads[2][2],
    );
}

fn spread(levels: &[f64]) -> f64 {
    levels.iter().copied().fold(0.0f64, f64::max) - levels.iter().copied().fold(1.0f64, f64::min)
}

/// Slow-group load as a share of the strategy's total load.
fn relative_slow(levels: &[f64]) -> f64 {
    let total: f64 = levels.iter().sum();
    if total <= 0.0 {
        0.0
    } else {
        levels[2] / total
    }
}
