//! Online serving throughput: streamed arrivals through the bounded
//! admission queue, end to end.
//!
//! Runs one instrumented [`run_online_instrumented`] campaign — Poisson
//! arrivals, deadline/budget admission probes, incremental replanning,
//! the persistent sweep worker pool — and reports:
//!
//! * **sustained jobs/sec** — admitted jobs divided by the wall-clock time
//!   of the whole serving loop (the rate the metascheduler actually kept
//!   up with, not the offered rate);
//! * **time-to-plan p50/p99** — wall-clock duration of the `admit` spans,
//!   i.e. full strategy-sweep generation plus activation per admitted job;
//! * **queue-wait p50/p99** — sim-time ticks between arrival and
//!   admission (from the report's queue-wait histogram, so these two
//!   quantiles are deterministic per seed);
//! * the six online QoS counters, reconciled against the admission
//!   summary, and the trace-invariant oracle verdict.
//!
//! Results land in `BENCH_online_throughput.json` (override with
//! `--out`). CI runs a reduced version of this benchmark and gates it via
//! `bench_check -- --online ...`: sustained throughput must be nonzero
//! and the oracle must report zero violations.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin online_throughput`
//! Knobs: `--jobs N --seed N --rate F --queue N --perturbations N --out PATH`

use std::time::Instant;

use gridsched::flow::faults::FaultConfig;
use gridsched::flow::online::{run_online_instrumented, OnlineConfig};
use gridsched::flow::oracle::audit;
use gridsched::flow::simulation::CampaignConfig;
use gridsched::metrics::telemetry::Telemetry;
use gridsched::workload::arrivals::ArrivalProcess;
use gridsched_bench::Args;

/// Quantile over a sorted slice (nearest-rank); 0 when empty.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::capture();
    let jobs: usize = args.get("jobs", 60);
    let seed: u64 = args.get("seed", 2009);
    let rate: f64 = args.get("rate", 0.15);
    let queue: usize = args.get("queue", 16);
    let perturbations: usize = args.get("perturbations", 40);
    let out: String = args.get("out", "BENCH_online_throughput.json".to_owned());

    let cfg = OnlineConfig {
        base: CampaignConfig {
            jobs,
            perturbations,
            faults: FaultConfig {
                outages: 3,
                degradations: 2,
                transfer_faults: 3,
                ..FaultConfig::none()
            },
            collect_trace: true,
            seed,
            ..CampaignConfig::default()
        },
        arrivals: ArrivalProcess::Poisson { rate },
        queue_capacity: queue,
        ..OnlineConfig::default()
    };

    let telemetry = Telemetry::new();
    let start = Instant::now();
    let report = run_online_instrumented(&cfg, &telemetry);
    let wall = start.elapsed();

    let s = report.summary;
    let wall_secs = wall.as_secs_f64().max(1e-9);
    let sustained = s.admitted as f64 / wall_secs;

    // Time-to-plan: every `admit` span is one full sweep + activation.
    let snapshot = telemetry.snapshot();
    let mut plan_ns: Vec<u64> = snapshot
        .spans()
        .iter()
        .filter(|span| span.name == "admit")
        .map(|span| span.end_ns.saturating_sub(span.start_ns))
        .collect();
    plan_ns.sort_unstable();
    let plan_p50 = quantile_ns(&plan_ns, 0.50);
    let plan_p99 = quantile_ns(&plan_ns, 0.99);

    let wait_p50 = report.queue_wait.quantile(0.50).unwrap_or(0.0);
    let wait_p99 = report.queue_wait.quantile(0.99).unwrap_or(0.0);

    let oracle_violations = match audit(&report.report) {
        Ok(()) => 0,
        Err(v) => {
            eprintln!("oracle violation: {v}");
            1
        }
    };
    let reconciled = report.counters_reconcile();

    println!("online_throughput: seed {seed}, rate {rate}, queue {queue}, {jobs} offered jobs");
    println!(
        "  arrived {}  admitted {}  rejected {} (queue-full {}, unmeetable {})  deferred {}",
        s.arrived, s.admitted, s.rejected, s.rejected_queue_full, s.rejected_unmeetable, s.deferred
    );
    println!(
        "  probes {}  incremental replans {}  queue peak {}",
        s.probes, s.incremental_replans, s.queue_peak
    );
    println!(
        "  wall {:.1} ms  sustained {:.1} admitted jobs/sec",
        wall.as_secs_f64() * 1e3,
        sustained
    );
    println!(
        "  time-to-plan p50 {:.2} ms  p99 {:.2} ms  ({} admissions timed)",
        plan_p50 as f64 / 1e6,
        plan_p99 as f64 / 1e6,
        plan_ns.len()
    );
    println!("  queue wait p50 {wait_p50:.0} ticks  p99 {wait_p99:.0} ticks (sim time)");
    println!("  counters reconcile: {reconciled}  oracle violations: {oracle_violations}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"online_throughput\",\n",
            "  \"seed\": {seed},\n",
            "  \"rate\": {rate},\n",
            "  \"queue_capacity\": {queue},\n",
            "  \"jobs_offered\": {jobs},\n",
            "  \"jobs_arrived\": {arrived},\n",
            "  \"jobs_admitted\": {admitted},\n",
            "  \"jobs_rejected\": {rejected},\n",
            "  \"jobs_deferred\": {deferred},\n",
            "  \"admission_probes\": {probes},\n",
            "  \"incremental_replans\": {replans},\n",
            "  \"queue_peak_depth\": {peak},\n",
            "  \"wall_ms\": {wall_ms:.3},\n",
            "  \"sustained_jobs_per_sec\": {sustained:.3},\n",
            "  \"plan_p50_ns\": {p50},\n",
            "  \"plan_p99_ns\": {p99},\n",
            "  \"queue_wait_p50_ticks\": {wait50:.1},\n",
            "  \"queue_wait_p99_ticks\": {wait99:.1},\n",
            "  \"counters_reconcile\": {reconciled},\n",
            "  \"oracle_violations\": {violations}\n",
            "}}\n"
        ),
        seed = seed,
        rate = rate,
        queue = queue,
        jobs = jobs,
        arrived = s.arrived,
        admitted = s.admitted,
        rejected = s.rejected,
        deferred = s.deferred,
        probes = s.probes,
        replans = s.incremental_replans,
        peak = s.queue_peak,
        wall_ms = wall.as_secs_f64() * 1e3,
        sustained = sustained,
        p50 = plan_p50,
        p99 = plan_p99,
        wait50 = wait_p50,
        wait99 = wait_p99,
        reconciled = reconciled,
        violations = oracle_violations,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("  wrote {out}");

    if oracle_violations > 0 || !reconciled {
        std::process::exit(1);
    }
}
