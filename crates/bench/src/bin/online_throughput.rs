//! Online serving throughput: streamed arrivals through the bounded
//! admission queue, end to end.
//!
//! Runs one instrumented [`run_online_instrumented`] campaign — Poisson
//! arrivals, deadline/budget admission probes, incremental replanning,
//! the persistent sweep worker pool — and reports:
//!
//! * **sustained jobs/sec** — admitted jobs divided by the wall-clock time
//!   of the whole serving loop (the rate the metascheduler actually kept
//!   up with, not the offered rate);
//! * **time-to-plan p50/p99** — wall-clock duration of the `admit` spans,
//!   i.e. full strategy-sweep generation plus activation per admitted job;
//! * **queue-wait p50/p99** — sim-time ticks between arrival and
//!   admission (from the report's queue-wait histogram, so these two
//!   quantiles are deterministic per seed);
//! * the six online QoS counters, reconciled against the admission
//!   summary, and the trace-invariant oracle verdict.
//!
//! Results land in `BENCH_online_throughput.json` (override with
//! `--out`). CI runs a reduced version of this benchmark and gates it via
//! `bench_check -- --online ...`: sustained throughput must be nonzero
//! and the oracle must report zero violations.
//!
//! `--domains N` shards the pool into `N` node domains; `--flat`
//! collapses the flow layer to a single job manager over the *same* pool
//! — the monolithic baseline. A flat run makes bit-identical campaign
//! decisions (cross-domain scans order by global activation sequence), so
//! the sustained-throughput ratio between a sharded and a flat run
//! isolates exactly the hierarchy's bookkeeping cost; `bench_check --
//! --domains ...` gates on it. The JSON carries `domains` (the flow-layer
//! manager count: 1 for `--flat`) plus per-domain
//! activation/break/migration counts.
//!
//! `--mono-out PATH` additionally runs the collapsed (single-manager)
//! variant of the same campaign and writes its JSON to `PATH`. The two
//! variants run **interleaved inside this one process** — each repeat
//! times the sharded loop then the flat loop back to back — so slow
//! machine-level drift (CPU frequency, co-tenants) hits both equally and
//! the sharded/flat throughput ratio stays meaningful on noisy runners.
//! This is what CI feeds the `bench_check --domains/--mono` gate.
//!
//! `--repeat N` reruns the serving loop N times and takes the fastest
//! wall clock (best-of-N, the usual de-noising for sub-100ms runs);
//! every repeat is the same deterministic campaign.
//!
//! Run with: `cargo run --release -p gridsched-bench --bin online_throughput`
//! Knobs: `--jobs N --seed N --rate F --queue N --perturbations N --domains N
//! --flat --repeat N --out PATH --mono-out PATH`

use std::time::{Duration, Instant};

use gridsched::flow::faults::FaultConfig;
use gridsched::flow::online::{run_online_instrumented, OnlineConfig, OnlineReport};
use gridsched::flow::oracle::audit;
use gridsched::flow::simulation::CampaignConfig;
use gridsched::metrics::telemetry::Telemetry;
use gridsched::workload::arrivals::ArrivalProcess;
use gridsched::workload::pool::PoolConfig;
use gridsched_bench::{keys, Args};

/// Quantile over a sorted slice (nearest-rank); 0 when empty.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One timed serving loop plus everything it produced.
struct Measured {
    telemetry: Telemetry,
    wall: Duration,
    report: OnlineReport,
}

fn run_once(cfg: &OnlineConfig) -> Measured {
    let telemetry = Telemetry::new();
    let start = Instant::now();
    let report = run_online_instrumented(cfg, &telemetry);
    Measured {
        wall: start.elapsed(),
        telemetry,
        report,
    }
}

/// The knobs shared by every variant of one invocation.
struct Workload {
    seed: u64,
    rate: f64,
    queue: usize,
    jobs: usize,
    repeat: usize,
}

/// Prints the human-readable block and writes the JSON for one measured
/// variant; returns whether it is healthy (counters reconcile, oracle
/// clean).
fn emit(m: &Measured, w: &Workload, domains: u32, out: &str) -> bool {
    let s = m.report.summary;
    let wall_secs = m.wall.as_secs_f64().max(1e-9);
    let sustained = s.admitted as f64 / wall_secs;
    // Work-normalized serving rate: admission probes per wall-second.
    // Comparable across domain layouts, where admitted counts are not.
    let probe_throughput = s.probes as f64 / wall_secs;

    // Time-to-plan: every `admit` span is one full sweep + activation.
    let snapshot = m.telemetry.snapshot();
    let mut plan_ns: Vec<u64> = snapshot
        .spans()
        .iter()
        .filter(|span| span.name == "admit")
        .map(|span| span.end_ns.saturating_sub(span.start_ns))
        .collect();
    plan_ns.sort_unstable();
    let plan_p50 = quantile_ns(&plan_ns, 0.50);
    let plan_p99 = quantile_ns(&plan_ns, 0.99);

    let wait_p50 = m.report.queue_wait.quantile(0.50).unwrap_or(0.0);
    let wait_p99 = m.report.queue_wait.quantile(0.99).unwrap_or(0.0);

    // Per-domain activity from the labeled telemetry series: one row per
    // domain that homed at least one job.
    let per_domain: Vec<(u64, u64, u64, u64)> = snapshot
        .domains()
        .keys()
        .map(|&d| {
            (
                d,
                snapshot.domain_counter(d, "jobs_activated"),
                snapshot.domain_counter(d, "schedule_breaks"),
                snapshot.domain_counter(d, "migrations"),
            )
        })
        .collect();

    let oracle_violations = match audit(&m.report.report) {
        Ok(()) => 0,
        Err(v) => {
            eprintln!("oracle violation: {v}");
            1
        }
    };
    let reconciled = m.report.counters_reconcile();

    println!(
        "online_throughput: seed {}, rate {}, queue {}, {domains} domain manager(s), {} offered jobs",
        w.seed, w.rate, w.queue, w.jobs
    );
    println!(
        "  arrived {}  admitted {}  rejected {} (queue-full {}, unmeetable {})  deferred {}",
        s.arrived, s.admitted, s.rejected, s.rejected_queue_full, s.rejected_unmeetable, s.deferred
    );
    println!(
        "  probes {}  incremental replans {}  queue peak {}",
        s.probes, s.incremental_replans, s.queue_peak
    );
    println!(
        "  wall {:.1} ms (best of {})  sustained {:.1} admitted jobs/sec  {:.1} probes/sec",
        m.wall.as_secs_f64() * 1e3,
        w.repeat,
        sustained,
        probe_throughput
    );
    println!(
        "  time-to-plan p50 {:.2} ms  p99 {:.2} ms  ({} admissions timed)",
        plan_p50 as f64 / 1e6,
        plan_p99 as f64 / 1e6,
        plan_ns.len()
    );
    println!("  queue wait p50 {wait_p50:.0} ticks  p99 {wait_p99:.0} ticks (sim time)");
    for (d, activated, breaks, migrations) in &per_domain {
        println!("  domain {d}: activated {activated}  breaks {breaks}  migrations {migrations}");
    }
    println!("  counters reconcile: {reconciled}  oracle violations: {oracle_violations}");

    let mut per_domain_json = String::new();
    for (i, (d, activated, breaks, migrations)) in per_domain.iter().enumerate() {
        if i > 0 {
            per_domain_json.push_str(", ");
        }
        per_domain_json.push_str(&format!(
            "\"{d}\": {{\"activated\": {activated}, \"breaks\": {breaks}, \"migrations\": {migrations}}}"
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"online_throughput\",\n",
            "  \"seed\": {seed},\n",
            "  \"rate\": {rate},\n",
            "  \"domains\": {domains},\n",
            "  \"per_domain\": {{{per_domain}}},\n",
            "  \"queue_capacity\": {queue},\n",
            "  \"jobs_offered\": {jobs},\n",
            "  \"jobs_arrived\": {arrived},\n",
            "  \"jobs_admitted\": {admitted},\n",
            "  \"jobs_rejected\": {rejected},\n",
            "  \"jobs_deferred\": {deferred},\n",
            "  \"admission_probes\": {probes},\n",
            "  \"incremental_replans\": {replans},\n",
            "  \"queue_peak_depth\": {peak},\n",
            "  \"wall_ms\": {wall_ms:.3},\n",
            "  \"sustained_jobs_per_sec\": {sustained:.3},\n",
            "  \"probe_throughput_per_sec\": {probe_throughput:.3},\n",
            "  \"plan_p50_ns\": {p50},\n",
            "  \"plan_p99_ns\": {p99},\n",
            "  \"queue_wait_p50_ticks\": {wait50:.1},\n",
            "  \"queue_wait_p99_ticks\": {wait99:.1},\n",
            "  \"counters_reconcile\": {reconciled},\n",
            "  \"oracle_violations\": {violations}\n",
            "}}\n"
        ),
        seed = w.seed,
        rate = w.rate,
        domains = domains,
        per_domain = per_domain_json,
        queue = w.queue,
        jobs = w.jobs,
        arrived = s.arrived,
        admitted = s.admitted,
        rejected = s.rejected,
        deferred = s.deferred,
        probes = s.probes,
        replans = s.incremental_replans,
        peak = s.queue_peak,
        wall_ms = m.wall.as_secs_f64() * 1e3,
        sustained = sustained,
        probe_throughput = probe_throughput,
        p50 = plan_p50,
        p99 = plan_p99,
        wait50 = wait_p50,
        wait99 = wait_p99,
        reconciled = reconciled,
        violations = oracle_violations,
    );
    std::fs::write(out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("  wrote {out}");

    reconciled && oracle_violations == 0
}

fn main() {
    let args = Args::capture_validated(keys::ONLINE_THROUGHPUT);
    let jobs: usize = args.get("jobs", 60);
    let seed: u64 = args.get("seed", 2009);
    let rate: f64 = args.get("rate", 0.15);
    let queue: usize = args.get("queue", 16);
    let perturbations: usize = args.get("perturbations", 40);
    let pool_domains: u32 = args.get("domains", PoolConfig::default().domains);
    let flat: bool = args.get("flat", false);
    // The flow-layer manager count — what the JSON reports and the
    // hierarchy gate compares on.
    let domains: u32 = if flat { 1 } else { pool_domains };
    let out: String = args.get("out", "BENCH_online_throughput.json".to_owned());
    let mono_out: Option<String> = args
        .has("mono-out")
        .then(|| args.get("mono-out", "BENCH_online_mono.json".to_owned()));
    assert!(
        !(flat && mono_out.is_some()),
        "--mono-out pairs a sharded run with its collapsed baseline; drop --flat"
    );

    let cfg = OnlineConfig {
        base: CampaignConfig {
            jobs,
            perturbations,
            pool_config: PoolConfig {
                domains: pool_domains,
                ..PoolConfig::default()
            },
            single_manager: flat,
            faults: FaultConfig {
                outages: 3,
                degradations: 2,
                transfer_faults: 3,
                ..FaultConfig::none()
            },
            collect_trace: true,
            seed,
            ..CampaignConfig::default()
        },
        arrivals: ArrivalProcess::Poisson { rate },
        queue_capacity: queue,
        ..OnlineConfig::default()
    };

    // The variants this invocation measures: the requested run, plus —
    // under --mono-out — the same campaign with the flow layer collapsed
    // to one job manager (bit-identical decisions, the monolithic
    // reference of the hierarchy gate).
    let mut variants: Vec<(OnlineConfig, u32, String)> = vec![(cfg.clone(), domains, out)];
    if let Some(mono_out) = mono_out {
        let mono_cfg = OnlineConfig {
            base: CampaignConfig {
                single_manager: true,
                ..cfg.base.clone()
            },
            ..cfg
        };
        variants.push((mono_cfg, 1, mono_out));
    }

    let repeat: usize = args.get("repeat", 1).max(1);
    let workload = Workload {
        seed,
        rate,
        queue,
        jobs,
        repeat,
    };

    // Best-of-N wall clock per variant; every repeat runs the same
    // deterministic campaign, so keeping the fastest run's report and
    // telemetry loses nothing. Variants are interleaved within each
    // repeat so machine-level drift cancels out of their ratio.
    let mut measured: Vec<Option<Measured>> = variants.iter().map(|_| None).collect();
    for _ in 0..repeat {
        for (slot, (cfg, _, _)) in measured.iter_mut().zip(&variants) {
            let run = run_once(cfg);
            match slot {
                Some(best) if best.wall <= run.wall => {}
                _ => *slot = Some(run),
            }
        }
    }

    let mut healthy = true;
    for ((_, domains, out), m) in variants.iter().zip(&measured) {
        let m = m.as_ref().expect("at least one repeat runs");
        healthy &= emit(m, &workload, *domains, out);
    }
    if !healthy {
        std::process::exit(1);
    }
}
