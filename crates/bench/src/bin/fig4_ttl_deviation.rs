//! Fig. 4 (c) — relative strategy time-to-live and start-time deviation
//! (as a ratio to job run time) for the MS1, S2 and S3 strategies.
//!
//! Paper's reading: cheap, slow strategies like S3 "are most persistent in
//! the term of time-to-live"; the fast, accurate S2 is the least
//! persistent; the economized MS1 is the least accurate (largest start
//! deviation from the user's optimistic forecast).
//!
//! Run with: `cargo run --release -p gridsched-bench --bin fig4_ttl_deviation`
//! Knobs: `--jobs N --seed N --perturbations N`

use gridsched::core::strategy::StrategyKind;
use gridsched::metrics::table::{ratio, Table};
use gridsched_bench::{campaign_for, fig4_campaign_base, keys, normalize, verdict, Args};

fn main() {
    let args = Args::capture_validated(keys::FIG4);
    let base = fig4_campaign_base(&args);
    println!(
        "fig4c: {} jobs per strategy, horizon {}, seed {}",
        base.jobs, base.horizon, base.seed
    );

    let kinds = [StrategyKind::Ms1, StrategyKind::S2, StrategyKind::S3];
    let mut ttls = Vec::new();
    let mut deviations = Vec::new();
    let mut break_rates = Vec::new();
    for kind in kinds {
        let report = campaign_for(kind, &base);
        ttls.push(report.ttl_summary().mean());
        deviations.push(report.deviation_summary().mean());
        let activated = report.records.iter().filter(|r| r.cost.is_some()).count();
        let breaks: usize = report.records.iter().map(|r| r.breaks).sum();
        break_rates.push(if activated == 0 {
            0.0
        } else {
            breaks as f64 / activated as f64
        });
    }
    let rel_ttl = normalize(&ttls);
    let rel_dev = normalize(&deviations);

    let mut table = Table::new(vec![
        "strategy",
        "mean TTL",
        "relative TTL",
        "start deviation / runtime",
        "relative deviation",
        "breaks per job",
    ]);
    for (i, kind) in kinds.into_iter().enumerate() {
        table.row(vec![
            kind.name().to_owned(),
            ratio(ttls[i]),
            ratio(rel_ttl[i]),
            ratio(deviations[i]),
            ratio(rel_dev[i]),
            ratio(break_rates[i]),
        ]);
    }
    println!("\nFig. 4 (c) — time-to-live and start deviation:\n{table}");
    println!("paper reference (relative): TTL S3 highest, S2 lowest;");
    println!("                            deviation MS1 ≈ 1.0, S2 ≈ 0.5\n");

    println!("paper-shape checks:");
    verdict(
        "fig4c: S3 is the most persistent (highest TTL)",
        rel_ttl[2] >= rel_ttl[0] && rel_ttl[2] >= rel_ttl[1],
    );
    verdict("fig4c: S2 is less persistent than S3", ttls[1] < ttls[2]);
    verdict(
        "fig4c: MS1 deviates more from the optimistic forecast than S2",
        deviations[0] > deviations[1],
    );
    verdict(
        "fig4c: MS1 has the largest relative deviation of the three",
        rel_dev[0] >= rel_dev[1] && rel_dev[0] >= rel_dev[2],
    );
}
