//! Probe-cost scaling: gap-indexed descent vs. the linear jump-walk.
//!
//! The planning hot path asks one question millions of times per
//! campaign: *earliest start ≥ t where a `duration`-long slot is free*.
//! Before the gap index, a cold probe walked the node's reservation list
//! from the first window ending after `t` — O(R) when the calendar is
//! packed tighter than the slot being placed. The [`GapIndex`] built
//! lazily per [`AvailabilitySnapshot`] answers the same question by
//! descending a max-free-gap tree in O(log R), with **bit-identical**
//! results (the contract pinned by `crates/model/tests/prop_gap_index.rs`
//! and the `probe-index` chaos axis).
//!
//! This binary makes the scaling claim measurable. For each pool size it
//! synthesizes one dense calendar (committed with
//! [`Timetable::from_sorted`], the bulk build) and times:
//!
//! * `cold/hard`    — probes whose duration exceeds every interior gap,
//!   the worst case: the walk scans the whole calendar, the index proves
//!   "no interior gap fits" in O(log R). This ratio is the gated
//!   `probe_index_speedup_cold`.
//! * `cold/typical` — short slots from random positions, the common case:
//!   the walk usually stops after a few windows, so the index roughly
//!   ties (reported as `probe_index_speedup_typical`, not gated).
//! * `warm/memo`    — a repeated overlay probe served by the `FitMemo`,
//!   for scale: both cold paths sit above this floor.
//! * `index build`  — the one-off O(R) cost a snapshot pays on its first
//!   probe of a node, amortized over every session sharing the snapshot.
//! * `cold/warm capture` — a full [`AvailabilitySnapshot`] capture with
//!   the calendar cache disabled (every capture refreezes the window
//!   slice, O(R)) vs. enabled and primed (the capture reuses the frozen
//!   calendar and its already-built index by `Arc`). The ratio at the
//!   largest pool is the gated `index_cache_warm_speedup`, and the shape
//!   also proves the warm capture serves probes with **zero** rebuilds.
//! * `fan-out`      — a cold chain-head probe batch across a 64-node pool,
//!   dispatched over the persistent worker pool vs. the sequential loop
//!   (bit-identical answers, asserted). Reported as
//!   `probe_fanout_speedup`, not gated: the win is the parallel index
//!   builds, which shrink once calendars are cached.
//!
//! Results land in `BENCH_probe_scaling.json` (override with `--out`).
//! CI reruns a reduced version and gates it via
//! `bench_check --probe-index` ([`probe_gate`]): cold speedup at the
//! largest pool must clear the floor, and that pool must hold ≥ 100k
//! reservations. `bench_check --index-cache` gates the same file's
//! warm-capture keys ([`index_cache_gate`]).
//!
//! Run with: `cargo bench-probe` (alias for
//! `cargo run --release -p gridsched-bench --bin probe_scaling`).
//! Knobs: `--seed N --budget-ms N --probes N --max-reservations N
//! --out PATH`
//!
//! [`AvailabilitySnapshot`]: gridsched::model::availability::AvailabilitySnapshot
//! [`GapIndex`]: gridsched::model::gap_index::GapIndex
//! [`Timetable::from_sorted`]: gridsched::model::timetable::Timetable::from_sorted
//! [`probe_gate`]: gridsched_bench::probe_gate
//! [`index_cache_gate`]: gridsched_bench::index_cache_gate

use std::time::{Duration, Instant};

use gridsched::core::session::PlanningSession;
use gridsched::model::availability::{set_probe_fanout_enabled, ProbeRequest, TimetableOverlay};
use gridsched::model::gap_index::GapIndex;
use gridsched::model::ids::DomainId;
use gridsched::model::index_cache::set_index_cache_enabled;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::model::timetable::{ReservationOwner, Timetable};
use gridsched::model::window::TimeWindow;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::{SimDuration, SimTime};
use gridsched_bench::timing::Group;
use gridsched_bench::{keys, verdict, Args};

/// Pool sizes swept, in reservations per node. 143k is the seed
/// corpus's reference calendar; 200k is headroom past it.
const SIZES: &[usize] = &[1_000, 10_000, 50_000, 100_000, 143_000, 200_000];

/// One synthesized calendar: sorted windows, the largest interior gap,
/// and the horizon (end of the last window).
struct Calendar {
    windows: Vec<TimeWindow>,
    max_gap: u64,
    horizon: u64,
}

/// Dense random calendar: busy chunks of 3–12 ticks separated by gaps of
/// 0–10, so most interior gaps are smaller than a typical slot and *all*
/// of them are smaller than a hard probe's.
fn synthesize(reservations: usize, rng: &mut SimRng) -> Calendar {
    let mut windows = Vec::with_capacity(reservations);
    let mut cursor = 0u64;
    let mut max_gap = 0u64;
    for i in 0..reservations {
        let gap = rng.uniform_u64(0, 10);
        if i > 0 {
            max_gap = max_gap.max(gap);
        }
        let start = cursor + gap;
        let end = start + rng.uniform_u64(3, 12);
        windows.push(
            TimeWindow::new(SimTime::from_ticks(start), SimTime::from_ticks(end))
                .expect("busy chunk >= 3 ticks"),
        );
        cursor = end;
    }
    Calendar {
        windows,
        max_gap,
        horizon: cursor,
    }
}

struct SizeResult {
    reservations: usize,
    linear_hard_ns: u128,
    indexed_hard_ns: u128,
    linear_typical_ns: u128,
    indexed_typical_ns: u128,
    warm_memo_ns: u128,
    index_build_ns: u128,
    capture_cold_ns: u128,
    capture_warm_ns: u128,
    speedup_hard: f64,
    speedup_typical: f64,
    speedup_capture: f64,
}

fn json_line(r: &SizeResult) -> String {
    format!(
        concat!(
            "    {{\"reservations\": {}, ",
            "\"linear_hard_ns\": {}, \"indexed_hard_ns\": {}, ",
            "\"linear_typical_ns\": {}, \"indexed_typical_ns\": {}, ",
            "\"warm_memo_ns\": {}, \"index_build_ns\": {}, ",
            "\"capture_cold_ns\": {}, \"capture_warm_ns\": {}, ",
            "\"speedup_hard\": {:.3}, \"speedup_typical\": {:.3}, ",
            "\"speedup_capture\": {:.3}}}"
        ),
        r.reservations,
        r.linear_hard_ns,
        r.indexed_hard_ns,
        r.linear_typical_ns,
        r.indexed_typical_ns,
        r.warm_memo_ns,
        r.index_build_ns,
        r.capture_cold_ns,
        r.capture_warm_ns,
        r.speedup_hard,
        r.speedup_typical,
        r.speedup_capture,
    )
}

/// Outcome of the cross-node fan-out shape (one 64-node pool).
struct FanoutResult {
    nodes: usize,
    windows_per_node: usize,
    sequential_ns: u128,
    fanned_ns: u128,
    speedup: f64,
}

/// Times a cold chain-head probe batch over `nodes` dense calendars,
/// dispatched across the worker pool vs. the sequential loop. The cache
/// stays disabled so every iteration refreezes and rebuilds — the shape
/// the fan-out exists for (parallel index builds on a cold pool).
fn fanout_shape(total_reservations: usize, budget: Duration, rng: &mut SimRng) -> FanoutResult {
    const NODES: usize = 64;
    let per_node = (total_reservations / NODES).max(1_000);
    let mut pool = ResourcePool::new();
    let mut requests: Vec<ProbeRequest> = Vec::with_capacity(NODES);
    for n in 0..NODES {
        let id = pool.add_node(DomainId::new((n % 4) as u32), Perf::FULL);
        let cal = synthesize(per_node, &mut rng.fork(n as u64));
        *pool.timetable_mut(id) = Timetable::from_sorted(
            cal.windows
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, ReservationOwner::Background(i as u64))),
        );
        requests.push(ProbeRequest {
            node: id,
            not_before: SimTime::ZERO,
            duration: SimDuration::from_ticks(cal.max_gap + 1),
            deadline: SimTime::MAX,
        });
    }
    // Opening a session installs the worker-pool probe executor; the
    // capture cache stays out of the way so each timed iteration pays
    // the full freeze + build cost the fan-out parallelizes.
    let _executor = PlanningSession::open(&pool);
    set_index_cache_enabled(false);

    let run_batch = |out: &mut Vec<Option<SimTime>>| {
        let overlay = TimetableOverlay::new(pool.snapshot());
        overlay.earliest_fit_batch(&requests, out);
        overlay.take_index_stats()
    };
    // The timings only mean anything if the paths agree (and dispatch).
    let mut fanned_out = Vec::new();
    let fanned_stats = run_batch(&mut fanned_out);
    assert_eq!(fanned_stats.fanouts, 1, "64-node cold batch dispatches");
    set_probe_fanout_enabled(false);
    let mut sequential_out = Vec::new();
    let sequential_stats = run_batch(&mut sequential_out);
    assert_eq!(sequential_stats.fanouts, 0);
    assert_eq!(fanned_out, sequential_out, "fan-out is bit-identical");
    assert_eq!(fanned_stats.seeks, sequential_stats.seeks);
    assert_eq!(fanned_stats.builds, sequential_stats.builds);

    let group = Group::new(&format!("fan-out, {NODES} nodes x {per_node} reservations"))
        .with_budget(budget);
    let mut out = Vec::new();
    let sequential = group.bench("cold probe batch, sequential loop", || {
        run_batch(&mut out);
        out.len()
    });
    set_probe_fanout_enabled(true);
    let fanned = group.bench("cold probe batch, pooled fan-out", || {
        run_batch(&mut out);
        out.len()
    });
    set_index_cache_enabled(true);
    FanoutResult {
        nodes: NODES,
        windows_per_node: per_node,
        sequential_ns: sequential.mean.as_nanos(),
        fanned_ns: fanned.mean.as_nanos(),
        speedup: sequential.speedup_over(&fanned),
    }
}

fn main() {
    let args = Args::capture_validated(keys::PROBE_SCALING);
    let seed: u64 = args.get("seed", 2009);
    let budget_ms: u64 = args.get("budget-ms", 150);
    let probe_count: usize = args.get("probes", 256);
    let max_reservations: usize = args.get("max-reservations", 200_000);
    let out: String = args.get("out", "BENCH_probe_scaling.json".to_owned());

    let sizes: Vec<usize> = SIZES
        .iter()
        .copied()
        .filter(|&n| n <= max_reservations)
        .collect();
    assert!(
        !sizes.is_empty(),
        "--max-reservations {max_reservations} excludes every sweep size"
    );
    let mut master = SimRng::seed_from(seed);
    println!(
        "probe_scaling: {} pool sizes up to {} reservations, {probe_count} probes/shape, seed {seed}\n",
        sizes.len(),
        sizes.last().copied().unwrap_or(0),
    );

    let mut results: Vec<SizeResult> = Vec::new();
    // Cache counters from the *largest* size's warm-capture shape; the
    // gate keys below report these.
    let mut warm_capture_hits = 0u64;
    let mut warm_capture_rebuilds = 0u64;
    for (idx, &n) in sizes.iter().enumerate() {
        let cal = synthesize(n, &mut master.fork(idx as u64 + 1));
        let mut probe_rng = master.fork(1_000 + idx as u64);

        // Hard probes: duration strictly wider than every interior gap,
        // from early positions — the walk traverses essentially the whole
        // calendar before settling on the trailing gap.
        let hard_duration = SimDuration::from_ticks(cal.max_gap + 1);
        let hard: Vec<SimTime> = (0..probe_count)
            .map(|_| SimTime::from_ticks(probe_rng.uniform_u64(0, cal.horizon / 50)))
            .collect();
        // Typical probes: short slots from anywhere in the calendar.
        let typical: Vec<(SimTime, SimDuration)> = (0..probe_count)
            .map(|_| {
                (
                    SimTime::from_ticks(probe_rng.uniform_u64(0, cal.horizon)),
                    SimDuration::from_ticks(probe_rng.uniform_u64(1, 16)),
                )
            })
            .collect();

        // Build the timetable through the bulk path (the same one
        // `workload::background` uses) and time the one-off index build.
        let mut pool = ResourcePool::new();
        let node = pool.add_node(DomainId::new(0), Perf::FULL);
        *pool.timetable_mut(node) = Timetable::from_sorted(
            cal.windows
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, ReservationOwner::Background(i as u64))),
        );
        let tt = pool.timetable(node);
        let build_started = Instant::now();
        let index = GapIndex::build(&cal.windows);
        let index_build = build_started.elapsed();

        // The timings below only mean anything if the two paths agree.
        for &nb in &hard {
            assert_eq!(
                index.earliest_fit(&cal.windows, nb, hard_duration, SimTime::MAX),
                tt.earliest_fit(nb, hard_duration, SimTime::MAX),
                "hard probe diverged at {n} reservations"
            );
        }
        for &(nb, d) in &typical {
            assert_eq!(
                index.earliest_fit(&cal.windows, nb, d, SimTime::MAX),
                tt.earliest_fit(nb, d, SimTime::MAX),
                "typical probe diverged at {n} reservations"
            );
        }

        let group =
            Group::new(&format!("{n} reservations")).with_budget(Duration::from_millis(budget_ms));
        let mut cursor = 0usize;
        let linear_hard = group.bench("cold hard probe, linear walk", || {
            let nb = hard[cursor % hard.len()];
            cursor += 1;
            tt.earliest_fit(nb, hard_duration, SimTime::MAX)
        });
        cursor = 0;
        let indexed_hard = group.bench("cold hard probe, gap index", || {
            let nb = hard[cursor % hard.len()];
            cursor += 1;
            index.earliest_fit(&cal.windows, nb, hard_duration, SimTime::MAX)
        });
        cursor = 0;
        let linear_typical = group.bench("cold typical probe, linear walk", || {
            let (nb, d) = typical[cursor % typical.len()];
            cursor += 1;
            tt.earliest_fit(nb, d, SimTime::MAX)
        });
        cursor = 0;
        let indexed_typical = group.bench("cold typical probe, gap index", || {
            let (nb, d) = typical[cursor % typical.len()];
            cursor += 1;
            index.earliest_fit(&cal.windows, nb, d, SimTime::MAX)
        });
        // Warm floor: one overlay probe repeated, served by the FitMemo
        // after its first (cold, indexed) answer.
        let overlay = TimetableOverlay::new(pool.snapshot());
        let (warm_nb, warm_d) = typical[0];
        let warm = group.bench("warm repeat probe, overlay memo", || {
            overlay.earliest_fit(node, warm_nb, warm_d, SimTime::MAX)
        });

        // Capture shapes: a full snapshot with the calendar cache
        // disabled (every capture refreezes the window slice, O(R)) vs.
        // enabled and primed (the capture reuses the frozen calendar —
        // and its already-built index — by `Arc`).
        set_index_cache_enabled(false);
        let capture_cold = group.bench("cold capture, cache disabled", || {
            pool.snapshot().windows(node).len()
        });
        set_index_cache_enabled(true);
        // Prime: one capture inserts the frozen calendar, one cold probe
        // builds its index inside the shared calendar.
        let primed = TimetableOverlay::new(pool.snapshot());
        let _ = primed.earliest_fit(node, hard[0], hard_duration, SimTime::MAX);
        let _ = primed.take_index_stats();
        let _ = pool.index_cache().take_stats();
        let capture_warm = group.bench("warm capture, cache hit", || {
            pool.snapshot().windows(node).len()
        });
        let cache_stats = pool.index_cache().take_stats();
        assert!(
            cache_stats.hits >= 1 && cache_stats.misses == 0,
            "warm captures at {n} reservations must all hit the cache \
             (hits {}, misses {})",
            cache_stats.hits,
            cache_stats.misses,
        );
        // A fresh overlay over a warm capture probes without rebuilding:
        // the cached calendar carries its index across generations.
        let warm_capture = TimetableOverlay::new(pool.snapshot());
        let _ = warm_capture.earliest_fit(node, hard[0], hard_duration, SimTime::MAX);
        let warm_stats = warm_capture.take_index_stats();
        assert_eq!(
            warm_stats.builds, 0,
            "warm capture at {n} reservations rebuilt its index"
        );
        assert!(warm_stats.seeks >= 1, "warm probe must use the index");
        warm_capture_hits = cache_stats.hits;
        warm_capture_rebuilds = warm_stats.builds;

        let speedup_hard = linear_hard.speedup_over(&indexed_hard);
        let speedup_typical = linear_typical.speedup_over(&indexed_typical);
        let speedup_capture = capture_cold.speedup_over(&capture_warm);
        println!(
            "  -> hard {speedup_hard:.2}x, typical {speedup_typical:.2}x, \
             warm capture {speedup_capture:.2}x, index built in {index_build:?}\n"
        );
        results.push(SizeResult {
            reservations: n,
            linear_hard_ns: linear_hard.mean.as_nanos(),
            indexed_hard_ns: indexed_hard.mean.as_nanos(),
            linear_typical_ns: linear_typical.mean.as_nanos(),
            indexed_typical_ns: indexed_typical.mean.as_nanos(),
            warm_memo_ns: warm.mean.as_nanos(),
            index_build_ns: index_build.as_nanos(),
            capture_cold_ns: capture_cold.mean.as_nanos(),
            capture_warm_ns: capture_warm.mean.as_nanos(),
            speedup_hard,
            speedup_typical,
            speedup_capture,
        });
    }

    let largest = results.last().expect("at least one size");
    let fanout = fanout_shape(
        largest.reservations,
        Duration::from_millis(budget_ms),
        &mut master.fork(5_000),
    );
    println!(
        "  -> fan-out {:.2}x over {} nodes x {} reservations\n",
        fanout.speedup, fanout.nodes, fanout.windows_per_node,
    );
    let sizes_json = results
        .iter()
        .map(json_line)
        .collect::<Vec<_>>()
        .join(",\n");
    // Gate keys first: `json_number` reads the first occurrence, and the
    // per-size records below repeat none of these names.
    let json = format!(
        concat!(
            "{{\n",
            "  \"probe_index_speedup_cold\": {cold:.3},\n",
            "  \"probe_index_speedup_typical\": {typ:.3},\n",
            "  \"max_reservations\": {max_res},\n",
            "  \"index_cache_warm_speedup\": {cache:.3},\n",
            "  \"index_cache_windows\": {cache_windows},\n",
            "  \"index_cache_warm_rebuilds\": {cache_rebuilds},\n",
            "  \"index_cache_warm_hits\": {cache_hits},\n",
            "  \"probe_fanout_speedup\": {fan:.3},\n",
            "  \"probe_fanout_nodes\": {fan_nodes},\n",
            "  \"probe_fanout_windows_per_node\": {fan_windows},\n",
            "  \"probe_fanout_sequential_ns\": {fan_seq},\n",
            "  \"probe_fanout_fanned_ns\": {fan_par},\n",
            "  \"bench\": \"probe_scaling\",\n",
            "  \"seed\": {seed},\n",
            "  \"budget_ms\": {budget_ms},\n",
            "  \"probes_per_shape\": {probes},\n",
            "  \"sizes\": [\n{sizes}\n  ]\n",
            "}}\n"
        ),
        cold = largest.speedup_hard,
        typ = largest.speedup_typical,
        max_res = largest.reservations,
        cache = largest.speedup_capture,
        cache_windows = largest.reservations,
        cache_rebuilds = warm_capture_rebuilds,
        cache_hits = warm_capture_hits,
        fan = fanout.speedup,
        fan_nodes = fanout.nodes,
        fan_windows = fanout.windows_per_node,
        fan_seq = fanout.sequential_ns,
        fan_par = fanout.fanned_ns,
        seed = seed,
        budget_ms = budget_ms,
        probes = probe_count,
        sizes = sizes_json,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    verdict(
        "indexed and linear probes agree on every measured input",
        true, // asserted above, per size and shape
    );
    verdict(
        "gap index beats the linear walk on hard probes at the largest pool",
        largest.speedup_hard >= 1.0,
    );
    if largest.reservations >= 143_000 {
        verdict(
            "hard-probe speedup at >= 143k reservations clears the 5x target",
            largest.speedup_hard >= 5.0,
        );
    }
    verdict(
        "warm capture of the unchanged largest pool had zero index rebuilds",
        warm_capture_rebuilds == 0 && warm_capture_hits >= 1,
    );
    if largest.reservations >= 100_000 {
        verdict(
            "warm capture at >= 100k reservations clears the 10x target",
            largest.speedup_capture >= 10.0,
        );
    }
    verdict(
        "pooled fan-out is bit-identical to the sequential probe loop",
        true, // asserted inside fanout_shape, answers and counters
    );
}
