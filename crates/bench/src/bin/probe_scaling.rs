//! Probe-cost scaling: gap-indexed descent vs. the linear jump-walk.
//!
//! The planning hot path asks one question millions of times per
//! campaign: *earliest start ≥ t where a `duration`-long slot is free*.
//! Before the gap index, a cold probe walked the node's reservation list
//! from the first window ending after `t` — O(R) when the calendar is
//! packed tighter than the slot being placed. The [`GapIndex`] built
//! lazily per [`AvailabilitySnapshot`] answers the same question by
//! descending a max-free-gap tree in O(log R), with **bit-identical**
//! results (the contract pinned by `crates/model/tests/prop_gap_index.rs`
//! and the `probe-index` chaos axis).
//!
//! This binary makes the scaling claim measurable. For each pool size it
//! synthesizes one dense calendar (committed with
//! [`Timetable::from_sorted`], the bulk build) and times:
//!
//! * `cold/hard`    — probes whose duration exceeds every interior gap,
//!   the worst case: the walk scans the whole calendar, the index proves
//!   "no interior gap fits" in O(log R). This ratio is the gated
//!   `probe_index_speedup_cold`.
//! * `cold/typical` — short slots from random positions, the common case:
//!   the walk usually stops after a few windows, so the index roughly
//!   ties (reported as `probe_index_speedup_typical`, not gated).
//! * `warm/memo`    — a repeated overlay probe served by the `FitMemo`,
//!   for scale: both cold paths sit above this floor.
//! * `index build`  — the one-off O(R) cost a snapshot pays on its first
//!   probe of a node, amortized over every session sharing the snapshot.
//!
//! Results land in `BENCH_probe_scaling.json` (override with `--out`).
//! CI reruns a reduced version and gates it via
//! `bench_check --probe-index` ([`probe_gate`]): cold speedup at the
//! largest pool must clear the floor, and that pool must hold ≥ 100k
//! reservations.
//!
//! Run with: `cargo bench-probe` (alias for
//! `cargo run --release -p gridsched-bench --bin probe_scaling`).
//! Knobs: `--seed N --budget-ms N --probes N --max-reservations N
//! --out PATH`
//!
//! [`AvailabilitySnapshot`]: gridsched::model::availability::AvailabilitySnapshot
//! [`GapIndex`]: gridsched::model::gap_index::GapIndex
//! [`Timetable::from_sorted`]: gridsched::model::timetable::Timetable::from_sorted
//! [`probe_gate`]: gridsched_bench::probe_gate

use std::time::{Duration, Instant};

use gridsched::model::availability::TimetableOverlay;
use gridsched::model::gap_index::GapIndex;
use gridsched::model::ids::DomainId;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::model::timetable::{ReservationOwner, Timetable};
use gridsched::model::window::TimeWindow;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::{SimDuration, SimTime};
use gridsched_bench::timing::Group;
use gridsched_bench::{keys, verdict, Args};

/// Pool sizes swept, in reservations per node. 143k is the seed
/// corpus's reference calendar; 200k is headroom past it.
const SIZES: &[usize] = &[1_000, 10_000, 50_000, 100_000, 143_000, 200_000];

/// One synthesized calendar: sorted windows, the largest interior gap,
/// and the horizon (end of the last window).
struct Calendar {
    windows: Vec<TimeWindow>,
    max_gap: u64,
    horizon: u64,
}

/// Dense random calendar: busy chunks of 3–12 ticks separated by gaps of
/// 0–10, so most interior gaps are smaller than a typical slot and *all*
/// of them are smaller than a hard probe's.
fn synthesize(reservations: usize, rng: &mut SimRng) -> Calendar {
    let mut windows = Vec::with_capacity(reservations);
    let mut cursor = 0u64;
    let mut max_gap = 0u64;
    for i in 0..reservations {
        let gap = rng.uniform_u64(0, 10);
        if i > 0 {
            max_gap = max_gap.max(gap);
        }
        let start = cursor + gap;
        let end = start + rng.uniform_u64(3, 12);
        windows.push(
            TimeWindow::new(SimTime::from_ticks(start), SimTime::from_ticks(end))
                .expect("busy chunk >= 3 ticks"),
        );
        cursor = end;
    }
    Calendar {
        windows,
        max_gap,
        horizon: cursor,
    }
}

struct SizeResult {
    reservations: usize,
    linear_hard_ns: u128,
    indexed_hard_ns: u128,
    linear_typical_ns: u128,
    indexed_typical_ns: u128,
    warm_memo_ns: u128,
    index_build_ns: u128,
    speedup_hard: f64,
    speedup_typical: f64,
}

fn json_line(r: &SizeResult) -> String {
    format!(
        concat!(
            "    {{\"reservations\": {}, ",
            "\"linear_hard_ns\": {}, \"indexed_hard_ns\": {}, ",
            "\"linear_typical_ns\": {}, \"indexed_typical_ns\": {}, ",
            "\"warm_memo_ns\": {}, \"index_build_ns\": {}, ",
            "\"speedup_hard\": {:.3}, \"speedup_typical\": {:.3}}}"
        ),
        r.reservations,
        r.linear_hard_ns,
        r.indexed_hard_ns,
        r.linear_typical_ns,
        r.indexed_typical_ns,
        r.warm_memo_ns,
        r.index_build_ns,
        r.speedup_hard,
        r.speedup_typical,
    )
}

fn main() {
    let args = Args::capture_validated(keys::PROBE_SCALING);
    let seed: u64 = args.get("seed", 2009);
    let budget_ms: u64 = args.get("budget-ms", 150);
    let probe_count: usize = args.get("probes", 256);
    let max_reservations: usize = args.get("max-reservations", 200_000);
    let out: String = args.get("out", "BENCH_probe_scaling.json".to_owned());

    let sizes: Vec<usize> = SIZES
        .iter()
        .copied()
        .filter(|&n| n <= max_reservations)
        .collect();
    assert!(
        !sizes.is_empty(),
        "--max-reservations {max_reservations} excludes every sweep size"
    );
    let mut master = SimRng::seed_from(seed);
    println!(
        "probe_scaling: {} pool sizes up to {} reservations, {probe_count} probes/shape, seed {seed}\n",
        sizes.len(),
        sizes.last().copied().unwrap_or(0),
    );

    let mut results: Vec<SizeResult> = Vec::new();
    for (idx, &n) in sizes.iter().enumerate() {
        let cal = synthesize(n, &mut master.fork(idx as u64 + 1));
        let mut probe_rng = master.fork(1_000 + idx as u64);

        // Hard probes: duration strictly wider than every interior gap,
        // from early positions — the walk traverses essentially the whole
        // calendar before settling on the trailing gap.
        let hard_duration = SimDuration::from_ticks(cal.max_gap + 1);
        let hard: Vec<SimTime> = (0..probe_count)
            .map(|_| SimTime::from_ticks(probe_rng.uniform_u64(0, cal.horizon / 50)))
            .collect();
        // Typical probes: short slots from anywhere in the calendar.
        let typical: Vec<(SimTime, SimDuration)> = (0..probe_count)
            .map(|_| {
                (
                    SimTime::from_ticks(probe_rng.uniform_u64(0, cal.horizon)),
                    SimDuration::from_ticks(probe_rng.uniform_u64(1, 16)),
                )
            })
            .collect();

        // Build the timetable through the bulk path (the same one
        // `workload::background` uses) and time the one-off index build.
        let mut pool = ResourcePool::new();
        let node = pool.add_node(DomainId::new(0), Perf::FULL);
        *pool.timetable_mut(node) = Timetable::from_sorted(
            cal.windows
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, ReservationOwner::Background(i as u64))),
        );
        let tt = pool.timetable(node);
        let build_started = Instant::now();
        let index = GapIndex::build(&cal.windows);
        let index_build = build_started.elapsed();

        // The timings below only mean anything if the two paths agree.
        for &nb in &hard {
            assert_eq!(
                index.earliest_fit(&cal.windows, nb, hard_duration, SimTime::MAX),
                tt.earliest_fit(nb, hard_duration, SimTime::MAX),
                "hard probe diverged at {n} reservations"
            );
        }
        for &(nb, d) in &typical {
            assert_eq!(
                index.earliest_fit(&cal.windows, nb, d, SimTime::MAX),
                tt.earliest_fit(nb, d, SimTime::MAX),
                "typical probe diverged at {n} reservations"
            );
        }

        let group =
            Group::new(&format!("{n} reservations")).with_budget(Duration::from_millis(budget_ms));
        let mut cursor = 0usize;
        let linear_hard = group.bench("cold hard probe, linear walk", || {
            let nb = hard[cursor % hard.len()];
            cursor += 1;
            tt.earliest_fit(nb, hard_duration, SimTime::MAX)
        });
        cursor = 0;
        let indexed_hard = group.bench("cold hard probe, gap index", || {
            let nb = hard[cursor % hard.len()];
            cursor += 1;
            index.earliest_fit(&cal.windows, nb, hard_duration, SimTime::MAX)
        });
        cursor = 0;
        let linear_typical = group.bench("cold typical probe, linear walk", || {
            let (nb, d) = typical[cursor % typical.len()];
            cursor += 1;
            tt.earliest_fit(nb, d, SimTime::MAX)
        });
        cursor = 0;
        let indexed_typical = group.bench("cold typical probe, gap index", || {
            let (nb, d) = typical[cursor % typical.len()];
            cursor += 1;
            index.earliest_fit(&cal.windows, nb, d, SimTime::MAX)
        });
        // Warm floor: one overlay probe repeated, served by the FitMemo
        // after its first (cold, indexed) answer.
        let overlay = TimetableOverlay::new(pool.snapshot());
        let (warm_nb, warm_d) = typical[0];
        let warm = group.bench("warm repeat probe, overlay memo", || {
            overlay.earliest_fit(node, warm_nb, warm_d, SimTime::MAX)
        });

        let speedup_hard = linear_hard.speedup_over(&indexed_hard);
        let speedup_typical = linear_typical.speedup_over(&indexed_typical);
        println!(
            "  -> hard {speedup_hard:.2}x, typical {speedup_typical:.2}x, index built in {index_build:?}\n"
        );
        results.push(SizeResult {
            reservations: n,
            linear_hard_ns: linear_hard.mean.as_nanos(),
            indexed_hard_ns: indexed_hard.mean.as_nanos(),
            linear_typical_ns: linear_typical.mean.as_nanos(),
            indexed_typical_ns: indexed_typical.mean.as_nanos(),
            warm_memo_ns: warm.mean.as_nanos(),
            index_build_ns: index_build.as_nanos(),
            speedup_hard,
            speedup_typical,
        });
    }

    let largest = results.last().expect("at least one size");
    let sizes_json = results
        .iter()
        .map(json_line)
        .collect::<Vec<_>>()
        .join(",\n");
    // Gate keys first: `json_number` reads the first occurrence, and the
    // per-size records below repeat none of these names.
    let json = format!(
        concat!(
            "{{\n",
            "  \"probe_index_speedup_cold\": {cold:.3},\n",
            "  \"probe_index_speedup_typical\": {typ:.3},\n",
            "  \"max_reservations\": {max_res},\n",
            "  \"bench\": \"probe_scaling\",\n",
            "  \"seed\": {seed},\n",
            "  \"budget_ms\": {budget_ms},\n",
            "  \"probes_per_shape\": {probes},\n",
            "  \"sizes\": [\n{sizes}\n  ]\n",
            "}}\n"
        ),
        cold = largest.speedup_hard,
        typ = largest.speedup_typical,
        max_res = largest.reservations,
        seed = seed,
        budget_ms = budget_ms,
        probes = probe_count,
        sizes = sizes_json,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    verdict(
        "indexed and linear probes agree on every measured input",
        true, // asserted above, per size and shape
    );
    verdict(
        "gap index beats the linear walk on hard probes at the largest pool",
        largest.speedup_hard >= 1.0,
    );
    if largest.reservations >= 143_000 {
        verdict(
            "hard-probe speedup at >= 143k reservations clears the 5x target",
            largest.speedup_hard >= 5.0,
        );
    }
}
