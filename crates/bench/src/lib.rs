//! Shared helpers for the experiment binaries that regenerate the paper's
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gridsched::core::strategy::StrategyKind;
use gridsched::flow::metascheduler::FlowAssignment;
use gridsched::flow::simulation::{run_campaign, CampaignConfig};
use gridsched::flow::VoReport;

pub mod timing;

/// Parses `--key value` style overrides from `std::env::args`.
///
/// Unknown keys are ignored so every binary accepts the common knobs.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Captures the process arguments.
    #[must_use]
    pub fn capture() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i + 1 < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                pairs.push((key.to_owned(), raw[i + 1].clone()));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Whether an override for `key` was supplied.
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    /// Looks up an override, parsed to `T`, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.pairs.iter().rev().find(|(k, _)| k == key) {
            Some((_, v)) => match v.parse() {
                Ok(parsed) => parsed,
                Err(e) => panic!("--{key} {v}: {e}"),
            },
            None => default,
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::capture()
    }
}

/// The calibrated campaign configuration shared by the Fig. 4 binaries:
/// same network, pool mix and deadline pressure as the Fig. 3 experiment,
/// with a lighter *static* background (the dynamics come from the
/// perturbation stream instead).
#[must_use]
pub fn fig4_campaign_base(args: &Args) -> CampaignConfig {
    use gridsched::data::network::TransferModel;
    use gridsched::sim::time::SimDuration;
    use gridsched::workload::jobs::JobConfig;
    use gridsched::workload::pool::PoolConfig;

    CampaignConfig {
        jobs: args.get("jobs", 400),
        perturbations: args.get("perturbations", 400),
        background_load: args.get("load", 0.1),
        horizon: SimDuration::from_ticks(args.get("horizon", 5_000)),
        job_gap: SimDuration::from_ticks(args.get("job-gap", 12)),
        seed: args.get("seed", 2009),
        job_config: JobConfig {
            deadline_factor: args.get("deadline-factor", 6.0),
            ..JobConfig::default()
        },
        pool_config: PoolConfig {
            group_shares: (0.25, 0.35, 0.40),
            ..PoolConfig::default()
        },
        transfer_model: TransferModel::new(5.0, 3.5, SimDuration::from_ticks(1)),
        ..CampaignConfig::default()
    }
}

/// Runs one single-flow campaign for `kind`, sharing every other knob.
#[must_use]
pub fn campaign_for(kind: StrategyKind, base: &CampaignConfig) -> VoReport {
    run_campaign(&CampaignConfig {
        assignment: FlowAssignment::Single(kind),
        ..base.clone()
    })
}

/// Normalizes a slice of values to its maximum (the paper's "relative"
/// bars). All-zero input stays zero.
#[must_use]
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / max).collect()
}

/// Prints a HOLDS/DIFFERS verdict line for a paper-claim check.
pub fn verdict(label: &str, holds: bool) {
    let mark = if holds { "HOLDS" } else { "DIFFERS" };
    println!("  [{mark}] {label}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_scales_to_unit_max() {
        assert_eq!(normalize(&[2.0, 4.0, 1.0]), vec![0.5, 1.0, 0.25]);
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn args_parse_overrides_and_fall_back() {
        let args = Args {
            pairs: vec![
                ("jobs".into(), "42".into()),
                ("load".into(), "0.5".into()),
                ("jobs".into(), "99".into()), // last wins
            ],
        };
        assert_eq!(args.get("jobs", 7usize), 99);
        assert!((args.get("load", 0.0f64) - 0.5).abs() < 1e-12);
        assert_eq!(args.get("seed", 123u64), 123);
        assert!(args.has("jobs"));
        assert!(!args.has("seed"));
    }

    #[test]
    #[should_panic(expected = "--jobs")]
    fn args_report_bad_values() {
        let args = Args {
            pairs: vec![("jobs".into(), "many".into())],
        };
        let _: usize = args.get("jobs", 1);
    }

    #[test]
    fn fig4_base_is_deterministic_given_same_args() {
        let args = Args { pairs: Vec::new() };
        assert_eq!(fig4_campaign_base(&args), fig4_campaign_base(&args));
    }
}
