//! Shared helpers for the experiment binaries that regenerate the paper's
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gridsched::core::strategy::StrategyKind;
use gridsched::flow::metascheduler::FlowAssignment;
use gridsched::flow::simulation::{run_campaign, CampaignConfig};
use gridsched::flow::VoReport;

pub mod timing;

/// The exact `--key` sets each experiment binary accepts. Binaries
/// validate against their list via [`Args::capture_validated`], so a
/// typo'd flag is a hard error instead of a silently ignored no-op (a
/// mistyped `--sede` would otherwise run the default seed and "pass").
pub mod keys {
    /// Knobs consumed by [`crate::fig4_campaign_base`], shared by every
    /// Fig. 4 binary.
    pub const FIG4_BASE: &[&str] = &[
        "jobs",
        "perturbations",
        "load",
        "horizon",
        "job-gap",
        "seed",
        "deadline-factor",
    ];
    /// `ablations` binary.
    pub const ABLATIONS: &[&str] = &["jobs", "load", "seed", "deadline-factor"];
    /// `bench_check` binary.
    pub const BENCH_CHECK: &[&str] = &[
        "fresh",
        "baseline",
        "min-speedup",
        "require-pooled",
        "online",
        "domains",
        "mono",
        "min-domain-ratio",
        "probe-index",
        "min-probe-speedup",
        "index-cache",
        "min-cache-speedup",
    ];
    /// `coordination_bridge` binary.
    pub const COORDINATION_BRIDGE: &[&str] = &["jobs", "local-jobs", "seed"];
    /// `fig3_admissible` binary.
    pub const FIG3_ADMISSIBLE: &[&str] = &["jobs", "load", "deadline-factor", "seed"];
    /// `fig4_cost_time` / `fig4_ttl_deviation` binaries (base knobs only).
    pub const FIG4: &[&str] = FIG4_BASE;
    /// `fig4_load` binary (base knobs plus sweep repeats).
    pub const FIG4_LOAD: &[&str] = &[
        "jobs",
        "perturbations",
        "load",
        "horizon",
        "job-gap",
        "seed",
        "deadline-factor",
        "repeats",
    ];
    /// `online_throughput` binary.
    pub const ONLINE_THROUGHPUT: &[&str] = &[
        "jobs",
        "seed",
        "rate",
        "queue",
        "perturbations",
        "domains",
        "flat",
        "out",
        "mono-out",
        "repeat",
    ];
    /// `probe_scaling` binary.
    pub const PROBE_SCALING: &[&str] = &["seed", "budget-ms", "probes", "max-reservations", "out"];
    /// `sec5_queue_policies` binary.
    pub const SEC5_QUEUE_POLICIES: &[&str] = &["jobs", "capacity", "seed"];
    /// `strategy_sweep` binary.
    pub const STRATEGY_SWEEP: &[&str] =
        &["seed", "load", "horizon", "budget-ms", "out", "telemetry"];
    /// `chaos_run` binary.
    pub const CHAOS_RUN: &[&str] = &[
        "seed",
        "seed-from-run-id",
        "campaigns",
        "budget-ms",
        "artifact",
        "inject",
        "replay",
        "out",
    ];
}

/// Parses `--key value` and bare `--flag` style overrides from
/// `std::env::args`.
///
/// Binaries capture through [`Args::capture_validated`] with their
/// [`keys`] list, rejecting unknown flags with a nonzero exit. A
/// `--flag` followed by another `--option` (or by nothing) is recorded as
/// a boolean flag with the value `"true"`, so `--telemetry` style switches
/// need no explicit value.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Captures the process arguments.
    #[must_use]
    pub fn capture() -> Self {
        Args::parse(std::env::args().skip(1))
    }

    /// Captures the process arguments, exiting with status 2 and a
    /// usage message on stderr if any `--key` is not in `known`.
    #[must_use]
    pub fn capture_validated(known: &[&str]) -> Self {
        let args = Args::capture();
        let unknown = args.unknown_keys(known);
        if !unknown.is_empty() {
            for key in &unknown {
                eprintln!("error: unknown flag --{key}");
            }
            eprintln!(
                "known flags: {}",
                known
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            std::process::exit(2);
        }
        args
    }

    /// The supplied keys that are not in `known`, in first-seen order.
    #[must_use]
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        let mut unknown: Vec<String> = Vec::new();
        for (key, _) in &self.pairs {
            if !known.contains(&key.as_str()) && !unknown.contains(key) {
                unknown.push(key.clone());
            }
        }
        unknown
    }

    /// Parses an explicit argument list (what [`Args::capture`] does with
    /// the process arguments).
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let raw: Vec<String> = raw.into_iter().collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let Some(key) = raw[i].strip_prefix("--") else {
                i += 1;
                continue;
            };
            match raw.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((key.to_owned(), value.clone()));
                    i += 2;
                }
                _ => {
                    // Bare flag: `--telemetry`, `--verbose`, end-of-args.
                    pairs.push((key.to_owned(), "true".to_owned()));
                    i += 1;
                }
            }
        }
        Args { pairs }
    }

    /// Whether an override for `key` was supplied.
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    /// Looks up an override, parsed to `T`, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.pairs.iter().rev().find(|(k, _)| k == key) {
            Some((_, v)) => match v.parse() {
                Ok(parsed) => parsed,
                Err(e) => panic!("--{key} {v}: {e}"),
            },
            None => default,
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::capture()
    }
}

/// The calibrated campaign configuration shared by the Fig. 4 binaries:
/// same network, pool mix and deadline pressure as the Fig. 3 experiment,
/// with a lighter *static* background (the dynamics come from the
/// perturbation stream instead).
#[must_use]
pub fn fig4_campaign_base(args: &Args) -> CampaignConfig {
    use gridsched::data::network::TransferModel;
    use gridsched::sim::time::SimDuration;
    use gridsched::workload::jobs::JobConfig;
    use gridsched::workload::pool::PoolConfig;

    CampaignConfig {
        jobs: args.get("jobs", 400),
        perturbations: args.get("perturbations", 400),
        background_load: args.get("load", 0.1),
        horizon: SimDuration::from_ticks(args.get("horizon", 5_000)),
        job_gap: SimDuration::from_ticks(args.get("job-gap", 12)),
        seed: args.get("seed", 2009),
        job_config: JobConfig {
            deadline_factor: args.get("deadline-factor", 6.0),
            ..JobConfig::default()
        },
        pool_config: PoolConfig {
            group_shares: (0.25, 0.35, 0.40),
            ..PoolConfig::default()
        },
        transfer_model: TransferModel::new(5.0, 3.5, SimDuration::from_ticks(1)),
        ..CampaignConfig::default()
    }
}

/// Runs one single-flow campaign for `kind`, sharing every other knob.
#[must_use]
pub fn campaign_for(kind: StrategyKind, base: &CampaignConfig) -> VoReport {
    run_campaign(&CampaignConfig {
        assignment: FlowAssignment::Single(kind),
        ..base.clone()
    })
}

/// Normalizes a slice of values to its maximum (the paper's "relative"
/// bars). All-zero input stays zero.
#[must_use]
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / max).collect()
}

/// Extracts the numeric value following `"key":` in a JSON document.
///
/// This is deliberately tiny — just enough to read back the flat
/// `BENCH_*.json` files this crate writes (first occurrence of the key
/// wins; nested objects with colliding key names are not a concern for
/// those files).
#[must_use]
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let idx = json.find(&pat)?;
    let rest = json[idx + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One checked metric of a bench-gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLine {
    /// The JSON key that was checked.
    pub key: &'static str,
    /// The freshly measured value, if the key was present.
    pub fresh: Option<f64>,
    /// The committed baseline value, if the key was present.
    pub baseline: Option<f64>,
    /// Whether the fresh value clears the threshold.
    pub pass: bool,
}

/// Compares a fresh `strategy_sweep` result against the committed
/// baseline: all overall speedups must be present and at or above
/// `min_speedup` (the paper-claim floor — absolute, not relative to the
/// baseline, because CI machines are slower and noisier than the one
/// that produced the committed numbers). Returns the per-metric lines
/// and the overall verdict.
///
/// When `require_pooled_ge_sequential` is set (CI passes it on runners
/// with ≥ 2 cores; meaningless on single-core machines where the pooled
/// sweep falls back to the sequential one), an extra line checks that the
/// persistent-pool sweep's overall speedup is at least the sequential
/// sweep's — the regression tripwire for pool hand-off overhead.
#[must_use]
pub fn bench_gate(
    fresh: &str,
    baseline: &str,
    min_speedup: f64,
    require_pooled_ge_sequential: bool,
) -> (Vec<GateLine>, bool) {
    let keys = [
        "overall_speedup_sequential",
        "overall_speedup_parallel",
        "overall_speedup_pooled",
    ];
    let mut lines: Vec<GateLine> = keys
        .iter()
        .map(|key| {
            let fresh_value = json_number(fresh, key);
            GateLine {
                key,
                fresh: fresh_value,
                baseline: json_number(baseline, key),
                pass: fresh_value.is_some_and(|v| v >= min_speedup),
            }
        })
        .collect();
    if require_pooled_ge_sequential {
        let sequential = json_number(fresh, "overall_speedup_sequential");
        let pooled = json_number(fresh, "overall_speedup_pooled");
        lines.push(GateLine {
            key: "pooled_ge_sequential",
            fresh: pooled,
            baseline: sequential,
            pass: match (pooled, sequential) {
                (Some(p), Some(s)) => p >= s,
                _ => false,
            },
        });
    }
    let pass = lines.iter().all(|l| l.pass);
    (lines, pass)
}

/// Compares a fresh *hierarchical* `online_throughput` result (flow layer
/// sharded over ≥ 2 job managers) against a fresh *monolithic* one (the
/// `--flat` collapsed flow layer on the same pool and workload): a flat
/// run makes bit-identical campaign decisions, so the hierarchy is pure
/// bookkeeping and its sustained throughput must stay within `min_ratio`
/// (e.g. 0.95) of the monolithic run's. Also requires the hierarchical
/// run to be genuinely sharded (≥ 2 managers), the monolithic reference
/// to really be monolithic, and the hierarchical run to be oracle-clean.
#[must_use]
pub fn domain_gate(hier: &str, mono: &str, min_ratio: f64) -> (Vec<GateLine>, bool) {
    let hier_domains = json_number(hier, "domains");
    let mono_domains = json_number(mono, "domains");
    let hier_sustained = json_number(hier, "sustained_jobs_per_sec");
    let mono_sustained = json_number(mono, "sustained_jobs_per_sec");
    let lines = vec![
        GateLine {
            key: "hierarchical_domains_ge_2",
            fresh: hier_domains,
            baseline: Some(2.0),
            pass: hier_domains.is_some_and(|d| d >= 2.0),
        },
        GateLine {
            key: "monolithic_domains_eq_1",
            fresh: mono_domains,
            baseline: Some(1.0),
            pass: mono_domains == Some(1.0),
        },
        GateLine {
            key: "sustained_vs_monolithic",
            fresh: hier_sustained,
            baseline: mono_sustained.map(|m| m * min_ratio),
            pass: match (hier_sustained, mono_sustained) {
                (Some(h), Some(m)) => m > 0.0 && h >= m * min_ratio,
                _ => false,
            },
        },
        GateLine {
            key: "hierarchical_oracle_clean",
            fresh: json_number(hier, "oracle_violations"),
            baseline: Some(0.0),
            pass: json_number(hier, "oracle_violations") == Some(0.0),
        },
    ];
    let pass = lines.iter().all(|l| l.pass);
    (lines, pass)
}

/// Gates a fresh `probe_scaling` result: the gap-indexed cold probe must
/// be at least `min_speedup`× the linear jump-walk at the benchmark's
/// largest pool, and that pool must be big enough for the comparison to
/// mean anything (≥ 100k reservations — below that both paths finish in
/// nanoseconds and the ratio is noise). The threshold is absolute, not
/// relative to a committed baseline, for the same reason as
/// [`bench_gate`]: CI machines are slower and noisier than the box that
/// produced the committed numbers.
#[must_use]
pub fn probe_gate(fresh: &str, min_speedup: f64) -> (Vec<GateLine>, bool) {
    let cold = json_number(fresh, "probe_index_speedup_cold");
    let reservations = json_number(fresh, "max_reservations");
    let lines = vec![
        GateLine {
            key: "probe_index_speedup_cold",
            fresh: cold,
            baseline: Some(min_speedup),
            pass: cold.is_some_and(|v| v >= min_speedup),
        },
        GateLine {
            key: "max_reservations_ge_100k",
            fresh: reservations,
            baseline: Some(100_000.0),
            pass: reservations.is_some_and(|r| r >= 100_000.0),
        },
    ];
    let pass = lines.iter().all(|l| l.pass);
    (lines, pass)
}

/// Gates the warm-capture keys of a fresh `probe_scaling` result: a warm
/// [`AvailabilitySnapshot`] capture of an unchanged pool must be at
/// least `min_speedup`× the cold (cache-disabled) capture at the
/// benchmark's largest pool, that pool must hold ≥ 100k windows for the
/// ratio to mean anything, the warm capture must have rebuilt **zero**
/// indexes, and it must have registered at least one cache hit (proof
/// the cached path — not a lucky allocator — produced the speedup). The
/// threshold is absolute for the same reason as [`bench_gate`].
///
/// [`AvailabilitySnapshot`]: gridsched::model::availability::AvailabilitySnapshot
#[must_use]
pub fn index_cache_gate(fresh: &str, min_speedup: f64) -> (Vec<GateLine>, bool) {
    let warm = json_number(fresh, "index_cache_warm_speedup");
    let windows = json_number(fresh, "index_cache_windows");
    let rebuilds = json_number(fresh, "index_cache_warm_rebuilds");
    let hits = json_number(fresh, "index_cache_warm_hits");
    let lines = vec![
        GateLine {
            key: "index_cache_warm_speedup",
            fresh: warm,
            baseline: Some(min_speedup),
            pass: warm.is_some_and(|v| v >= min_speedup),
        },
        GateLine {
            key: "index_cache_windows_ge_100k",
            fresh: windows,
            baseline: Some(100_000.0),
            pass: windows.is_some_and(|w| w >= 100_000.0),
        },
        GateLine {
            key: "index_cache_warm_rebuilds",
            fresh: rebuilds,
            baseline: Some(0.0),
            pass: rebuilds == Some(0.0),
        },
        GateLine {
            key: "index_cache_warm_hits",
            fresh: hits,
            baseline: Some(1.0),
            pass: hits.is_some_and(|h| h >= 1.0),
        },
    ];
    let pass = lines.iter().all(|l| l.pass);
    (lines, pass)
}

/// Prints a HOLDS/DIFFERS verdict line for a paper-claim check.
pub fn verdict(label: &str, holds: bool) {
    let mark = if holds { "HOLDS" } else { "DIFFERS" };
    println!("  [{mark}] {label}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_scales_to_unit_max() {
        assert_eq!(normalize(&[2.0, 4.0, 1.0]), vec![0.5, 1.0, 0.25]);
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn args_parse_overrides_and_fall_back() {
        let args = Args {
            pairs: vec![
                ("jobs".into(), "42".into()),
                ("load".into(), "0.5".into()),
                ("jobs".into(), "99".into()), // last wins
            ],
        };
        assert_eq!(args.get("jobs", 7usize), 99);
        assert!((args.get("load", 0.0f64) - 0.5).abs() < 1e-12);
        assert_eq!(args.get("seed", 123u64), 123);
        assert!(args.has("jobs"));
        assert!(!args.has("seed"));
    }

    #[test]
    fn args_parse_bare_flags() {
        let args = Args::parse(
            ["--telemetry", "--jobs", "5", "--verbose"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(args.has("telemetry"));
        assert!(args.get("telemetry", false));
        assert_eq!(args.get("jobs", 0usize), 5);
        assert!(args.get("verbose", false));
        assert!(!args.has("seed"));
    }

    #[test]
    fn unknown_flags_are_rejected_per_binary() {
        // One representative valid invocation and one typo'd flag per
        // binary with a strict key list.
        let cases: &[(&[&str], &[&str], &str)] = &[
            (
                keys::BENCH_CHECK,
                &[
                    "--fresh",
                    "f.json",
                    "--min-speedup",
                    "2.0",
                    "--require-pooled",
                ],
                "--min-sppedup",
            ),
            (
                keys::STRATEGY_SWEEP,
                &["--seed", "2009", "--budget-ms", "400", "--telemetry"],
                "--sede",
            ),
            (
                keys::ONLINE_THROUGHPUT,
                &[
                    "--jobs",
                    "60",
                    "--rate",
                    "0.15",
                    "--flat",
                    "--mono-out",
                    "m.json",
                ],
                "--rat",
            ),
            (
                keys::CHAOS_RUN,
                &[
                    "--seed",
                    "1",
                    "--campaigns",
                    "8",
                    "--budget-ms",
                    "0",
                    "--inject",
                    "collapse",
                ],
                "--cmapaigns",
            ),
        ];
        for (known, valid, typo) in cases {
            let args = Args::parse(valid.iter().map(|s| (*s).to_owned()));
            assert_eq!(args.unknown_keys(known), Vec::<String>::new());
            let mut with_typo: Vec<String> = valid.iter().map(|s| (*s).to_owned()).collect();
            with_typo.push((*typo).to_owned());
            let args = Args::parse(with_typo);
            assert_eq!(
                args.unknown_keys(known),
                vec![typo.trim_start_matches("--").to_owned()]
            );
        }
    }

    #[test]
    fn unknown_keys_dedupe_and_preserve_order() {
        let args = Args::parse(
            ["--b", "1", "--a", "--b", "2", "--jobs", "3"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(args.unknown_keys(&["jobs"]), vec!["b", "a"]);
    }

    #[test]
    #[should_panic(expected = "--jobs")]
    fn args_report_bad_values() {
        let args = Args {
            pairs: vec![("jobs".into(), "many".into())],
        };
        let _: usize = args.get("jobs", 1);
    }

    #[test]
    fn json_number_reads_flat_documents() {
        let doc = "{\n  \"a\": 1.5,\n  \"b\": -2e3,\n  \"c\": 7\n}";
        assert_eq!(json_number(doc, "a"), Some(1.5));
        assert_eq!(json_number(doc, "b"), Some(-2e3));
        assert_eq!(json_number(doc, "c"), Some(7.0));
        assert_eq!(json_number(doc, "missing"), None);
        assert_eq!(json_number("{\"a\": \"text\"}", "a"), None);
    }

    #[test]
    fn bench_gate_passes_and_fails_on_threshold() {
        let fresh = "{\"overall_speedup_sequential\": 5.0, \"overall_speedup_parallel\": 4.0, \
                     \"overall_speedup_pooled\": 6.0}";
        let baseline =
            "{\"overall_speedup_sequential\": 34.1, \"overall_speedup_parallel\": 28.9, \
                        \"overall_speedup_pooled\": 35.2}";
        let (lines, pass) = bench_gate(fresh, baseline, 2.0, false);
        assert!(pass);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].fresh, Some(5.0));
        assert_eq!(lines[0].baseline, Some(34.1));

        let (lines, pass) = bench_gate(fresh, baseline, 4.5, false);
        assert!(!pass, "parallel speedup 4.0 is below 4.5");
        assert!(lines[0].pass);
        assert!(!lines[1].pass);
        assert!(lines[2].pass);
    }

    #[test]
    fn bench_gate_pooled_vs_sequential_line() {
        let ahead = "{\"overall_speedup_sequential\": 5.0, \"overall_speedup_parallel\": 4.0, \
                     \"overall_speedup_pooled\": 6.0}";
        let (lines, pass) = bench_gate(ahead, ahead, 2.0, true);
        assert!(pass);
        assert_eq!(lines.len(), 4);
        let gate = &lines[3];
        assert_eq!(gate.key, "pooled_ge_sequential");
        assert_eq!(gate.fresh, Some(6.0));
        assert_eq!(gate.baseline, Some(5.0));
        assert!(gate.pass);

        let behind = "{\"overall_speedup_sequential\": 5.0, \"overall_speedup_parallel\": 4.0, \
                      \"overall_speedup_pooled\": 4.9}";
        let (lines, pass) = bench_gate(behind, behind, 2.0, true);
        assert!(!pass, "pooled 4.9 is behind sequential 5.0");
        assert!(!lines[3].pass);
    }

    #[test]
    fn bench_gate_fails_on_missing_keys() {
        let (lines, pass) = bench_gate("{}", "{}", 2.0, true);
        assert!(!pass);
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.fresh.is_none() && !l.pass));
    }

    #[test]
    fn domain_gate_checks_ratio_and_sharding() {
        let hier = "{\"domains\": 3, \"sustained_jobs_per_sec\": 96.0, \"oracle_violations\": 0}";
        let mono = "{\"domains\": 1, \"sustained_jobs_per_sec\": 100.0}";
        let (lines, pass) = domain_gate(hier, mono, 0.95);
        assert!(pass);
        assert_eq!(lines.len(), 4);

        // Hierarchical run slower than the floor fails.
        let slow = "{\"domains\": 3, \"sustained_jobs_per_sec\": 90.0, \"oracle_violations\": 0}";
        let (lines, pass) = domain_gate(slow, mono, 0.95);
        assert!(!pass);
        assert!(!lines[2].pass);

        // A "hierarchical" run that is not actually sharded fails.
        let unsharded =
            "{\"domains\": 1, \"sustained_jobs_per_sec\": 96.0, \"oracle_violations\": 0}";
        assert!(!domain_gate(unsharded, mono, 0.95).1);

        // A monolithic reference that is sharded fails.
        let sharded_mono = "{\"domains\": 2, \"sustained_jobs_per_sec\": 100.0}";
        assert!(!domain_gate(hier, sharded_mono, 0.95).1);

        // Missing keys fail.
        assert!(!domain_gate("{}", "{}", 0.95).1);
    }

    #[test]
    fn probe_gate_checks_speedup_and_scale() {
        let good = "{\"probe_index_speedup_cold\": 12.4, \"probe_index_speedup_typical\": 1.1, \
                    \"max_reservations\": 200000}";
        let (lines, pass) = probe_gate(good, 5.0);
        assert!(pass);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].fresh, Some(12.4));
        assert_eq!(lines[0].baseline, Some(5.0));

        // Below the speedup floor fails.
        assert!(!probe_gate(good, 20.0).1);

        // A toy-sized run fails even with a huge ratio.
        let tiny = "{\"probe_index_speedup_cold\": 50.0, \"max_reservations\": 10000}";
        let (lines, pass) = probe_gate(tiny, 5.0);
        assert!(!pass);
        assert!(lines[0].pass);
        assert!(!lines[1].pass);

        // Missing keys fail.
        assert!(!probe_gate("{}", 1.0).1);
    }

    #[test]
    fn index_cache_gate_checks_speedup_scale_and_rebuilds() {
        let good = "{\"index_cache_warm_speedup\": 42.7, \
                    \"index_cache_windows\": 200000, \
                    \"index_cache_warm_rebuilds\": 0, \
                    \"index_cache_warm_hits\": 37}";
        let (lines, pass) = index_cache_gate(good, 10.0);
        assert!(pass);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].fresh, Some(42.7));
        assert_eq!(lines[0].baseline, Some(10.0));

        // Below the warm-capture floor fails.
        assert!(!index_cache_gate(good, 100.0).1);

        // A toy-sized pool fails even with a huge ratio.
        let tiny = "{\"index_cache_warm_speedup\": 80.0, \
                    \"index_cache_windows\": 5000, \
                    \"index_cache_warm_rebuilds\": 0, \
                    \"index_cache_warm_hits\": 4}";
        let (lines, pass) = index_cache_gate(tiny, 10.0);
        assert!(!pass);
        assert!(lines[0].pass);
        assert!(!lines[1].pass);

        // Any rebuild on the warm path fails: the cache went stale or
        // was bypassed, so the speedup measured something else.
        let rebuilt = "{\"index_cache_warm_speedup\": 42.7, \
                       \"index_cache_windows\": 200000, \
                       \"index_cache_warm_rebuilds\": 1, \
                       \"index_cache_warm_hits\": 37}";
        assert!(!index_cache_gate(rebuilt, 10.0).1);

        // Zero recorded hits fails: nothing proves the cache served.
        let cold = "{\"index_cache_warm_speedup\": 42.7, \
                    \"index_cache_windows\": 200000, \
                    \"index_cache_warm_rebuilds\": 0, \
                    \"index_cache_warm_hits\": 0}";
        assert!(!index_cache_gate(cold, 10.0).1);

        // Missing keys fail.
        assert!(!index_cache_gate("{}", 1.0).1);
    }

    #[test]
    fn fig4_base_is_deterministic_given_same_args() {
        let args = Args { pairs: Vec::new() };
        assert_eq!(fig4_campaign_base(&args), fig4_campaign_base(&args));
    }
}
