//! Bench: raw discrete-event engine throughput and timetable
//! operations (the substrate everything else stands on).

use gridsched::model::timetable::{ReservationOwner, Timetable};
use gridsched::model::window::TimeWindow;
use gridsched::sim::engine::{Engine, Scheduler, World};
use gridsched::sim::time::{SimDuration, SimTime};
use gridsched_bench::timing::Group;

struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), s: &mut Scheduler<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.after(SimDuration::TICK, ());
        }
    }
}

fn main() {
    let group = Group::new("sim_engine");
    for events in [1_000u64, 10_000, 100_000] {
        let label = format!("event_chain/{events}");
        group.bench(&label, || {
            let mut engine = Engine::new();
            engine.prime(SimTime::ZERO, ());
            let mut world = Chain { remaining: events };
            engine.run(&mut world)
        });
    }

    let group = Group::new("timetable");
    // A timetable with 1000 busy windows; measure earliest-fit probing.
    let mut tt = Timetable::new();
    for k in 0..1000u64 {
        let w = TimeWindow::new(SimTime::from_ticks(k * 10), SimTime::from_ticks(k * 10 + 7))
            .expect("valid");
        tt.reserve(w, ReservationOwner::Background(k))
            .expect("free");
    }
    group.bench("earliest_fit_1000_reservations", || {
        tt.earliest_fit(
            SimTime::ZERO,
            SimDuration::from_ticks(4),
            SimTime::from_ticks(20_000),
        )
    });
    let w =
        TimeWindow::new(SimTime::from_ticks(10_007), SimTime::from_ticks(10_009)).expect("valid");
    let cell = std::cell::RefCell::new(tt);
    group.bench("reserve_release_cycle", || {
        let mut tt = cell.borrow_mut();
        let id = tt
            .reserve(w, ReservationOwner::Background(u64::MAX))
            .expect("free");
        tt.release(id).expect("present");
    });
}
