//! Criterion bench: raw discrete-event engine throughput and timetable
//! operations (the substrate everything else stands on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gridsched::model::timetable::{ReservationOwner, Timetable};
use gridsched::model::window::TimeWindow;
use gridsched::sim::engine::{Engine, Scheduler, World};
use gridsched::sim::time::{SimDuration, SimTime};

struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), s: &mut Scheduler<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.after(SimDuration::TICK, ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    for events in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("event_chain", events), &events, |b, &n| {
            b.iter(|| {
                let mut engine = Engine::new();
                engine.prime(SimTime::ZERO, ());
                let mut world = Chain { remaining: n };
                engine.run(&mut world)
            })
        });
    }
    group.finish();
}

fn bench_timetable(c: &mut Criterion) {
    let mut group = c.benchmark_group("timetable");
    // A timetable with 1000 busy windows; measure earliest-fit probing.
    let mut tt = Timetable::new();
    for k in 0..1000u64 {
        let w = TimeWindow::new(
            SimTime::from_ticks(k * 10),
            SimTime::from_ticks(k * 10 + 7),
        )
        .expect("valid");
        tt.reserve(w, ReservationOwner::Background(k)).expect("free");
    }
    group.bench_function("earliest_fit_1000_reservations", |b| {
        b.iter(|| {
            tt.earliest_fit(
                SimTime::ZERO,
                SimDuration::from_ticks(4),
                SimTime::from_ticks(20_000),
            )
        })
    });
    group.bench_function("reserve_release_cycle", |b| {
        let w = TimeWindow::new(SimTime::from_ticks(10_007), SimTime::from_ticks(10_009))
            .expect("valid");
        b.iter(|| {
            let id = tt.reserve(w, ReservationOwner::Background(u64::MAX)).expect("free");
            tt.release(id).expect("present");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_timetable);
criterion_main!(benches);
