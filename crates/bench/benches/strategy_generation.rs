//! Bench: strategy generation cost — the §4 ablation.
//!
//! The paper motivates MS1 by generation economy: "The type S1 has more
//! computational expenses than MS1." This bench quantifies the claim: a
//! full four-scenario sweep (S1/S2/S3) versus the two-scenario best/worst
//! sweep (MS1) on identical inputs.

use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
use gridsched::model::ids::JobId;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::jobs::{generate_job, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::timing::Group;

fn main() {
    let mut rng = SimRng::seed_from(7);
    let pool = generate_pool(&PoolConfig::default(), &mut rng);
    let job = generate_job(
        &JobConfig {
            deadline_factor: 6.0,
            ..JobConfig::default()
        },
        JobId::new(0),
        SimTime::ZERO,
        &mut rng,
    );

    let group = Group::new("strategy_generation");
    for kind in StrategyKind::ALL {
        let config = StrategyConfig::for_kind(kind, &pool);
        group.bench(kind.name(), || {
            Strategy::generate(&job, &pool, &config, SimTime::ZERO)
        });
    }
}
