//! Bench: the critical works method itself.
//!
//! Measures `build_distribution` on the paper's Fig. 2 job and on random
//! jobs of growing size, on a 25-node pool.

use gridsched::core::method::{build_distribution, build_distribution_recovering, ScheduleRequest};
use gridsched::data::policy::DataPolicy;
use gridsched::model::estimate::EstimateScenario;
use gridsched::model::fixtures::fig2_job;
use gridsched::model::ids::{DomainId, JobId};
use gridsched::model::job::Job;
use gridsched::model::node::ResourcePool;
use gridsched::model::perf::Perf;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimTime;
use gridsched::workload::jobs::{generate_job, JobConfig};
use gridsched::workload::pool::{generate_pool, PoolConfig};
use gridsched_bench::timing::Group;

fn fig2_pool() -> ResourcePool {
    let mut pool = ResourcePool::new();
    for j in 1..=4u32 {
        pool.add_node(
            DomainId::new(0),
            Perf::new(1.0 / f64::from(j)).expect("valid"),
        );
    }
    pool
}

fn sized_job(layers: usize, seed: u64) -> Job {
    let cfg = JobConfig {
        layers_min: layers,
        layers_max: layers,
        width_max: 3,
        // Generous: the bench measures scheduling speed, not deadline
        // pressure, and deep jobs need room on a random pool.
        deadline_factor: 20.0,
        ..JobConfig::default()
    };
    generate_job(
        &cfg,
        JobId::new(seed),
        SimTime::ZERO,
        &mut SimRng::seed_from(seed),
    )
}

fn main() {
    let group = Group::new("critical_works");
    let policy = DataPolicy::remote_access();

    let fig2 = fig2_job();
    let pool4 = fig2_pool();
    group.bench("fig2_job_4_nodes", || {
        build_distribution(&ScheduleRequest {
            job: &fig2,
            pool: &pool4,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        })
        .expect("feasible")
    });

    let pool = generate_pool(&PoolConfig::default(), &mut SimRng::seed_from(1));
    for layers in [3usize, 6, 10] {
        let job = sized_job(layers, layers as u64);
        let label = format!("random_job_tasks/{}", job.task_count());
        group.bench(&label, || {
            build_distribution_recovering(&ScheduleRequest {
                job: &job,
                pool: &pool,
                policy: &policy,
                scenario: EstimateScenario::BEST,
                release: SimTime::ZERO,
            })
            .expect("feasible with recovery")
        });
    }
}
