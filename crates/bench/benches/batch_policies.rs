//! Criterion bench: local batch-system simulation under each §5 policy.

use criterion::{criterion_group, criterion_main, Criterion};

use gridsched::batch::cluster::ClusterConfig;
use gridsched::batch::policy::QueuePolicy;
use gridsched::sim::rng::SimRng;
use gridsched::workload::batch::{generate_batch_jobs, BatchWorkloadConfig};

fn bench_batch_policies(c: &mut Criterion) {
    let jobs = generate_batch_jobs(
        &BatchWorkloadConfig {
            jobs: 200,
            width_max: 6,
            mean_gap: 6,
            ..BatchWorkloadConfig::default()
        },
        &mut SimRng::seed_from(3),
    );

    let mut group = c.benchmark_group("batch_policies_200_jobs");
    for policy in QueuePolicy::ALL {
        let cluster = ClusterConfig::new(8, policy);
        group.bench_function(policy.name(), |b| b.iter(|| cluster.run(&jobs)));
    }
    group.finish();
}

criterion_group!(benches, bench_batch_policies);
criterion_main!(benches);
