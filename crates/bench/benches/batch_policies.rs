//! Bench: local batch-system simulation under each §5 policy.

use gridsched::batch::cluster::ClusterConfig;
use gridsched::batch::policy::QueuePolicy;
use gridsched::sim::rng::SimRng;
use gridsched::workload::batch::{generate_batch_jobs, BatchWorkloadConfig};
use gridsched_bench::timing::Group;

fn main() {
    let jobs = generate_batch_jobs(
        &BatchWorkloadConfig {
            jobs: 200,
            width_max: 6,
            mean_gap: 6,
            ..BatchWorkloadConfig::default()
        },
        &mut SimRng::seed_from(3),
    );

    let group = Group::new("batch_policies_200_jobs");
    for policy in QueuePolicy::ALL {
        let cluster = ClusterConfig::new(8, policy);
        group.bench(policy.name(), || cluster.run(&jobs));
    }
}
