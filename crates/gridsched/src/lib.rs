//! # gridsched
//!
//! A faithful, from-scratch reproduction of
//!
//! > V. Toporkov, *"Application-Level and Job-Flow Scheduling: An Approach
//! > for Achieving Quality of Service in Distributed Computing"*,
//! > PaCT 2009, LNCS 5698, pp. 350–359.
//!
//! The paper proposes scheduling **strategies** — sets of supporting
//! schedules built with the **critical works method** — coordinated across
//! two levels: application-level co-allocation of compound-job tasks, and
//! job-flow management in a hierarchical virtual organization.
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] | deterministic discrete-event engine, seeded RNG |
//! | [`model`] | nodes, performance groups, timetables, compound-job DAGs |
//! | [`data`] | transfer model, replica catalog, S1/S2/S3 data policies |
//! | [`batch`] | local batch systems: FCFS, LWF, backfilling, reservations |
//! | [`workload`] | §4 random workloads: pools, job streams, background load |
//! | [`core`] | **the contribution**: critical works, cost model, strategies |
//! | [`flow`] | metascheduler, job flows, dynamic VO campaign simulation |
//! | [`metrics`] | summaries, histograms, group loads, text tables |
//!
//! # Quickstart
//!
//! Schedule the paper's Fig. 2 job and print its supporting schedules:
//!
//! ```
//! use gridsched::core::strategy::{Strategy, StrategyConfig, StrategyKind};
//! use gridsched::model::fixtures::fig2_job;
//! use gridsched::model::ids::DomainId;
//! use gridsched::model::node::ResourcePool;
//! use gridsched::model::perf::Perf;
//! use gridsched::sim::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let job = fig2_job();
//! let mut pool = ResourcePool::new();
//! for j in 1..=4u32 {
//!     pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
//! }
//! let config = StrategyConfig::for_kind(StrategyKind::S2, &pool);
//! let strategy = Strategy::generate(&job, &pool, &config, SimTime::ZERO);
//! assert!(strategy.is_admissible());
//! for dist in strategy.distributions() {
//!     println!("{dist}");
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gridsched_batch as batch;
pub use gridsched_core as core;
pub use gridsched_data as data;
pub use gridsched_flow as flow;
pub use gridsched_metrics as metrics;
pub use gridsched_model as model;
pub use gridsched_sim as sim;
pub use gridsched_workload as workload;
