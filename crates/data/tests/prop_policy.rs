//! Property tests: data-policy delay structure.

use proptest::prelude::*;

use gridsched_data::network::TransferModel;
use gridsched_data::policy::DataPolicy;
use gridsched_model::ids::{DomainId, NodeId};
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::Perf;
use gridsched_model::volume::Volume;
use gridsched_sim::time::SimDuration;

fn pool_with(domains: &[u32]) -> ResourcePool {
    let mut pool = ResourcePool::new();
    for &d in domains {
        pool.add_node(DomainId::new(d), Perf::FULL);
    }
    pool
}

fn policies(pool: &ResourcePool) -> Vec<DataPolicy> {
    let storage = pool.nodes().next().expect("non-empty").id();
    vec![
        DataPolicy::active_replication(),
        DataPolicy::remote_access(),
        DataPolicy::static_storage(storage),
    ]
}

proptest! {
    /// Delays are always non-negative in span, zero on the same node, and
    /// monotone in volume.
    #[test]
    fn delays_are_sane(
        domains in prop::collection::vec(0u32..4, 2..10),
        from_idx in any::<prop::sample::Index>(),
        to_idx in any::<prop::sample::Index>(),
        v1 in 1.0f64..50.0,
        extra in 0.0f64..50.0,
    ) {
        let pool = pool_with(&domains);
        let from = NodeId::new(from_idx.index(domains.len()) as u32);
        let to = NodeId::new(to_idx.index(domains.len()) as u32);
        for policy in policies(&pool) {
            let small = policy.consumer_delay(Volume::new(v1), from, to, &pool);
            let large = policy.consumer_delay(Volume::new(v1 + extra), from, to, &pool);
            prop_assert!(large >= small, "{policy}: delay not monotone in volume");
            let same = policy.consumer_delay(Volume::new(v1), from, from, &pool);
            prop_assert_eq!(same, SimDuration::ZERO, "{}: same node not free", policy);
            let zero = policy.consumer_delay(Volume::ZERO, from, to, &pool);
            prop_assert_eq!(zero, SimDuration::ZERO, "{}: empty data not free", policy);
        }
    }

    /// Replication's consumer delay never exceeds remote access's for the
    /// same arc: a local replica is at least as close as the producer.
    #[test]
    fn replication_dominates_remote_access(
        domains in prop::collection::vec(0u32..4, 2..10),
        from_idx in any::<prop::sample::Index>(),
        to_idx in any::<prop::sample::Index>(),
        volume in 1.0f64..50.0,
    ) {
        let pool = pool_with(&domains);
        let from = NodeId::new(from_idx.index(domains.len()) as u32);
        let to = NodeId::new(to_idx.index(domains.len()) as u32);
        let v = Volume::new(volume);
        let repl = DataPolicy::active_replication().consumer_delay(v, from, to, &pool);
        let remote = DataPolicy::remote_access().consumer_delay(v, from, to, &pool);
        prop_assert!(repl <= remote, "replication {repl} > remote {remote}");
    }

    /// Point-to-point transfer time never beats the triangle through a
    /// relay by more than the relay overhead allows: direct <= via-relay.
    #[test]
    fn transfers_satisfy_triangle_inequality(
        domains in prop::collection::vec(0u32..4, 3..10),
        a_idx in any::<prop::sample::Index>(),
        b_idx in any::<prop::sample::Index>(),
        c_idx in any::<prop::sample::Index>(),
        volume in 1.0f64..50.0,
    ) {
        let pool = pool_with(&domains);
        let model = TransferModel::default();
        let v = Volume::new(volume);
        let a = pool.node(NodeId::new(a_idx.index(domains.len()) as u32));
        let b = pool.node(NodeId::new(b_idx.index(domains.len()) as u32));
        let c = pool.node(NodeId::new(c_idx.index(domains.len()) as u32));
        let direct = model.point_to_point(v, a, c);
        let relayed = model.point_to_point(v, a, b) + model.point_to_point(v, b, c);
        if a.id() != b.id() && b.id() != c.id() {
            prop_assert!(direct <= relayed, "direct {direct} > relayed {relayed}");
        }
    }

    /// Network traffic accounting is non-negative and zero for empty data.
    #[test]
    fn traffic_accounting_is_sane(
        domains in prop::collection::vec(0u32..4, 2..10),
        from_idx in any::<prop::sample::Index>(),
        to_idx in any::<prop::sample::Index>(),
        volume in 1.0f64..50.0,
    ) {
        let pool = pool_with(&domains);
        let from = NodeId::new(from_idx.index(domains.len()) as u32);
        let to = NodeId::new(to_idx.index(domains.len()) as u32);
        for policy in policies(&pool) {
            let t = policy.network_traffic(Volume::new(volume), from, to, &pool);
            prop_assert!(t.units() >= 0.0);
            let z = policy.network_traffic(Volume::ZERO, from, to, &pool);
            prop_assert!(z.is_zero());
        }
    }
}
