//! Property tests: data-policy delay structure.

use gridsched_data::network::TransferModel;
use gridsched_data::policy::DataPolicy;
use gridsched_model::ids::{DomainId, NodeId};
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::Perf;
use gridsched_model::volume::Volume;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::time::SimDuration;

fn pool_with(domains: &[u32]) -> ResourcePool {
    let mut pool = ResourcePool::new();
    for &d in domains {
        pool.add_node(DomainId::new(d), Perf::FULL);
    }
    pool
}

fn gen_domains(g: &mut Gen, min: usize, max: usize) -> Vec<u32> {
    g.vec_of(min, max, |g| g.u64_in(0, 3) as u32)
}

fn policies(pool: &ResourcePool) -> Vec<DataPolicy> {
    let storage = pool.nodes().next().expect("non-empty").id();
    vec![
        DataPolicy::active_replication(),
        DataPolicy::remote_access(),
        DataPolicy::static_storage(storage),
    ]
}

/// Delays are always non-negative in span, zero on the same node, and
/// monotone in volume.
#[test]
fn delays_are_sane() {
    check(256, |g| {
        let domains = gen_domains(g, 2, 9);
        let from = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let to = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let v1 = g.f64_in(1.0, 50.0);
        let extra = g.f64_in(0.0, 50.0);
        let pool = pool_with(&domains);
        for policy in policies(&pool) {
            let small = policy.consumer_delay(Volume::new(v1), from, to, &pool);
            let large = policy.consumer_delay(Volume::new(v1 + extra), from, to, &pool);
            assert!(large >= small, "{policy}: delay not monotone in volume");
            let same = policy.consumer_delay(Volume::new(v1), from, from, &pool);
            assert_eq!(same, SimDuration::ZERO, "{policy}: same node not free");
            let zero = policy.consumer_delay(Volume::ZERO, from, to, &pool);
            assert_eq!(zero, SimDuration::ZERO, "{policy}: empty data not free");
        }
    });
}

/// Replication's consumer delay never exceeds remote access's for the
/// same arc: a local replica is at least as close as the producer.
#[test]
fn replication_dominates_remote_access() {
    check(256, |g| {
        let domains = gen_domains(g, 2, 9);
        let from = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let to = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let volume = g.f64_in(1.0, 50.0);
        let pool = pool_with(&domains);
        let v = Volume::new(volume);
        let repl = DataPolicy::active_replication().consumer_delay(v, from, to, &pool);
        let remote = DataPolicy::remote_access().consumer_delay(v, from, to, &pool);
        assert!(repl <= remote, "replication {repl} > remote {remote}");
    });
}

/// Point-to-point transfer time never beats the triangle through a
/// relay by more than the relay overhead allows: direct <= via-relay.
#[test]
fn transfers_satisfy_triangle_inequality() {
    check(256, |g| {
        let domains = gen_domains(g, 3, 9);
        let a_id = g.usize_in(0, domains.len() - 1) as u32;
        let b_id = g.usize_in(0, domains.len() - 1) as u32;
        let c_id = g.usize_in(0, domains.len() - 1) as u32;
        let volume = g.f64_in(1.0, 50.0);
        let pool = pool_with(&domains);
        let model = TransferModel::default();
        let v = Volume::new(volume);
        let a = pool.node(NodeId::new(a_id));
        let b = pool.node(NodeId::new(b_id));
        let c = pool.node(NodeId::new(c_id));
        let direct = model.point_to_point(v, a, c);
        let relayed = model.point_to_point(v, a, b) + model.point_to_point(v, b, c);
        if a.id() != b.id() && b.id() != c.id() {
            assert!(direct <= relayed, "direct {direct} > relayed {relayed}");
        }
    });
}

/// Network traffic accounting is non-negative and zero for empty data.
#[test]
fn traffic_accounting_is_sane() {
    check(256, |g| {
        let domains = gen_domains(g, 2, 9);
        let from = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let to = NodeId::new(g.usize_in(0, domains.len() - 1) as u32);
        let volume = g.f64_in(1.0, 50.0);
        let pool = pool_with(&domains);
        for policy in policies(&pool) {
            let t = policy.network_traffic(Volume::new(volume), from, to, &pool);
            assert!(t.units() >= 0.0);
            let z = policy.network_traffic(Volume::ZERO, from, to, &pool);
            assert!(z.is_zero());
        }
    });
}
