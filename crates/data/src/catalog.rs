//! Replica catalog: which nodes hold a copy of which dataset.

use std::collections::{BTreeSet, HashMap};

use gridsched_sim::time::SimDuration;

use gridsched_model::ids::{DataId, NodeId};
use gridsched_model::node::ResourcePool;
use gridsched_model::volume::Volume;

use crate::network::TransferModel;

/// Tracks dataset replicas across the virtual organization, in the spirit of
/// the data-grid replication services the paper builds on (refs. [11, 18,
/// 19]).
///
/// # Examples
///
/// ```
/// use gridsched_data::catalog::ReplicaCatalog;
/// use gridsched_model::ids::{DataId, NodeId};
///
/// let mut cat = ReplicaCatalog::new();
/// cat.register(DataId::new(1), NodeId::new(0));
/// assert!(cat.has_replica(DataId::new(1), NodeId::new(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    locations: HashMap<DataId, BTreeSet<NodeId>>,
    replicas_created: u64,
}

impl ReplicaCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        ReplicaCatalog::default()
    }

    /// Registers a replica of `data` on `node`. Returns `true` if it was
    /// new.
    pub fn register(&mut self, data: DataId, node: NodeId) -> bool {
        let inserted = self.locations.entry(data).or_default().insert(node);
        if inserted {
            self.replicas_created += 1;
        }
        inserted
    }

    /// Removes a replica. Returns `true` if it existed.
    pub fn unregister(&mut self, data: DataId, node: NodeId) -> bool {
        match self.locations.get_mut(&data) {
            Some(set) => {
                let removed = set.remove(&node);
                if set.is_empty() {
                    self.locations.remove(&data);
                }
                removed
            }
            None => false,
        }
    }

    /// Whether `node` holds `data`.
    #[must_use]
    pub fn has_replica(&self, data: DataId, node: NodeId) -> bool {
        self.locations
            .get(&data)
            .is_some_and(|set| set.contains(&node))
    }

    /// Nodes holding `data`, ascending by id.
    pub fn holders(&self, data: DataId) -> impl Iterator<Item = NodeId> + '_ {
        self.locations
            .get(&data)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Number of replicas of `data`.
    #[must_use]
    pub fn replica_count(&self, data: DataId) -> usize {
        self.locations.get(&data).map_or(0, BTreeSet::len)
    }

    /// Total replicas registered over the catalog's lifetime.
    #[must_use]
    pub fn replicas_created(&self) -> u64 {
        self.replicas_created
    }

    /// The replica of `data` reachable from `to` in the least time, with
    /// that time. Deterministic: ties break towards the smaller node id.
    #[must_use]
    pub fn best_source(
        &self,
        data: DataId,
        volume: Volume,
        to: NodeId,
        pool: &ResourcePool,
        model: &TransferModel,
    ) -> Option<(NodeId, SimDuration)> {
        let target = pool.node(to);
        self.holders(data)
            .map(|src| {
                let t = model.point_to_point(volume, pool.node(src), target);
                (src, t)
            })
            .min_by_key(|&(src, t)| (t, src))
    }

    /// Drops every replica. Used between experiment repetitions.
    pub fn clear(&mut self) {
        self.locations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;

    fn pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL); // N0
        pool.add_node(DomainId::new(0), Perf::FULL); // N1
        pool.add_node(DomainId::new(1), Perf::FULL); // N2
        pool
    }

    #[test]
    fn register_and_query() {
        let mut cat = ReplicaCatalog::new();
        let d = DataId::new(7);
        assert!(cat.register(d, NodeId::new(0)));
        assert!(!cat.register(d, NodeId::new(0)), "duplicate is not new");
        assert!(cat.register(d, NodeId::new(2)));
        assert_eq!(cat.replica_count(d), 2);
        assert_eq!(cat.replicas_created(), 2);
        assert_eq!(
            cat.holders(d).collect::<Vec<_>>(),
            vec![NodeId::new(0), NodeId::new(2)]
        );
    }

    #[test]
    fn unregister_removes() {
        let mut cat = ReplicaCatalog::new();
        let d = DataId::new(1);
        cat.register(d, NodeId::new(0));
        assert!(cat.unregister(d, NodeId::new(0)));
        assert!(!cat.unregister(d, NodeId::new(0)));
        assert_eq!(cat.replica_count(d), 0);
    }

    #[test]
    fn best_source_prefers_local_replica() {
        let pool = pool();
        let model = TransferModel::default();
        let mut cat = ReplicaCatalog::new();
        let d = DataId::new(1);
        let v = Volume::new(5.0);
        cat.register(d, NodeId::new(2)); // other domain
        let (src, t) = cat
            .best_source(d, v, NodeId::new(0), &pool, &model)
            .unwrap();
        assert_eq!(src, NodeId::new(2));
        assert_eq!(t.ticks(), 3);
        // A same-domain replica beats the cross-domain one.
        cat.register(d, NodeId::new(1));
        let (src, t) = cat
            .best_source(d, v, NodeId::new(0), &pool, &model)
            .unwrap();
        assert_eq!(src, NodeId::new(1));
        assert_eq!(t.ticks(), 1);
        // A same-node replica is free.
        cat.register(d, NodeId::new(0));
        let (src, t) = cat
            .best_source(d, v, NodeId::new(0), &pool, &model)
            .unwrap();
        assert_eq!(src, NodeId::new(0));
        assert_eq!(t, SimDuration::ZERO);
    }

    #[test]
    fn best_source_of_unknown_data_is_none() {
        let pool = pool();
        let cat = ReplicaCatalog::new();
        assert!(cat
            .best_source(
                DataId::new(9),
                Volume::new(1.0),
                NodeId::new(0),
                &pool,
                &TransferModel::default()
            )
            .is_none());
    }

    #[test]
    fn clear_empties_catalog_but_keeps_lifetime_count() {
        let mut cat = ReplicaCatalog::new();
        cat.register(DataId::new(1), NodeId::new(0));
        cat.clear();
        assert_eq!(cat.replica_count(DataId::new(1)), 0);
        assert_eq!(cat.replicas_created(), 1);
    }
}
