//! # gridsched-data
//!
//! Data-grid substrate for the `gridsched` reproduction of Toporkov's
//! PaCT 2009 scheduling framework: transfer timing, replica tracking and the
//! data-access policies that distinguish the paper's strategy families
//! (S1: active replication, S2: remote access, S3: static storage).
//!
//! # Examples
//!
//! ```
//! use gridsched_data::policy::DataPolicy;
//! use gridsched_model::ids::{DomainId, NodeId};
//! use gridsched_model::node::ResourcePool;
//! use gridsched_model::perf::Perf;
//! use gridsched_model::volume::Volume;
//!
//! let mut pool = ResourcePool::new();
//! let a = pool.add_node(DomainId::new(0), Perf::new(1.0)?);
//! let b = pool.add_node(DomainId::new(1), Perf::new(0.5)?);
//!
//! let remote = DataPolicy::remote_access();
//! let delay = remote.consumer_delay(Volume::new(5.0), a, b, &pool);
//! assert!(delay.ticks() > 0);
//! # Ok::<(), gridsched_model::perf::PerfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod network;
pub mod policy;

pub use catalog::ReplicaCatalog;
pub use network::TransferModel;
pub use policy::{DataPolicy, DataPolicyKind};
