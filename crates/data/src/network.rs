//! Point-to-point data transfer timing.

use gridsched_sim::time::SimDuration;

use gridsched_model::node::Node;
use gridsched_model::volume::Volume;

/// Transfer-time model between processor nodes.
///
/// Links inside a domain (nodes "grouped together under the node manager
/// control", §2) are fast and latency-free; links between domains are slower
/// and pay a fixed latency.
///
/// # Examples
///
/// ```
/// use gridsched_data::network::TransferModel;
/// use gridsched_model::volume::Volume;
///
/// let m = TransferModel::default();
/// assert_eq!(m.intra_domain_time(Volume::new(5.0)).ticks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferModel {
    intra_speed: f64,
    inter_speed: f64,
    inter_latency: SimDuration,
}

impl TransferModel {
    /// Default intra-domain speed, in volume units per tick. Chosen so that
    /// the Fig. 2 arcs (volume 5) take one tick, matching the paper's Gantt
    /// charts.
    pub const DEFAULT_INTRA_SPEED: f64 = 5.0;
    /// Default inter-domain speed (half the intra-domain one).
    pub const DEFAULT_INTER_SPEED: f64 = 2.5;

    /// Creates a transfer model.
    ///
    /// # Panics
    ///
    /// Panics if either speed is not strictly positive and finite.
    #[must_use]
    pub fn new(intra_speed: f64, inter_speed: f64, inter_latency: SimDuration) -> Self {
        assert!(
            intra_speed.is_finite() && intra_speed > 0.0,
            "intra-domain speed must be positive, got {intra_speed}"
        );
        assert!(
            inter_speed.is_finite() && inter_speed > 0.0,
            "inter-domain speed must be positive, got {inter_speed}"
        );
        TransferModel {
            intra_speed,
            inter_speed,
            inter_latency,
        }
    }

    fn time_at_speed(volume: Volume, speed: f64) -> SimDuration {
        if volume.is_zero() {
            return SimDuration::ZERO;
        }
        let raw = volume.units() / speed;
        SimDuration::from_ticks(((raw - 1e-9).ceil().max(0.0) as u64).max(1))
    }

    /// The fixed latency of inter-domain links.
    #[must_use]
    pub fn inter_latency(&self) -> SimDuration {
        self.inter_latency
    }

    /// Time to move `volume` between two nodes of the same domain.
    #[must_use]
    pub fn intra_domain_time(&self, volume: Volume) -> SimDuration {
        Self::time_at_speed(volume, self.intra_speed)
    }

    /// Time to move `volume` across domains, including link latency.
    #[must_use]
    pub fn inter_domain_time(&self, volume: Volume) -> SimDuration {
        if volume.is_zero() {
            return SimDuration::ZERO;
        }
        self.inter_latency + Self::time_at_speed(volume, self.inter_speed)
    }

    /// Time to move `volume` from `from` to `to`: zero on the same node,
    /// intra-domain speed within a domain, inter-domain speed plus latency
    /// otherwise.
    #[must_use]
    pub fn point_to_point(&self, volume: Volume, from: &Node, to: &Node) -> SimDuration {
        if from.id() == to.id() {
            SimDuration::ZERO
        } else if from.domain() == to.domain() {
            self.intra_domain_time(volume)
        } else {
            self.inter_domain_time(volume)
        }
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::new(
            Self::DEFAULT_INTRA_SPEED,
            Self::DEFAULT_INTER_SPEED,
            SimDuration::from_ticks(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::node::ResourcePool;
    use gridsched_model::perf::Perf;

    fn two_domain_pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL); // N0
        pool.add_node(DomainId::new(0), Perf::FULL); // N1
        pool.add_node(DomainId::new(1), Perf::FULL); // N2
        pool
    }

    #[test]
    fn same_node_is_free() {
        let pool = two_domain_pool();
        let m = TransferModel::default();
        let n0 = pool.node(gridsched_model::ids::NodeId::new(0));
        assert_eq!(
            m.point_to_point(Volume::new(100.0), n0, n0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn intra_vs_inter_domain() {
        let pool = two_domain_pool();
        let m = TransferModel::default();
        let n0 = pool.node(gridsched_model::ids::NodeId::new(0));
        let n1 = pool.node(gridsched_model::ids::NodeId::new(1));
        let n2 = pool.node(gridsched_model::ids::NodeId::new(2));
        let v = Volume::new(5.0);
        assert_eq!(m.point_to_point(v, n0, n1).ticks(), 1);
        // Inter-domain: 1 latency + ceil(5/2.5) = 3.
        assert_eq!(m.point_to_point(v, n0, n2).ticks(), 3);
    }

    #[test]
    fn zero_volume_is_instantaneous() {
        let m = TransferModel::default();
        assert_eq!(m.intra_domain_time(Volume::ZERO), SimDuration::ZERO);
        assert_eq!(m.inter_domain_time(Volume::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let m = TransferModel::new(4.0, 2.0, SimDuration::ZERO);
        assert_eq!(m.intra_domain_time(Volume::new(5.0)).ticks(), 2);
        assert_eq!(m.intra_domain_time(Volume::new(8.0)).ticks(), 2);
        assert_eq!(m.inter_domain_time(Volume::new(8.0)).ticks(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let _ = TransferModel::new(0.0, 1.0, SimDuration::ZERO);
    }
}
