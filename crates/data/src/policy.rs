//! Data-access policies distinguishing the paper's strategy families.
//!
//! §4 defines the strategies by their data handling:
//!
//! - `S1`: **active data replication** — produced data is pushed to every
//!   domain while computation proceeds, so a consumer reads a nearby
//!   replica and only ever pays the intra-domain price;
//! - `S2`: **remote data access** — data stays with its producer and every
//!   consumer pays the full point-to-point price;
//! - `S3`: **static data storage** — data lives on a designated storage
//!   node; any cross-node exchange is staged through it (write-back plus
//!   read), which makes spreading tasks expensive and pushes the scheduler
//!   towards consolidation.

use std::fmt;

use gridsched_sim::time::SimDuration;

use gridsched_model::ids::NodeId;
use gridsched_model::node::ResourcePool;
use gridsched_model::volume::Volume;

use crate::network::TransferModel;

/// The three data-handling disciplines of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPolicyKind {
    /// Eager replication to every domain (strategy S1 / MS1).
    ActiveReplication,
    /// Read from the producer's node on demand (strategy S2).
    RemoteAccess,
    /// All data staged through a fixed storage node (strategy S3).
    StaticStorage,
}

impl fmt::Display for DataPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataPolicyKind::ActiveReplication => "active-replication",
            DataPolicyKind::RemoteAccess => "remote-access",
            DataPolicyKind::StaticStorage => "static-storage",
        };
        f.write_str(s)
    }
}

/// A data policy bound to a transfer model and (for static storage) a
/// storage node.
///
/// The policy answers two questions for a data arc of a compound job, given
/// the producer's and consumer's placements:
///
/// - [`DataPolicy::consumer_delay`]: how long the *consumer* waits for its
///   input (this enters the schedule's critical path);
/// - [`DataPolicy::network_traffic`]: how much data actually crosses the
///   network (this enters the resource-usage metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct DataPolicy {
    kind: DataPolicyKind,
    model: TransferModel,
    storage_node: Option<NodeId>,
}

impl DataPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`DataPolicyKind::StaticStorage`] and
    /// `storage_node` is `None` — static storage is meaningless without a
    /// storage location.
    #[must_use]
    pub fn new(kind: DataPolicyKind, model: TransferModel, storage_node: Option<NodeId>) -> Self {
        assert!(
            kind != DataPolicyKind::StaticStorage || storage_node.is_some(),
            "static-storage policy requires a storage node"
        );
        DataPolicy {
            kind,
            model,
            storage_node,
        }
    }

    /// Active-replication policy with the default transfer model.
    #[must_use]
    pub fn active_replication() -> Self {
        DataPolicy::new(
            DataPolicyKind::ActiveReplication,
            TransferModel::default(),
            None,
        )
    }

    /// Remote-access policy with the default transfer model.
    #[must_use]
    pub fn remote_access() -> Self {
        DataPolicy::new(DataPolicyKind::RemoteAccess, TransferModel::default(), None)
    }

    /// Static-storage policy staging through `storage_node`.
    #[must_use]
    pub fn static_storage(storage_node: NodeId) -> Self {
        DataPolicy::new(
            DataPolicyKind::StaticStorage,
            TransferModel::default(),
            Some(storage_node),
        )
    }

    /// The policy's kind.
    #[must_use]
    pub fn kind(&self) -> DataPolicyKind {
        self.kind
    }

    /// The underlying transfer model.
    #[must_use]
    pub fn transfer_model(&self) -> &TransferModel {
        &self.model
    }

    /// The storage node, for static-storage policies.
    #[must_use]
    pub fn storage_node(&self) -> Option<NodeId> {
        self.storage_node
    }

    /// Replaces the transfer model.
    #[must_use]
    pub fn with_transfer_model(mut self, model: TransferModel) -> Self {
        self.model = model;
        self
    }

    /// Delay the consumer of a data arc observes before it can start, when
    /// the producer ran on `from` and the consumer runs on `to`.
    #[must_use]
    pub fn consumer_delay(
        &self,
        volume: Volume,
        from: NodeId,
        to: NodeId,
        pool: &ResourcePool,
    ) -> SimDuration {
        if from == to || volume.is_zero() {
            return SimDuration::ZERO;
        }
        match self.kind {
            // A replica is pushed into the consumer's domain as the
            // producer finishes; a cross-domain consumer waits one link
            // latency for the push to land, then reads at the intra-domain
            // price.
            DataPolicyKind::ActiveReplication => {
                let read = self.model.intra_domain_time(volume);
                if pool.node(from).domain() == pool.node(to).domain() {
                    read
                } else {
                    read + self.model.inter_latency()
                }
            }
            DataPolicyKind::RemoteAccess => {
                self.model
                    .point_to_point(volume, pool.node(from), pool.node(to))
            }
            DataPolicyKind::StaticStorage => {
                // The producer's write-back to the storage node mostly
                // overlaps with its own wall time; the consumer pays the
                // read from storage, plus one link latency when the
                // producer wrote from outside the storage domain (the
                // write-back lands late).
                let storage = self
                    .storage_node
                    .expect("static-storage policy constructed without a storage node");
                let read = self
                    .model
                    .point_to_point(volume, pool.node(storage), pool.node(to));
                if pool.node(from).domain() == pool.node(storage).domain() {
                    read
                } else {
                    read + self.model.inter_latency()
                }
            }
        }
    }

    /// Total volume that crosses the network for one data arc under this
    /// policy (the replication policy pays for eager pushes into every
    /// other domain).
    #[must_use]
    pub fn network_traffic(
        &self,
        volume: Volume,
        from: NodeId,
        to: NodeId,
        pool: &ResourcePool,
    ) -> Volume {
        if volume.is_zero() {
            return Volume::ZERO;
        }
        match self.kind {
            DataPolicyKind::ActiveReplication => {
                // One push per other domain, even if consumer == producer.
                let domains = pool.domains().len().max(1) as f64;
                volume.scale(domains - 1.0)
            }
            DataPolicyKind::RemoteAccess => {
                if from == to {
                    Volume::ZERO
                } else {
                    volume
                }
            }
            DataPolicyKind::StaticStorage => {
                if from == to {
                    Volume::ZERO
                } else {
                    volume.scale(2.0)
                }
            }
        }
    }
}

impl fmt::Display for DataPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.storage_node {
            Some(n) => write!(f, "{} via {}", self.kind, n),
            None => write!(f, "{}", self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;

    fn pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL); // N0
        pool.add_node(DomainId::new(0), Perf::FULL); // N1 (storage)
        pool.add_node(DomainId::new(1), Perf::FULL); // N2
        pool
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn same_node_consumer_waits_nothing() {
        let pool = pool();
        let v = Volume::new(5.0);
        for policy in [
            DataPolicy::active_replication(),
            DataPolicy::remote_access(),
            DataPolicy::static_storage(n(1)),
        ] {
            assert_eq!(
                policy.consumer_delay(v, n(0), n(0), &pool),
                SimDuration::ZERO
            );
        }
        // On-demand policies also move no data; active replication still
        // pays its eager push into the other domain.
        assert_eq!(
            DataPolicy::remote_access().network_traffic(v, n(0), n(0), &pool),
            Volume::ZERO
        );
        assert_eq!(
            DataPolicy::static_storage(n(1)).network_traffic(v, n(0), n(0), &pool),
            Volume::ZERO
        );
        assert_eq!(
            DataPolicy::active_replication().network_traffic(v, n(0), n(0), &pool),
            Volume::new(5.0)
        );
    }

    #[test]
    fn replication_reads_locally_plus_push_latency() {
        let pool = pool();
        let v = Volume::new(5.0);
        let p = DataPolicy::active_replication();
        assert_eq!(p.consumer_delay(v, n(0), n(1), &pool).ticks(), 1);
        // A cross-domain consumer waits one push latency, then reads the
        // local replica — still far cheaper than a full remote transfer.
        assert_eq!(p.consumer_delay(v, n(0), n(2), &pool).ticks(), 2);
        assert!(
            p.consumer_delay(v, n(0), n(2), &pool)
                < DataPolicy::remote_access().consumer_delay(v, n(0), n(2), &pool)
        );
    }

    #[test]
    fn remote_access_pays_full_path() {
        let pool = pool();
        let v = Volume::new(5.0);
        let p = DataPolicy::remote_access();
        assert_eq!(p.consumer_delay(v, n(0), n(1), &pool).ticks(), 1);
        assert_eq!(p.consumer_delay(v, n(0), n(2), &pool).ticks(), 3);
    }

    #[test]
    fn static_storage_charges_the_read_from_storage() {
        let pool = pool();
        let v = Volume::new(5.0);
        let p = DataPolicy::static_storage(n(1));
        // Consumer on N2 reads from storage N1 cross-domain: 3 ticks.
        assert_eq!(p.consumer_delay(v, n(0), n(2), &pool).ticks(), 3);
        // Consumer sharing the storage's domain reads at intra speed; the
        // producer wrote from another domain, so one push latency is added.
        assert_eq!(p.consumer_delay(v, n(2), n(0), &pool).ticks(), 2);
        // Same producer/consumer node: the data never moved.
        assert_eq!(p.consumer_delay(v, n(0), n(0), &pool), SimDuration::ZERO);
    }

    #[test]
    fn cross_node_ordering_matches_paper_intuition() {
        // For any cross-domain arc: replication is cheapest for the
        // consumer, static storage the most expensive.
        let pool = pool();
        let v = Volume::new(10.0);
        let repl = DataPolicy::active_replication().consumer_delay(v, n(0), n(2), &pool);
        let remote = DataPolicy::remote_access().consumer_delay(v, n(0), n(2), &pool);
        let stat = DataPolicy::static_storage(n(1)).consumer_delay(v, n(0), n(2), &pool);
        assert!(repl < remote, "{repl:?} vs {remote:?}");
        assert!(remote <= stat, "{remote:?} vs {stat:?}");
    }

    #[test]
    fn traffic_accounting() {
        let pool = pool(); // 2 domains
        let v = Volume::new(5.0);
        assert_eq!(
            DataPolicy::active_replication().network_traffic(v, n(0), n(1), &pool),
            Volume::new(5.0)
        );
        assert_eq!(
            DataPolicy::remote_access().network_traffic(v, n(0), n(2), &pool),
            Volume::new(5.0)
        );
        assert_eq!(
            DataPolicy::static_storage(n(1)).network_traffic(v, n(0), n(2), &pool),
            Volume::new(10.0)
        );
    }

    #[test]
    #[should_panic(expected = "storage node")]
    fn static_storage_requires_node() {
        let _ = DataPolicy::new(
            DataPolicyKind::StaticStorage,
            TransferModel::default(),
            None,
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            DataPolicy::active_replication().to_string(),
            "active-replication"
        );
        assert_eq!(
            DataPolicy::static_storage(n(1)).to_string(),
            "static-storage via N1"
        );
    }
}
