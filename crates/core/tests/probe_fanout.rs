//! Determinism suite for the cross-node probe fan-out.
//!
//! The DESIGN.md §9 contract extends to the batch path: a probe batch
//! dispatched across worker threads is **bit-identical** to the
//! sequential per-request loop — same answers, and the same seek /
//! build / bypass counters (only `fanouts` tells the paths apart).

use std::collections::HashMap;

use gridsched_core::method::ScheduleRequest;
use gridsched_core::session::PlanningSession;
use gridsched_data::policy::DataPolicy;
use gridsched_metrics::telemetry::{Counter, Telemetry};
use gridsched_model::availability::{
    set_probe_fanout_enabled, set_probe_fanout_min_nodes, ProbeIndexGuard, ProbeRequest,
    TimetableOverlay,
};
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::fixtures::fig2_job_with_deadline;
use gridsched_model::ids::{DomainId, NodeId};
use gridsched_model::index_cache::set_index_cache_enabled;
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::Perf;
use gridsched_model::timetable::ReservationOwner;
use gridsched_model::window::TimeWindow;
use gridsched_sim::time::{SimDuration, SimTime};

/// A pool whose every node carries a distinct dense calendar.
fn dense_pool(nodes: u32) -> ResourcePool {
    let mut pool = ResourcePool::new();
    for n in 0..nodes {
        let id = pool.add_node(DomainId::new(n % 3), Perf::FULL);
        for i in 0..30u64 {
            let start = i * 7 + u64::from(n) % 5;
            pool.timetable_mut(id)
                .reserve(
                    TimeWindow::new(
                        SimTime::from_ticks(start),
                        SimTime::from_ticks(start + 2 + (i + u64::from(n)) % 3),
                    )
                    .unwrap(),
                    ReservationOwner::Background(i),
                )
                .unwrap();
        }
    }
    pool
}

fn requests(pool: &ResourcePool) -> Vec<ProbeRequest> {
    (0..pool.len())
        .map(|n| ProbeRequest {
            node: NodeId::new(n as u32),
            not_before: SimTime::from_ticks((n as u64) % 11),
            duration: SimDuration::from_ticks(1 + (n as u64) % 5),
            deadline: if n % 4 == 0 {
                SimTime::from_ticks(40 + n as u64)
            } else {
                SimTime::MAX
            },
        })
        .collect()
}

/// The pooled batch answers and counters are exactly the sequential
/// loop's; only the `fanouts` counter records the dispatch.
#[test]
fn pooled_batch_matches_sequential_loop_exactly() {
    let _knobs = ProbeIndexGuard::with_floor(0);
    set_probe_fanout_min_nodes(8);
    // Fresh calendars per snapshot so the two overlays' build counters
    // are independently comparable.
    set_index_cache_enabled(false);
    let pool = dense_pool(32);
    // Opening a session installs the worker-pool probe executor.
    let _session = PlanningSession::open(&pool);
    let reqs = requests(&pool);

    let batched_overlay = TimetableOverlay::new(pool.snapshot());
    let mut batched = Vec::new();
    batched_overlay.earliest_fit_batch(&reqs, &mut batched);
    let batched_stats = batched_overlay.take_index_stats();

    set_probe_fanout_enabled(false);
    let seq_overlay = TimetableOverlay::new(pool.snapshot());
    let mut sequential = Vec::new();
    seq_overlay.earliest_fit_batch(&reqs, &mut sequential);
    let seq_stats = seq_overlay.take_index_stats();

    assert_eq!(batched, sequential, "bit-identical answers");
    assert_eq!(batched_stats.seeks, seq_stats.seeks);
    assert_eq!(batched_stats.builds, seq_stats.builds);
    assert_eq!(batched_stats.bypasses, seq_stats.bypasses);
    assert_eq!(seq_stats.fanouts, 0, "fan-out was switched off");
    assert_eq!(batched_stats.fanouts, 1, "one dispatched batch");
}

/// Batches that fail the dispatch preconditions (below the node-count
/// threshold, or out-of-order/duplicate node indices) fall back to the
/// sequential loop and still answer identically.
#[test]
fn ineligible_batches_fall_back_to_the_sequential_loop() {
    let _knobs = ProbeIndexGuard::with_floor(0);
    set_index_cache_enabled(false);
    let pool = dense_pool(12);
    let _session = PlanningSession::open(&pool);

    // Below the (default 64) node-count threshold.
    let reqs = requests(&pool);
    let overlay = TimetableOverlay::new(pool.snapshot());
    let mut out = Vec::new();
    overlay.earliest_fit_batch(&reqs, &mut out);
    assert_eq!(overlay.take_index_stats().fanouts, 0);

    // Above the threshold but with a duplicate node: memo effects would
    // differ across orderings, so the batch must not dispatch.
    set_probe_fanout_min_nodes(4);
    let mut dup = requests(&pool);
    dup.push(dup[0]);
    let overlay = TimetableOverlay::new(pool.snapshot());
    let mut dup_out = Vec::new();
    overlay.earliest_fit_batch(&dup, &mut dup_out);
    assert_eq!(overlay.take_index_stats().fanouts, 0);
    let expected: Vec<_> = dup
        .iter()
        .map(|r| overlay.earliest_fit(r.node, r.not_before, r.duration, r.deadline))
        .collect();
    assert_eq!(dup_out, expected);
}

/// End to end: a full planning run with fan-out forced produces the
/// same distribution as one with fan-out disabled, and the fanned run
/// reconciles through the `probe_fanouts` telemetry counter.
#[test]
fn planned_distributions_are_identical_with_and_without_fanout() {
    let _knobs = ProbeIndexGuard::with_floor(0);
    set_probe_fanout_min_nodes(4);
    let pool = dense_pool(16);
    let job = fig2_job_with_deadline(SimDuration::from_ticks(400));
    let policy = DataPolicy::remote_access();
    let req = ScheduleRequest {
        job: &job,
        pool: &pool,
        policy: &policy,
        scenario: EstimateScenario::BEST,
        release: SimTime::ZERO,
    };

    let telemetry = Telemetry::new();
    let session = PlanningSession::open_instrumented(&pool, &telemetry, None);
    let fanned = session
        .reschedule(&req, &HashMap::new())
        .expect("fanned plan");
    assert!(
        telemetry.counter(Counter::ProbeFanouts) > 0,
        "chain-head batches dispatched across the pool"
    );

    set_probe_fanout_enabled(false);
    let sequential = PlanningSession::open(&pool)
        .reschedule(&req, &HashMap::new())
        .expect("sequential plan");
    assert_eq!(fanned.placements(), sequential.placements());
    assert_eq!(fanned.collisions(), sequential.collisions());
}
