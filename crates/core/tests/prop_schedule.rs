//! Property tests: every schedule the critical works method emits is
//! feasible — precedence-correct, non-overlapping, deadline-respecting and
//! consistent with pre-existing background reservations.

use gridsched_core::method::{build_distribution, ScheduleRequest};
use gridsched_core::strategy::{Strategy as SchedulingStrategy, StrategyConfig, StrategyKind};
use gridsched_data::policy::DataPolicy;
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::JobId;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::SimTime;
use gridsched_workload::background::{apply_background_load, BackgroundConfig};
use gridsched_workload::jobs::{generate_job, JobConfig};
use gridsched_workload::pool::{generate_pool, PoolConfig};

/// (seed, deadline factor, background load)
fn gen_inputs(g: &mut Gen) -> (u64, f64, f64) {
    (g.u64_in(0, 9_999), g.f64_in(1.5, 8.0), g.f64_in(0.0, 0.7))
}

/// Any schedule built on a randomly loaded pool validates, meets the
/// deadline, and never overlaps background reservations.
#[test]
fn schedules_are_feasible() {
    check(64, |g| {
        let (seed, df, load) = gen_inputs(g);
        let mut rng = SimRng::seed_from(seed);
        let mut pool = generate_pool(&PoolConfig::default(), &mut rng);
        if load > 0.01 {
            apply_background_load(
                &mut pool,
                &BackgroundConfig {
                    load,
                    ..BackgroundConfig::default()
                },
                &mut rng,
            );
        }
        let job = generate_job(
            &JobConfig {
                deadline_factor: df,
                ..JobConfig::default()
            },
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let policy = DataPolicy::remote_access();
        let result = build_distribution(&ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        });
        if let Ok(dist) = result {
            assert_eq!(dist.validate(&job, &pool), Ok(()));
            assert!(dist.meets_deadline(job.absolute_deadline()));
            for p in dist.placements() {
                assert!(
                    pool.timetable(p.node).is_free(p.window),
                    "placement {p} overlaps background load"
                );
            }
        }
    });
}

/// Cost monotonicity: a longer deadline never makes the cheapest
/// schedule more expensive (the paper's pay-for-speed economics).
/// Restricted to single-chain (pipeline) jobs, where the Pareto DP is
/// exact; on fork-joins the multiphase heuristic is only approximately
/// monotone.
#[test]
fn cost_is_monotone_in_deadline() {
    check(64, |g| {
        let seed = g.u64_in(0, 1_999);
        let mut rng = SimRng::seed_from(seed);
        let pool = generate_pool(&PoolConfig::default(), &mut rng);
        let policy = DataPolicy::remote_access();
        let mut previous: Option<u64> = None;
        for df in [1.5f64, 2.5, 4.0, 8.0] {
            let mut jrng = SimRng::seed_from(seed + 1);
            let job = generate_job(
                &JobConfig {
                    deadline_factor: df,
                    width_max: 1, // pipeline: a single critical work
                    ..JobConfig::default()
                },
                JobId::new(seed),
                SimTime::ZERO,
                &mut jrng,
            );
            let result = build_distribution(&ScheduleRequest {
                job: &job,
                pool: &pool,
                policy: &policy,
                scenario: EstimateScenario::BEST,
                release: SimTime::ZERO,
            });
            if let Ok(dist) = result {
                if let Some(prev) = previous {
                    assert!(
                        dist.cost() <= prev,
                        "cost rose from {prev} to {} when deadline loosened to {df}",
                        dist.cost()
                    );
                }
                previous = Some(dist.cost());
            }
        }
    });
}

/// Every strategy kind produces only valid, deadline-meeting schedules
/// on random inputs; MS1 never has more schedules than S1.
#[test]
fn strategies_produce_valid_schedules() {
    check(48, |g| {
        let seed = g.u64_in(0, 1_999);
        let mut rng = SimRng::seed_from(seed);
        let pool = generate_pool(&PoolConfig::default(), &mut rng);
        let job = generate_job(
            &JobConfig {
                deadline_factor: 5.0,
                ..JobConfig::default()
            },
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let mut s1_count = None;
        for kind in StrategyKind::ALL {
            let config = StrategyConfig::for_kind(kind, &pool);
            let strategy = SchedulingStrategy::generate(&job, &pool, &config, SimTime::ZERO);
            for d in strategy.distributions() {
                assert_eq!(d.validate(strategy.job(), &pool), Ok(()), "{kind}");
                assert!(d.meets_deadline(strategy.job().absolute_deadline()));
            }
            match kind {
                StrategyKind::S1 => s1_count = Some(strategy.distributions().len()),
                StrategyKind::Ms1 => {
                    if let Some(s1) = s1_count {
                        assert!(strategy.distributions().len() <= s1.max(2));
                    }
                }
                _ => {}
            }
        }
    });
}

/// Scheduling is a pure function of its inputs: the pool's timetables
/// are never mutated.
#[test]
fn scheduling_never_mutates_the_pool() {
    check(64, |g| {
        let (seed, df, load) = gen_inputs(g);
        let mut rng = SimRng::seed_from(seed);
        let mut pool = generate_pool(&PoolConfig::default(), &mut rng);
        if load > 0.01 {
            apply_background_load(
                &mut pool,
                &BackgroundConfig {
                    load,
                    ..BackgroundConfig::default()
                },
                &mut rng,
            );
        }
        let before: Vec<usize> = pool.nodes().map(|n| pool.timetable(n.id()).len()).collect();
        let job = generate_job(
            &JobConfig {
                deadline_factor: df,
                ..JobConfig::default()
            },
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let policy = DataPolicy::active_replication();
        let _ = build_distribution(&ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::WORST,
            release: SimTime::ZERO,
        });
        let after: Vec<usize> = pool.nodes().map(|n| pool.timetable(n.id()).len()).collect();
        assert_eq!(before, after);
    });
}
