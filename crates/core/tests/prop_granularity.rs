//! Property tests: coarsening and Gantt rendering on random jobs.

use gridsched_core::gantt::render_gantt;
use gridsched_core::granularity::coarsen;
use gridsched_core::method::{build_distribution, ScheduleRequest};
use gridsched_data::policy::DataPolicy;
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::JobId;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::SimTime;
use gridsched_workload::jobs::{generate_job, JobConfig};
use gridsched_workload::pool::{generate_pool, PoolConfig};

/// Coarsening preserves total volume, never adds tasks or edges, keeps
/// the deadline, and is idempotent.
#[test]
fn coarsening_invariants() {
    check(64, |g: &mut Gen| {
        let seed = g.u64_in(0, 9_999);
        let mut rng = SimRng::seed_from(seed);
        let job = generate_job(
            &JobConfig::default(),
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let once = coarsen(&job);
        assert_eq!(once.job.total_volume(), job.total_volume());
        assert!(once.job.task_count() <= job.task_count());
        assert!(once.job.edges().len() <= job.edges().len());
        assert_eq!(once.job.deadline(), job.deadline());
        assert_eq!(once.job.id(), job.id());
        // The mapping covers every original task with a valid target.
        assert_eq!(once.mapping.len(), job.task_count());
        for t in &once.mapping {
            assert!(t.index() < once.job.task_count());
        }
        // Idempotence: a coarsened job has no mergeable runs left.
        let twice = coarsen(&once.job);
        assert_eq!(twice.job.task_count(), once.job.task_count());
        assert_eq!(twice.job.edges().len(), once.job.edges().len());
    });
}

/// Coarsening preserves the precedence structure: if original task `a`
/// precedes `b` (directly) and they land in different groups, the
/// groups are connected in the coarse DAG.
#[test]
fn coarsening_preserves_cross_group_edges() {
    check(64, |g: &mut Gen| {
        let seed = g.u64_in(0, 4_999);
        let mut rng = SimRng::seed_from(seed);
        let job = generate_job(
            &JobConfig::default(),
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let coarse = coarsen(&job);
        for e in job.edges() {
            let gf = coarse.mapping[e.from().index()];
            let gt = coarse.mapping[e.to().index()];
            if gf != gt {
                assert!(
                    coarse.job.successors(gf).any(|s| s == gt),
                    "edge {}->{} lost: groups {} and {} unconnected",
                    e.from(),
                    e.to(),
                    gf,
                    gt
                );
            }
        }
    });
}

/// Gantt rendering never panics on a valid schedule and paints exactly
/// the reserved wall time.
#[test]
fn gantt_paints_exactly_the_wall_time() {
    check(64, |g: &mut Gen| {
        let seed = g.u64_in(0, 4_999);
        let mut rng = SimRng::seed_from(seed);
        let pool = generate_pool(&PoolConfig::default(), &mut rng);
        let job = generate_job(
            &JobConfig {
                deadline_factor: 6.0,
                ..JobConfig::default()
            },
            JobId::new(seed),
            SimTime::ZERO,
            &mut rng,
        );
        let policy = DataPolicy::remote_access();
        let Ok(dist) = build_distribution(&ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        }) else {
            return;
        };
        let chart = render_gantt(&dist, &pool);
        let busy: usize = chart
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| {
                // Strip the "  N12 |" label prefix before counting cells.
                let bar = l.find('|').expect("row has bars");
                l[bar + 1..l.len() - 1]
                    .chars()
                    .filter(|c| *c != ' ')
                    .count()
            })
            .sum();
        let expected: u64 = dist
            .placements()
            .iter()
            .map(|p| p.window.duration().ticks())
            .sum();
        assert_eq!(busy as u64, expected);
    });
}
