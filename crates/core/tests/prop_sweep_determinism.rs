//! Differential determinism suite for the sweep executors.
//!
//! The persistent-pool sweep (`SweepExecutor::Pooled`), the legacy
//! scoped-thread sweep (`SweepExecutor::Scoped`) and the sequential
//! baseline must produce **bit-identical** strategies for arbitrary
//! generated workloads — the worker-pool determinism contract: results are
//! collected in sweep order regardless of completion order, and every
//! scenario plans against the same immutable snapshot.
//!
//! The contract also covers instrumentation: running the same sweep under
//! `--telemetry` must not change the schedules, and the QoS counters must
//! reconcile exactly across executors (only `pooled_sweeps` may differ —
//! it records which executor actually ran).

use gridsched_core::pool::WorkerPool;
use gridsched_core::strategy::{Strategy, StrategyConfig, StrategyKind, SweepExecutor};
use gridsched_metrics::telemetry::Telemetry;
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_sim::check::{check, Gen};
use gridsched_sim::rng::SimRng;
use gridsched_sim::time::SimTime;
use gridsched_workload::jobs::{generate_job, JobConfig};
use gridsched_workload::pool::{generate_pool, PoolConfig};

/// Everything observable about a strategy, for bit-exact comparisons.
fn fingerprint(s: &Strategy) -> impl PartialEq + std::fmt::Debug {
    (
        s.kind(),
        s.job().task_count(),
        s.distributions()
            .iter()
            .map(|d| {
                (
                    d.scenario(),
                    d.cost(),
                    d.makespan(),
                    d.placements().to_vec(),
                    d.collisions().to_vec(),
                )
            })
            .collect::<Vec<_>>(),
        s.failures().to_vec(),
    )
}

fn random_workload(g: &mut Gen) -> (Job, ResourcePool) {
    let pool_seed = g.u64_in(0, u64::MAX / 2);
    let job_seed = g.u64_in(0, u64::MAX / 2);
    let pool = generate_pool(&PoolConfig::default(), &mut SimRng::seed_from(pool_seed));
    let job = generate_job(
        &JobConfig {
            deadline_factor: 8.0,
            ..JobConfig::default()
        },
        gridsched_model::ids::JobId::new(job_seed),
        SimTime::ZERO,
        &mut SimRng::seed_from(job_seed),
    );
    (job, pool)
}

#[test]
fn pooled_scoped_and_sequential_sweeps_are_bit_identical_across_seeds() {
    // A multi-worker pool even on single-core machines, so the pooled path
    // is genuinely exercised (no fallback) and shared across cases — the
    // reuse the campaign relies on.
    let worker_pool = WorkerPool::new(2);
    check(24, |g: &mut Gen| {
        let (job, pool) = random_workload(g);
        let kind = *g.pick(&StrategyKind::ALL);
        let cfg = StrategyConfig::for_kind(kind, &pool);
        let release = SimTime::from_ticks(g.u64_in(0, 50));
        let pooled = Strategy::generate_with(
            &job,
            &pool,
            &cfg,
            release,
            SweepExecutor::Pooled(&worker_pool),
        );
        let scoped = Strategy::generate_with(&job, &pool, &cfg, release, SweepExecutor::Scoped);
        let sequential =
            Strategy::generate_with(&job, &pool, &cfg, release, SweepExecutor::Sequential);
        assert_eq!(
            fingerprint(&pooled),
            fingerprint(&sequential),
            "pooled vs sequential diverged (case {}, kind {kind})",
            g.case()
        );
        assert_eq!(
            fingerprint(&scoped),
            fingerprint(&sequential),
            "scoped vs sequential diverged (case {}, kind {kind})",
            g.case()
        );
    });
}

#[test]
fn instrumented_sweeps_are_bit_identical_and_counters_reconcile_exactly() {
    let worker_pool = WorkerPool::new(2);
    check(12, |g: &mut Gen| {
        let (job, pool) = random_workload(g);
        let kind = *g.pick(&StrategyKind::ALL);
        let cfg = StrategyConfig::for_kind(kind, &pool);
        let release = SimTime::from_ticks(g.u64_in(0, 50));

        let executors: [(&str, SweepExecutor<'_>); 3] = [
            ("pooled", SweepExecutor::Pooled(&worker_pool)),
            ("scoped", SweepExecutor::Scoped),
            ("sequential", SweepExecutor::Sequential),
        ];
        let mut fingerprints = Vec::new();
        let mut counter_sets = Vec::new();
        let mut pooled_sweeps = Vec::new();
        for (name, executor) in executors {
            let telemetry = Telemetry::new();
            let uninstrumented = Strategy::generate_with(&job, &pool, &cfg, release, executor);
            let strategy = Strategy::generate_with_instrumented(
                &job, &pool, &cfg, release, executor, &telemetry, None,
            );
            assert_eq!(
                fingerprint(&strategy),
                fingerprint(&uninstrumented),
                "telemetry changed the {name} sweep's schedules (case {})",
                g.case()
            );
            let snap = telemetry.snapshot();
            // The sweep-shape counters must reconcile exactly across
            // executors; `pooled_sweeps` is excluded because it records
            // which executor ran.
            let counters: Vec<(&str, u64)> = [
                "sessions_opened",
                "overlays_created",
                "critical_works_passes",
                "scenarios_planned",
                "scenarios_failed",
                "plan_conflicts",
                "objective_fallbacks",
            ]
            .into_iter()
            .map(|name| (name, snap.counter(name)))
            .collect();
            fingerprints.push(fingerprint(&strategy));
            counter_sets.push((name, counters));
            pooled_sweeps.push((name, snap.counter("pooled_sweeps")));
        }
        assert_eq!(fingerprints[0], fingerprints[1], "case {}", g.case());
        assert_eq!(fingerprints[0], fingerprints[2], "case {}", g.case());
        assert_eq!(
            counter_sets[0].1,
            counter_sets[1].1,
            "pooled vs scoped counters (case {})",
            g.case()
        );
        assert_eq!(
            counter_sets[0].1,
            counter_sets[2].1,
            "pooled vs sequential counters (case {})",
            g.case()
        );
        // The pooled executor records exactly one pooled sweep — unless
        // the sweep is small enough to fall back (MS1 plans 2 scenarios).
        let expect_pooled = u64::from(cfg.sweep().scenarios().len() > 2);
        assert_eq!(pooled_sweeps[0], ("pooled", expect_pooled));
        assert_eq!(pooled_sweeps[1], ("scoped", 0));
        assert_eq!(pooled_sweeps[2], ("sequential", 0));
    });
}
