//! Critical-work extraction.
//!
//! §3: the critical works method "is searching for a next critical work —
//! the longest (in terms of estimated execution time) chain of unassigned
//! tasks". A *chain* is a path in the job's information graph; its length
//! is the sum of estimated task durations on the fastest node class plus
//! estimated transfer times along its arcs.

use std::collections::HashSet;

use gridsched_sim::time::SimDuration;

use gridsched_model::ids::TaskId;
use gridsched_model::job::{DataEdge, Job};

/// A critical work: a path of tasks, longest-first order of extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalWork {
    /// Tasks along the path, in precedence order.
    pub tasks: Vec<TaskId>,
    /// Estimated length (execution + transfers) used for ranking.
    pub length: SimDuration,
}

/// Reusable per-task buffers for [`next_critical_work_into`].
///
/// The longest-chain DP needs a `finish` duration and a `pred` back-pointer
/// per task. Allocating them anew for every extraction dominated the
/// allocation profile of a scheduling pass (one extraction per critical
/// work, several works per job, one pass per scenario). A `ChainScratch`
/// keeps both buffers alive across extractions so steady-state planning
/// reuses their capacity instead of round-tripping the allocator.
#[derive(Debug, Default)]
pub struct ChainScratch {
    finish: Vec<SimDuration>,
    pred: Vec<Option<TaskId>>,
}

/// Finds the longest chain among `unassigned` tasks only — the next
/// critical work. Edges are considered only when both endpoints are
/// unassigned.
///
/// Returns `None` when `unassigned` is empty. Ties break deterministically
/// towards smaller task ids.
///
/// Hot paths should prefer [`next_critical_work_into`], which reuses
/// caller-owned buffers; this wrapper allocates fresh ones per call and is
/// kept for tests and one-shot callers.
pub fn next_critical_work(
    job: &Job,
    unassigned: &HashSet<TaskId>,
    task_weight: impl FnMut(TaskId) -> SimDuration,
    edge_weight: impl FnMut(&DataEdge) -> SimDuration,
) -> Option<CriticalWork> {
    let mut scratch = ChainScratch::default();
    let mut tasks = Vec::new();
    let length = next_critical_work_into(
        job,
        unassigned,
        task_weight,
        edge_weight,
        &mut scratch,
        &mut tasks,
    )?;
    Some(CriticalWork { tasks, length })
}

/// Allocation-free variant of [`next_critical_work`].
///
/// Fills `tasks` (cleared first) with the chain in precedence order and
/// returns its length, reusing the DP buffers in `scratch`. Produces
/// bit-identical results to the allocating wrapper.
pub fn next_critical_work_into(
    job: &Job,
    unassigned: &HashSet<TaskId>,
    mut task_weight: impl FnMut(TaskId) -> SimDuration,
    mut edge_weight: impl FnMut(&DataEdge) -> SimDuration,
    scratch: &mut ChainScratch,
    tasks: &mut Vec<TaskId>,
) -> Option<SimDuration> {
    tasks.clear();
    if unassigned.is_empty() {
        return None;
    }
    let n = job.task_count();
    scratch.finish.clear();
    scratch.finish.resize(n, SimDuration::ZERO);
    scratch.pred.clear();
    scratch.pred.resize(n, None);
    let finish = &mut scratch.finish;
    let pred = &mut scratch.pred;
    let mut best_end: Option<TaskId> = None;
    let mut best_len = SimDuration::ZERO;
    for &t in job.topo_order() {
        if !unassigned.contains(&t) {
            continue;
        }
        let mut start = SimDuration::ZERO;
        let mut via = None;
        for e in job.incoming(t) {
            if !unassigned.contains(&e.from()) {
                continue;
            }
            let candidate = finish[e.from().index()] + edge_weight(e);
            if candidate > start {
                start = candidate;
                via = Some(e.from());
            }
        }
        let f = start + task_weight(t);
        finish[t.index()] = f;
        pred[t.index()] = via;
        let better = match best_end {
            None => true,
            Some(b) => f > best_len || (f == best_len && t < b),
        };
        if better {
            best_len = f;
            best_end = Some(t);
        }
    }
    let end = best_end?;
    tasks.push(end);
    while let Some(p) = pred[tasks.last().expect("non-empty chain").index()] {
        tasks.push(p);
    }
    tasks.reverse();
    Some(best_len)
}

/// Decomposes the whole job into vertex-disjoint critical works, longest
/// first. Every task appears in exactly one work.
pub fn chain_decomposition(
    job: &Job,
    mut task_weight: impl FnMut(TaskId) -> SimDuration,
    mut edge_weight: impl FnMut(&DataEdge) -> SimDuration,
) -> Vec<CriticalWork> {
    let mut unassigned: HashSet<TaskId> = job.tasks().iter().map(|t| t.id()).collect();
    let mut works = Vec::new();
    while let Some(work) = next_critical_work(job, &unassigned, &mut task_weight, &mut edge_weight)
    {
        for t in &work.tasks {
            unassigned.remove(t);
        }
        works.push(work);
    }
    works
}

/// Enumerates every maximal source→sink path with its length, sorted
/// longest first (ties towards lexicographically smaller task sequences).
///
/// This reproduces the paper's enumeration of "four critical works 12, 11,
/// 10, and 9 time units long" for the Fig. 2 job. Exponential in the worst
/// case; `limit` caps the number of paths explored.
pub fn ranked_maximal_paths(
    job: &Job,
    mut task_weight: impl FnMut(TaskId) -> SimDuration,
    mut edge_weight: impl FnMut(&DataEdge) -> SimDuration,
    limit: usize,
) -> Vec<CriticalWork> {
    let mut out: Vec<CriticalWork> = Vec::new();
    let mut stack: Vec<(Vec<TaskId>, SimDuration)> = job
        .entry_tasks()
        .map(|t| (vec![t], task_weight(t)))
        .collect();
    while let Some((path, len)) = stack.pop() {
        if out.len() >= limit {
            break;
        }
        let last = *path.last().expect("paths are non-empty");
        let mut extended = false;
        for e in job.outgoing(last) {
            extended = true;
            let mut next = path.clone();
            next.push(e.to());
            let next_len = len + edge_weight(e) + task_weight(e.to());
            stack.push((next, next_len));
        }
        if !extended {
            out.push(CriticalWork {
                tasks: path,
                length: len,
            });
        }
    }
    out.sort_by(|a, b| b.length.cmp(&a.length).then_with(|| a.tasks.cmp(&b.tasks)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::fig2_job;
    use gridsched_model::perf::Perf;

    fn tid(i: u32) -> TaskId {
        TaskId::new(i)
    }

    /// Fig. 2 weights: execution on the fastest node class, one tick per
    /// transfer arc (volume 5 at speed 5).
    fn fig2_weights(
        job: &Job,
    ) -> (
        impl FnMut(TaskId) -> SimDuration + '_,
        impl FnMut(&DataEdge) -> SimDuration,
    ) {
        (
            move |t| job.task(t).duration_on(Perf::FULL),
            |e: &DataEdge| SimDuration::from_ticks((e.volume().units() / 5.0).ceil() as u64),
        )
    }

    #[test]
    fn fig2_ranked_paths_match_paper() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        let paths = ranked_maximal_paths(&job, tw, ew, 100);
        let lengths: Vec<u64> = paths.iter().map(|p| p.length.ticks()).collect();
        // "four critical works 12, 11, 10, and 9 time units long" (§3).
        assert_eq!(lengths, vec![12, 11, 10, 9]);
        // Longest: P1-P2-P4-P6 (0-based: 0,1,3,5).
        assert_eq!(paths[0].tasks, vec![tid(0), tid(1), tid(3), tid(5)]);
        assert_eq!(paths[1].tasks, vec![tid(0), tid(1), tid(4), tid(5)]);
        assert_eq!(paths[2].tasks, vec![tid(0), tid(2), tid(3), tid(5)]);
        assert_eq!(paths[3].tasks, vec![tid(0), tid(2), tid(4), tid(5)]);
    }

    #[test]
    fn fig2_first_critical_work() {
        let job = fig2_job();
        let unassigned: HashSet<TaskId> = job.tasks().iter().map(|t| t.id()).collect();
        let (tw, ew) = fig2_weights(&job);
        let work = next_critical_work(&job, &unassigned, tw, ew).unwrap();
        assert_eq!(work.tasks, vec![tid(0), tid(1), tid(3), tid(5)]);
        assert_eq!(work.length.ticks(), 12);
    }

    #[test]
    fn fig2_decomposition_covers_all_tasks_disjointly() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        let works = chain_decomposition(&job, tw, ew);
        // CW1 = P1,P2,P4,P6; CW2 = P3,P5 (the only unassigned chain left).
        assert_eq!(works.len(), 2);
        assert_eq!(works[0].tasks, vec![tid(0), tid(1), tid(3), tid(5)]);
        assert_eq!(works[1].tasks, vec![tid(2), tid(4)]);
        let mut seen = HashSet::new();
        for w in &works {
            for t in &w.tasks {
                assert!(seen.insert(*t), "task {t} in two works");
            }
        }
        assert_eq!(seen.len(), job.task_count());
    }

    #[test]
    fn decomposition_lengths_are_non_increasing() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        let works = chain_decomposition(&job, tw, ew);
        for pair in works.windows(2) {
            assert!(pair[0].length >= pair[1].length);
        }
    }

    #[test]
    fn chains_are_paths_in_the_dag() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        for work in chain_decomposition(&job, tw, ew) {
            for pair in work.tasks.windows(2) {
                assert!(
                    job.successors(pair[0]).any(|s| s == pair[1]),
                    "{} -> {} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn ranked_paths_respect_the_limit() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        let paths = ranked_maximal_paths(&job, tw, ew, 2);
        assert!(paths.len() <= 2);
        // Whatever survives the cap is still sorted longest-first.
        for pair in paths.windows(2) {
            assert!(pair[0].length >= pair[1].length);
        }
    }

    #[test]
    fn multi_source_multi_sink_graphs_enumerate_all_paths() {
        // Two independent pipelines: A->B and C->D.
        let v = gridsched_model::volume::Volume::new;
        let mut b = gridsched_model::job::JobBuilder::new();
        let a = b.add_task(v(10.0));
        let b2 = b.add_task(v(10.0));
        let c = b.add_task(v(20.0));
        let d = b.add_task(v(20.0));
        b.add_edge(a, b2, v(5.0));
        b.add_edge(c, d, v(5.0));
        let job = b.build(gridsched_model::ids::JobId::new(2)).unwrap();
        let paths = ranked_maximal_paths(
            &job,
            |t| job.task(t).duration_on(Perf::FULL),
            |_| SimDuration::from_ticks(1),
            100,
        );
        assert_eq!(paths.len(), 2);
        // The heavier pipeline (C-D: 2+1+2=5) ranks first.
        assert_eq!(paths[0].tasks, vec![tid(2), tid(3)]);
        assert_eq!(paths[0].length.ticks(), 5);
        // Decomposition covers both pipelines disjointly.
        let works = chain_decomposition(
            &job,
            |t| job.task(t).duration_on(Perf::FULL),
            |_| SimDuration::from_ticks(1),
        );
        assert_eq!(works.len(), 2);
    }

    #[test]
    fn empty_unassigned_returns_none() {
        let job = fig2_job();
        let (tw, ew) = fig2_weights(&job);
        assert!(next_critical_work(&job, &HashSet::new(), tw, ew).is_none());
    }

    #[test]
    fn single_task_job_is_one_work() {
        let mut b = gridsched_model::job::JobBuilder::new();
        b.add_task(gridsched_model::volume::Volume::new(10.0));
        let job = b.build(gridsched_model::ids::JobId::new(1)).unwrap();
        let works = chain_decomposition(
            &job,
            |t| job.task(t).duration_on(Perf::FULL),
            |_| SimDuration::ZERO,
        );
        assert_eq!(works.len(), 1);
        assert_eq!(works[0].tasks, vec![tid(0)]);
    }
}
