//! The planning-session layer: one availability snapshot, many cheap
//! what-if views.
//!
//! Every schedule construction — a single supporting schedule, a full
//! strategy sweep, a mid-flight replan — is a *planning session* against
//! the pool's availability at one instant. A [`PlanningSession`] captures
//! that availability **once** as an immutable, `Arc`-backed
//! [`AvailabilitySnapshot`] and hands out copy-on-write
//! [`TimetableOverlay`] views: each scenario of a strategy sweep plans on
//! its own overlay (recording only its tentative reservations) while the
//! base windows are shared by reference. Because the snapshot is immutable
//! and `Sync`, scenario sweeps can run concurrently over one session —
//! the share-don't-copy primitive that hierarchical bulk schedulers treat
//! as the core of scalable what-if planning.
//!
//! The session's entry points mirror the free functions of
//! [`crate::method`] one-for-one (those free functions now simply open a
//! throwaway session). Callers that plan repeatedly against the same pool
//! state — [`crate::strategy::Strategy`] sweeps, the job-flow layer's
//! fault-driven replans — open one session and reuse it.

use std::collections::HashMap;

use gridsched_sim::time::SimTime;

use gridsched_exec::WorkerPool;
use gridsched_metrics::telemetry::{Counter, SpanId, Telemetry};
use gridsched_model::availability::{
    install_probe_executor, AvailabilitySnapshot, TimetableOverlay,
};
use gridsched_model::ids::TaskId;
use gridsched_model::node::ResourcePool;

use crate::distribution::{Distribution, Placement};
use crate::method::{run_method_chains, ScheduleError, ScheduleRequest};
use crate::objective::Objective;
use crate::scratch::Scratch;

/// The process-wide probe executor: fans `earliest_fit_batch` cold probes
/// across the shared scenario-sweep [`WorkerPool`] when it is idle, and
/// declines (forcing the caller's sequential fallback) while a sweep has
/// the pool busy. Installed on first session open; first install wins.
fn pool_probe_executor(len: usize, task: &(dyn Fn(usize) + Sync)) -> bool {
    WorkerPool::global().run_tasks_if_idle(len, task)
}

/// A planning session: a pool reference plus one shared availability
/// snapshot that every what-if view of the session reads through.
///
/// # Examples
///
/// ```
/// use gridsched_core::method::ScheduleRequest;
/// use gridsched_core::session::PlanningSession;
/// use gridsched_data::policy::DataPolicy;
/// use gridsched_model::estimate::EstimateScenario;
/// use gridsched_model::fixtures::fig2_job_with_deadline;
/// use gridsched_model::ids::DomainId;
/// use gridsched_model::node::ResourcePool;
/// use gridsched_model::perf::Perf;
/// use gridsched_sim::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
/// let mut pool = ResourcePool::new();
/// for j in 1..=4u32 {
///     pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
/// }
/// let policy = DataPolicy::remote_access();
/// let session = PlanningSession::open(&pool);
/// // Several scenarios plan against the same snapshot without recloning.
/// for scenario in [EstimateScenario::BEST, EstimateScenario::WORST] {
///     let dist = session.build_distribution(&ScheduleRequest {
///         job: &job,
///         pool: &pool,
///         policy: &policy,
///         scenario,
///         release: SimTime::ZERO,
///     })?;
///     assert!(dist.meets_deadline(SimTime::from_ticks(60)));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PlanningSession<'p> {
    pool: &'p ResourcePool,
    snapshot: AvailabilitySnapshot,
    telemetry: Telemetry,
    span_parent: Option<SpanId>,
}

impl<'p> PlanningSession<'p> {
    /// Opens a session against the pool's current availability.
    ///
    /// This is the only point that reads the pool's timetables; every view
    /// created afterwards shares the captured windows by reference and
    /// stays consistent even if the live pool moves on.
    #[must_use]
    pub fn open(pool: &'p ResourcePool) -> Self {
        PlanningSession::open_instrumented(pool, &Telemetry::disabled(), None)
    }

    /// [`PlanningSession::open`] with a telemetry recorder attached.
    ///
    /// The session counts the snapshot capture
    /// ([`Counter::SessionsOpened`]), every overlay it hands out
    /// ([`Counter::OverlaysCreated`]) and every engine pass it runs
    /// ([`Counter::CriticalWorksPasses`], with `critical_works_pass` timing
    /// spans parented under `parent`). Instrumentation is strictly
    /// observational: the schedules built are bit-identical to an
    /// uninstrumented session's.
    #[must_use]
    pub fn open_instrumented(
        pool: &'p ResourcePool,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Self {
        install_probe_executor(pool_probe_executor);
        telemetry.incr(Counter::SessionsOpened);
        let span = telemetry.span_under("session_open", parent);
        let snapshot = pool.snapshot();
        drop(span);
        // The capture consulted the pool's calendar cache; drain its stats
        // here (they are deltas since the previous drain).
        let cache_stats = pool.index_cache().take_stats();
        telemetry.add(Counter::IndexCacheHits, cache_stats.hits);
        telemetry.add(Counter::IndexCacheEvictions, cache_stats.evictions);
        PlanningSession {
            pool,
            snapshot,
            telemetry: telemetry.clone(),
            span_parent: parent,
        }
    }

    /// A view of this session whose engine-pass spans are parented under
    /// `parent` instead — same pool, same shared snapshot (the
    /// `Arc`-backed windows are shared, not recopied), same recorder.
    ///
    /// This is how a scenario sweep nests each scenario's
    /// `critical_works_pass` spans under that scenario's own span while
    /// all scenarios keep planning against one snapshot.
    #[must_use]
    pub fn scoped_under(&self, parent: Option<SpanId>) -> PlanningSession<'p> {
        PlanningSession {
            pool: self.pool,
            snapshot: self.snapshot.clone(),
            telemetry: self.telemetry.clone(),
            span_parent: parent,
        }
    }

    /// The pool this session plans against.
    #[must_use]
    pub fn pool(&self) -> &'p ResourcePool {
        self.pool
    }

    /// The shared availability snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &AvailabilitySnapshot {
        &self.snapshot
    }

    /// A fresh copy-on-write view over the session's snapshot.
    #[must_use]
    pub fn overlay(&self) -> TimetableOverlay {
        self.telemetry.incr(Counter::OverlaysCreated);
        TimetableOverlay::new(self.snapshot.clone())
    }

    // The engine's full parameter surface; mirrored by `run_method_chains`.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        req: &ScheduleRequest<'_>,
        fixed: &HashMap<TaskId, Placement>,
        deadline: SimTime,
        two_phase: bool,
        domain: Option<gridsched_model::ids::DomainId>,
        objective: Objective,
        singleton_chains: bool,
    ) -> Result<Distribution, ScheduleError> {
        debug_assert!(
            std::ptr::eq(self.pool, req.pool),
            "request pool must be the session's pool"
        );
        let _pass = self
            .telemetry
            .span_under("critical_works_pass", self.span_parent);
        self.telemetry.incr(Counter::CriticalWorksPasses);
        let (result, probe_stats) = Scratch::with(|scratch| {
            // Overlays come from the thread's arena (rebased on this
            // session's snapshot); the counter keeps its pre-arena meaning
            // of "overlay views handed out".
            self.telemetry.incr(Counter::OverlaysCreated);
            self.telemetry.incr(Counter::OverlaysCreated);
            let background = scratch.take_overlay(&self.snapshot);
            let mut with_job = scratch.take_overlay(&self.snapshot);
            let result = run_method_chains(
                req,
                fixed,
                deadline,
                two_phase,
                domain,
                objective,
                singleton_chains,
                &background,
                &mut with_job,
                &mut scratch.engine,
            );
            // Drain before recycling: `reset_to` zeroes undrained stats.
            let probe_stats = background
                .take_index_stats()
                .merged(with_job.take_index_stats());
            scratch.recycle_overlay(background);
            scratch.recycle_overlay(with_job);
            (result, probe_stats)
        });
        self.telemetry.add(Counter::IndexSeeks, probe_stats.seeks);
        self.telemetry
            .add(Counter::IndexRebuilds, probe_stats.builds);
        self.telemetry
            .add(Counter::IndexBypasses, probe_stats.bypasses);
        self.telemetry
            .add(Counter::ProbeFanouts, probe_stats.fanouts);
        // Plan conflicts are observed either way: a successful pass records
        // the collisions it routed around, a failed pass the ones that
        // stranded it.
        let conflicts = match &result {
            Ok(d) => d.collisions().len(),
            Err(e) => e.collisions.len(),
        };
        self.telemetry.add(Counter::PlanConflicts, conflicts as u64);
        result
    }

    /// Session form of [`crate::method::build_distribution`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some task cannot be placed within the
    /// job's deadline.
    pub fn build_distribution(
        &self,
        req: &ScheduleRequest<'_>,
    ) -> Result<Distribution, ScheduleError> {
        self.reschedule(req, &HashMap::new())
    }

    /// Session form of [`crate::method::reschedule`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some remaining task cannot be placed.
    pub fn reschedule(
        &self,
        req: &ScheduleRequest<'_>,
        fixed: &HashMap<TaskId, Placement>,
    ) -> Result<Distribution, ScheduleError> {
        let deadline = req.release.saturating_add(req.job.deadline());
        self.reschedule_with_deadline(req, fixed, deadline)
    }

    /// Session form of [`crate::method::reschedule_with_deadline`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some remaining task cannot be placed.
    pub fn reschedule_with_deadline(
        &self,
        req: &ScheduleRequest<'_>,
        fixed: &HashMap<TaskId, Placement>,
        deadline: SimTime,
    ) -> Result<Distribution, ScheduleError> {
        self.run(req, fixed, deadline, true, None, Objective::MinCost, false)
    }

    /// Session form of [`crate::method::reschedule_with_objective`]:
    /// replans under an aggressive criterion, degrading to `MinCost` if
    /// the aggressive pass strands a critical work.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some remaining task cannot be placed
    /// even under `MinCost`.
    pub fn reschedule_with_objective(
        &self,
        req: &ScheduleRequest<'_>,
        fixed: &HashMap<TaskId, Placement>,
        deadline: SimTime,
        objective: Objective,
    ) -> Result<Distribution, ScheduleError> {
        match self.run(req, fixed, deadline, true, None, objective, false) {
            Ok(d) => Ok(d),
            Err(e) if objective == Objective::MinCost => Err(e),
            Err(_) => {
                self.telemetry.incr(Counter::ObjectiveFallbacks);
                self.run(req, fixed, deadline, true, None, Objective::MinCost, false)
            }
        }
    }

    /// A single-pass feasibility probe for online admission control: can
    /// any supporting schedule meet `deadline` under `objective`?
    ///
    /// Unlike [`PlanningSession::build_distribution_with_objective`] this
    /// never falls back to `MinCost` — an admission decision wants the
    /// strict answer for the requested criterion (e.g.
    /// `Objective::MinTime { budget }` for deadline/budget admission),
    /// not a best-effort schedule. One critical-works pass, no overlays
    /// retained; the session snapshot is untouched, so probes are free to
    /// fail.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if no supporting schedule meets the
    /// deadline under the requested objective.
    pub fn probe(
        &self,
        req: &ScheduleRequest<'_>,
        deadline: SimTime,
        objective: Objective,
    ) -> Result<Distribution, ScheduleError> {
        self.run(req, &HashMap::new(), deadline, true, None, objective, false)
    }

    /// Session form of [`crate::method::build_distribution_direct`] (the
    /// single-phase ablation).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some task cannot be placed within the
    /// job's deadline.
    pub fn build_distribution_direct(
        &self,
        req: &ScheduleRequest<'_>,
    ) -> Result<Distribution, ScheduleError> {
        let deadline = req.release.saturating_add(req.job.deadline());
        self.run(
            req,
            &HashMap::new(),
            deadline,
            false,
            None,
            Objective::MinCost,
            false,
        )
    }

    /// Session form of [`crate::method::build_distribution_in_domain`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some task cannot be placed inside the
    /// domain within the job's deadline.
    ///
    /// # Panics
    ///
    /// Panics if `domain` has no nodes in the pool.
    pub fn build_distribution_in_domain(
        &self,
        req: &ScheduleRequest<'_>,
        domain: gridsched_model::ids::DomainId,
    ) -> Result<Distribution, ScheduleError> {
        assert!(
            req.pool.in_domain(domain).next().is_some(),
            "domain {domain} has no nodes"
        );
        let deadline = req.release.saturating_add(req.job.deadline());
        self.run(
            req,
            &HashMap::new(),
            deadline,
            true,
            Some(domain),
            Objective::MinCost,
            false,
        )
    }

    /// Session form of [`crate::method::build_distribution_with_objective`]:
    /// falls back to `MinCost` when the aggressive criterion strands a
    /// critical work.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some task cannot be placed within the
    /// job's deadline even under `MinCost`.
    pub fn build_distribution_with_objective(
        &self,
        req: &ScheduleRequest<'_>,
        objective: Objective,
    ) -> Result<Distribution, ScheduleError> {
        let deadline = req.release.saturating_add(req.job.deadline());
        let aggressive = self.run(req, &HashMap::new(), deadline, true, None, objective, false);
        match (aggressive, objective) {
            (Ok(d), _) => Ok(d),
            (Err(e), Objective::MinCost) => Err(e),
            // The sequential chain heuristic can strand later critical
            // works when earlier ones are packed with zero slack; degrade
            // gracefully to the conservative criterion rather than fail
            // the scenario.
            (Err(_), _) => {
                self.telemetry.incr(Counter::ObjectiveFallbacks);
                self.run(
                    req,
                    &HashMap::new(),
                    deadline,
                    true,
                    None,
                    Objective::MinCost,
                    false,
                )
            }
        }
    }

    /// Session form of [`crate::method::build_distribution_recovering`]:
    /// retries with singleton chains when the critical-works pass strands
    /// a later chain.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if even the recovery pass cannot place
    /// some task within the deadline.
    pub fn build_distribution_recovering(
        &self,
        req: &ScheduleRequest<'_>,
    ) -> Result<Distribution, ScheduleError> {
        let deadline = req.release.saturating_add(req.job.deadline());
        match self.run(
            req,
            &HashMap::new(),
            deadline,
            true,
            None,
            Objective::MinCost,
            false,
        ) {
            Ok(d) => Ok(d),
            Err(_) => self.run(
                req,
                &HashMap::new(),
                deadline,
                true,
                None,
                Objective::MinCost,
                true,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_data::policy::DataPolicy;
    use gridsched_model::estimate::EstimateScenario;
    use gridsched_model::fixtures::fig2_job_with_deadline;
    use gridsched_model::ids::{DomainId, NodeId};
    use gridsched_model::perf::Perf;
    use gridsched_model::timetable::ReservationOwner;
    use gridsched_model::window::TimeWindow;
    use gridsched_sim::time::SimDuration;

    fn fig2_pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        for j in 1..=4u32 {
            pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j)).unwrap());
        }
        pool
    }

    #[test]
    fn session_matches_free_function_and_cloning_baseline() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let mut pool = fig2_pool();
        // Non-trivial background load so overlay merging actually runs.
        for i in 0..pool.len() {
            pool.timetable_mut(NodeId::new(i as u32))
                .reserve(
                    TimeWindow::new(
                        SimTime::from_ticks(2 * i as u64),
                        SimTime::from_ticks(2 * i as u64 + 5),
                    )
                    .unwrap(),
                    ReservationOwner::Background(i as u64),
                )
                .unwrap();
        }
        let policy = DataPolicy::remote_access();
        let session = PlanningSession::open(&pool);
        for scenario in [EstimateScenario::BEST, EstimateScenario::WORST] {
            let req = ScheduleRequest {
                job: &job,
                pool: &pool,
                policy: &policy,
                scenario,
                release: SimTime::ZERO,
            };
            let via_session = session.build_distribution(&req).unwrap();
            let via_free = crate::method::build_distribution(&req).unwrap();
            let via_cloning = crate::method::build_distribution_cloning(&req).unwrap();
            assert_eq!(via_session.placements(), via_free.placements());
            assert_eq!(via_session.placements(), via_cloning.placements());
            assert_eq!(via_session.collisions(), via_cloning.collisions());
        }
    }

    #[test]
    fn snapshot_outlives_pool_changes_and_fresh_sessions_see_them() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let mut pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        // A session borrows the pool, so the type system already forbids
        // mutating the pool under a live session; what *can* outlive pool
        // changes is the captured snapshot.
        let old_snapshot = PlanningSession::open(&pool).snapshot().clone();
        for i in 0..pool.len() {
            pool.timetable_mut(NodeId::new(i as u32))
                .reserve(
                    TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap(),
                    ReservationOwner::Background(0),
                )
                .unwrap();
        }
        for i in 0..pool.len() {
            let id = NodeId::new(i as u32);
            assert!(old_snapshot.windows(id).is_empty(), "snapshot is pinned");
        }
        let req = ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        };
        // A fresh session sees the new load.
        let fresh = PlanningSession::open(&pool)
            .build_distribution(&req)
            .unwrap();
        assert!(fresh.placements()[0].window.start() >= SimTime::from_ticks(10));
    }

    #[test]
    fn index_counters_flow_through_session_runs() {
        // Fixture calendars are tiny; drop the engagement floor so the
        // indexed path (and its counters) actually runs. The guard restores
        // every probe knob on drop, and paths are bit-identical either way.
        let _knobs = gridsched_model::availability::ProbeIndexGuard::with_floor(0);
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let mut pool = fig2_pool();
        for i in 0..pool.len() {
            pool.timetable_mut(NodeId::new(i as u32))
                .reserve(
                    TimeWindow::new(SimTime::from_ticks(3), SimTime::from_ticks(8)).unwrap(),
                    ReservationOwner::Background(i as u64),
                )
                .unwrap();
        }
        let policy = DataPolicy::remote_access();
        let telemetry = Telemetry::new();
        let session = PlanningSession::open_instrumented(&pool, &telemetry, None);
        let req = ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        };
        session.build_distribution(&req).unwrap();
        assert!(
            telemetry.counter(Counter::IndexSeeks) > 0,
            "cold probes route through the gap index"
        );
        let rebuilds = telemetry.counter(Counter::IndexRebuilds);
        assert!(
            rebuilds >= 1 && rebuilds <= pool.len() as u64,
            "at most one build per (snapshot, node), got {rebuilds}"
        );
        assert_eq!(telemetry.counter(Counter::IndexBypasses), 0);
    }

    #[test]
    fn overlays_are_independent_views() {
        let pool = fig2_pool();
        let session = PlanningSession::open(&pool);
        let node = NodeId::new(0);
        let w = TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(5)).unwrap();
        let mut a = session.overlay();
        let b = session.overlay();
        a.reserve_window(node, w).unwrap();
        assert!(!a.is_free(node, w));
        assert!(b.is_free(node, w), "sibling overlays never see each other");
        assert!(session.overlay().is_free(node, w));
    }
}
