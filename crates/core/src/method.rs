//! The critical works method (§3).
//!
//! A "multiphase procedure, which is searching for a next critical work —
//! the longest … chain of unassigned tasks along with the best combination
//! of available resources, and resolving collisions caused by conflicts
//! between tasks of different critical works competing for the same
//! resource."
//!
//! Phases, per estimation scenario:
//!
//! 1. decompose the job into vertex-disjoint critical works, longest first
//!    ([`crate::chains`]);
//! 2. allocate each work by dynamic programming against the *background*
//!    availability — deliberately ignoring the sibling works' reservations
//!    ([`crate::allocate`]);
//! 3. if the resulting placements collide with a sibling work's
//!    reservation, record the collision (node and performance group — the
//!    Fig. 3b statistic) and re-allocate the work against the true
//!    availability;
//! 4. commit the work's reservations and continue.
//!
//! All schedule construction flows through the planning-session layer
//! ([`crate::session::PlanningSession`]): the free functions here are thin
//! wrappers that open a session (one availability snapshot) and run the
//! method against copy-on-write overlay views. The pre-refactor
//! clone-per-run path survives as [`build_distribution_cloning`] for
//! differential tests and benchmarks.

use std::collections::HashMap;
use std::fmt;

use gridsched_sim::time::SimTime;

use gridsched_data::policy::DataPolicy;
use gridsched_model::availability::Availability;
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{GlobalTaskId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::timetable::{ReservationOwner, Timetable};

use crate::allocate::{allocate_chain_into, AllocationContext};
use crate::chains::{next_critical_work_into, CriticalWork};
use crate::distribution::{CollisionRecord, Distribution, Placement};
use crate::scratch::EngineScratch;
use crate::session::PlanningSession;

/// Vertex-disjoint critical works over the not-yet-placed tasks only,
/// written into `scratch.works` (task vectors recycled from
/// `scratch.spare_tasks`).
fn decompose_remaining(
    req: &ScheduleRequest<'_>,
    fastest: gridsched_model::perf::Perf,
    scratch: &mut EngineScratch,
) {
    scratch.remaining.clone_from(&scratch.unassigned);
    loop {
        let mut tasks = scratch.spare_tasks.pop().unwrap_or_default();
        let length = next_critical_work_into(
            req.job,
            &scratch.remaining,
            |t| req.scenario.duration(req.job.task(t), fastest),
            |e| req.policy.transfer_model().intra_domain_time(e.volume()),
            &mut scratch.chain,
            &mut tasks,
        );
        match length {
            Some(length) => {
                for t in &tasks {
                    scratch.remaining.remove(t);
                }
                scratch.works.push(CriticalWork { tasks, length });
            }
            None => {
                scratch.spare_tasks.push(tasks);
                break;
            }
        }
    }
}

/// Inputs of one critical-works scheduling run.
///
/// The allocator optimizes [`crate::objective::Objective::MinCost`] —
/// the paper's default criterion. Use
/// [`build_distribution_with_objective`] for the multicriteria variants.
#[derive(Debug)]
pub struct ScheduleRequest<'a> {
    /// The compound job.
    pub job: &'a Job,
    /// The resource pool whose timetables describe current availability.
    pub pool: &'a ResourcePool,
    /// Data-access policy.
    pub policy: &'a DataPolicy,
    /// Estimation scenario to plan under.
    pub scenario: EstimateScenario,
    /// Earliest start instant (usually the job's arrival at the
    /// metascheduler).
    pub release: SimTime,
}

/// Failure to construct a supporting schedule for one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// The first task with no feasible placement.
    pub task: TaskId,
    /// The scenario that failed.
    pub scenario: EstimateScenario,
    /// Collisions recorded before the failure (they still count towards
    /// the Fig. 3b statistics).
    pub collisions: Vec<CollisionRecord>,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no admissible schedule under scenario {}: task {} unplaceable",
            self.scenario, self.task
        )
    }
}

impl std::error::Error for ScheduleError {}

/// Builds one supporting schedule ([`Distribution`]) with the critical
/// works method.
///
/// The pool's timetables are *read* as the background availability; no
/// reservation is committed to them — the job-flow layer decides whether
/// to activate the schedule (and then reserves).
///
/// # Errors
///
/// Returns [`ScheduleError`] if some task cannot be placed within the
/// job's deadline on the available windows.
pub fn build_distribution(req: &ScheduleRequest<'_>) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).build_distribution(req)
}

/// The pre-refactor clone-per-run baseline of [`build_distribution`]: both
/// availability views are materialized `Vec<Timetable>` clones of the
/// pool's calendars instead of copy-on-write overlays over a shared
/// snapshot.
///
/// Kept (and exercised by the differential/determinism suites and the
/// `strategy_sweep` bench) to pin the overlay path's bit-identical output
/// and to quantify what the share-don't-copy design saves.
///
/// # Errors
///
/// Returns [`ScheduleError`] exactly when [`build_distribution`] does.
pub fn build_distribution_cloning(
    req: &ScheduleRequest<'_>,
) -> Result<Distribution, ScheduleError> {
    let deadline = req.release.saturating_add(req.job.deadline());
    let background: Vec<Timetable> = req
        .pool
        .nodes()
        .map(|n| req.pool.timetable(n.id()).clone())
        .collect();
    let mut with_job = background.clone();
    run_method_chains(
        req,
        &HashMap::new(),
        deadline,
        true,
        None,
        crate::objective::Objective::MinCost,
        false,
        &background,
        &mut with_job,
        // The baseline deliberately pays for a fresh working set per run,
        // like the pre-refactor code did.
        &mut EngineScratch::default(),
    )
}

/// Rebuilds the schedule for the tasks *not* in `fixed`, keeping the fixed
/// placements (typically tasks that already started) untouched.
///
/// This is the dynamic reallocation mechanism of §2: when resource dynamics
/// invalidate an active supporting schedule mid-flight, the job manager
/// replans the remaining tasks from the current instant (`req.release`)
/// around the work already done.
///
/// The fixed placements' deadlines still apply: the job keeps its original
/// absolute deadline, computed here as `req.release + job.deadline()` — so
/// callers replanning at time `τ` should pass the *remaining* deadline
/// budget via a job whose deadline is absolute-deadline − τ, or simply keep
/// using the original release through [`build_distribution`]. The flow
/// layer uses [`reschedule_with_deadline`] to pin the absolute deadline
/// explicitly.
///
/// # Errors
///
/// Returns [`ScheduleError`] if some remaining task cannot be placed.
pub fn reschedule(
    req: &ScheduleRequest<'_>,
    fixed: &HashMap<TaskId, Placement>,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).reschedule(req, fixed)
}

/// [`reschedule`] with an explicit absolute deadline (used when replanning
/// mid-flight, where the deadline was fixed at the original release).
///
/// # Errors
///
/// Returns [`ScheduleError`] if some remaining task cannot be placed.
pub fn reschedule_with_deadline(
    req: &ScheduleRequest<'_>,
    fixed: &HashMap<TaskId, Placement>,
    deadline: SimTime,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).reschedule_with_deadline(req, fixed, deadline)
}

/// [`reschedule_with_deadline`] under an explicit optimization criterion —
/// the §5 "dynamic priority change": a job manager replanning a job whose
/// deadline is endangered can pay more quota for speed. Falls back to
/// `MinCost` if the aggressive criterion strands a critical work.
///
/// # Errors
///
/// Returns [`ScheduleError`] if some remaining task cannot be placed even
/// under `MinCost`.
pub fn reschedule_with_objective(
    req: &ScheduleRequest<'_>,
    fixed: &HashMap<TaskId, Placement>,
    deadline: SimTime,
    objective: crate::objective::Objective,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).reschedule_with_objective(req, fixed, deadline, objective)
}

/// Single-phase ablation of the critical works method: every chain is
/// allocated directly against the availability *including* sibling-chain
/// reservations, so collisions never occur (and are never recorded).
///
/// Used by the ablation bench to quantify what the paper's two-phase
/// "ideal allocation, then collision resolution" buys; not part of the
/// paper's method itself.
///
/// # Errors
///
/// Returns [`ScheduleError`] if some task cannot be placed within the
/// job's deadline.
pub fn build_distribution_direct(req: &ScheduleRequest<'_>) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).build_distribution_direct(req)
}

/// [`build_distribution`], but restricted to the nodes of one domain —
/// the view of a single job manager in the Fig. 1 hierarchy. The
/// metascheduler can retry another domain on failure (inter-domain job
/// reallocation).
///
/// # Errors
///
/// Returns [`ScheduleError`] if some task cannot be placed inside the
/// domain within the job's deadline.
pub fn build_distribution_in_domain(
    req: &ScheduleRequest<'_>,
    domain: gridsched_model::ids::DomainId,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).build_distribution_in_domain(req, domain)
}

/// [`build_distribution`] under an explicit optimization criterion: the
/// paper's default minimizes cost; `MinTime` buys speed, optionally capped
/// by a per-critical-work quota budget ("user should pay additional cost
/// in order to … start the task faster", §3).
///
/// # Errors
///
/// Returns [`ScheduleError`] if some task cannot be placed within the
/// job's deadline.
pub fn build_distribution_with_objective(
    req: &ScheduleRequest<'_>,
    objective: crate::objective::Objective,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).build_distribution_with_objective(req, objective)
}

/// [`build_distribution`] with list-scheduling recovery: if the sequential
/// critical-works pass strands a later chain (densely packed earlier
/// chains can leave no gap for a task with both a placed producer and a
/// placed consumer), retry with singleton chains in topological order,
/// whose constraints only flow forward and therefore always compose.
///
/// Kept separate from [`build_distribution`] because the paper's
/// admissibility statistics (Fig. 3a) are defined by the critical-works
/// pass alone; recovery admits marginal schedules the method proper would
/// reject.
///
/// # Errors
///
/// Returns [`ScheduleError`] if even the recovery pass cannot place some
/// task within the deadline.
pub fn build_distribution_recovering(
    req: &ScheduleRequest<'_>,
) -> Result<Distribution, ScheduleError> {
    PlanningSession::open(req.pool).build_distribution_recovering(req)
}

/// The critical-works engine proper, generic over the availability view.
///
/// `background` and `with_job` must start as equal views of the pool's
/// current availability: phase 1 allocates against `background` only,
/// phase 2 and the commits run against `with_job`. The planning session
/// passes two fresh [`gridsched_model::availability::TimetableOverlay`]s
/// over one shared snapshot; [`build_distribution_cloning`] passes two
/// materialized `Vec<Timetable>` clones.
///
/// All working buffers live in `scratch` and are reused across passes
/// (cleared before use, so a fresh [`EngineScratch`] behaves identically
/// to a recycled one); only the returned [`Distribution`] is allocated.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_method_chains<A: Availability>(
    req: &ScheduleRequest<'_>,
    fixed: &HashMap<TaskId, Placement>,
    deadline: SimTime,
    two_phase: bool,
    domain: Option<gridsched_model::ids::DomainId>,
    objective: crate::objective::Objective,
    singleton_chains: bool,
    background: &A,
    with_job: &mut A,
    scratch: &mut EngineScratch,
) -> Result<Distribution, ScheduleError> {
    let ctx = AllocationContext {
        job: req.job,
        pool: req.pool,
        policy: req.policy,
        scenario: req.scenario,
        release: req.release,
        deadline,
        domain,
        objective,
    };
    // Chain ranking weights: scenario-scaled durations on the fastest node
    // class; transfers at the cheapest (intra-domain) price.
    let fastest = req.pool.fastest_perf();
    scratch.unassigned.clear();
    scratch.unassigned.extend(
        req.job
            .tasks()
            .iter()
            .map(|t| t.id())
            .filter(|t| !fixed.contains_key(t)),
    );
    // Retire the previous pass's critical works, keeping their task
    // vectors' capacity for this pass.
    for work in scratch.works.drain(..) {
        let mut tasks = work.tasks;
        tasks.clear();
        scratch.spare_tasks.push(tasks);
    }
    if singleton_chains {
        for &t in req.job.topo_order() {
            if !scratch.unassigned.contains(&t) {
                continue;
            }
            let mut tasks = scratch.spare_tasks.pop().unwrap_or_default();
            tasks.push(t);
            scratch.works.push(CriticalWork {
                tasks,
                length: req.scenario.duration(req.job.task(t), fastest),
            });
        }
    } else {
        decompose_remaining(req, fastest, scratch);
    }

    scratch.placed.clear();
    scratch.placed.extend(fixed.iter().map(|(&t, &p)| (t, p)));
    scratch.alloc.begin_pass(&ctx);
    let mut collisions: Vec<CollisionRecord> = Vec::new();

    for work in &scratch.works {
        // Phase 1: ideal allocation against the background only (the
        // single-phase ablation skips straight to the true availability).
        let ideal = if two_phase {
            allocate_chain_into(
                &ctx,
                &work.tasks,
                &scratch.placed,
                background,
                &mut scratch.alloc,
                &mut scratch.ideal,
            )
        } else {
            allocate_chain_into(
                &ctx,
                &work.tasks,
                &scratch.placed,
                &*with_job,
                &mut scratch.alloc,
                &mut scratch.ideal,
            )
        };
        let chosen: Result<&[Placement], crate::allocate::AllocateError> = match ideal {
            Ok(()) => {
                let mut any_conflict = false;
                for p in &scratch.ideal {
                    if !with_job.is_free(p.node, p.window) {
                        // Phase 2: collision with a sibling critical work.
                        any_conflict = true;
                        collisions.push(CollisionRecord {
                            task: p.task,
                            node: p.node,
                            group: req.pool.node(p.node).group(),
                        });
                    }
                }
                if !any_conflict {
                    Ok(&scratch.ideal)
                } else {
                    allocate_chain_into(
                        &ctx,
                        &work.tasks,
                        &scratch.placed,
                        &*with_job,
                        &mut scratch.alloc,
                        &mut scratch.resolved,
                    )
                    .map(|()| scratch.resolved.as_slice())
                }
            }
            Err(e) => Err(e),
        };
        let placements = chosen.map_err(|e| ScheduleError {
            task: e.task,
            scenario: req.scenario,
            collisions: collisions.clone(),
        })?;
        for &p in placements {
            with_job
                .reserve(
                    p.node,
                    p.window,
                    ReservationOwner::Task(GlobalTaskId {
                        job: req.job.id(),
                        task: p.task,
                    }),
                )
                .expect("allocation chose a free window");
            scratch.placed.insert(p.task, p);
        }
    }

    let mut placements: Vec<Placement> = scratch.placed.drain().map(|(_, p)| p).collect();
    placements.sort_by_key(|p| p.task);
    Ok(Distribution::new(req.scenario, placements, collisions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::{fig2_job, fig2_job_with_deadline};
    use gridsched_model::ids::{DomainId, NodeId};
    use gridsched_model::perf::Perf;
    use gridsched_model::window::TimeWindow;
    use gridsched_sim::time::SimDuration;

    /// The paper's four node types: performances 1, 1/2, 1/3, 1/4.
    fn fig2_pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        for j in 1..=4u32 {
            pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j)).unwrap());
        }
        pool
    }

    fn request<'a>(
        job: &'a Job,
        pool: &'a ResourcePool,
        policy: &'a DataPolicy,
    ) -> ScheduleRequest<'a> {
        ScheduleRequest {
            job,
            pool,
            policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        }
    }

    #[test]
    fn fig2_schedule_is_valid_and_meets_deadline() {
        let job = fig2_job();
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let dist = build_distribution(&request(&job, &pool, &policy)).unwrap();
        assert_eq!(dist.validate(&job, &pool), Ok(()));
        assert!(dist.meets_deadline(SimTime::from_ticks(20)), "{dist}");
        assert!(dist.cost() > 0);
    }

    #[test]
    fn tighter_deadline_costs_more() {
        // The paper's economics: "user should pay additional cost in order
        // to … start the task faster."
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let relaxed_job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let tight_job = fig2_job_with_deadline(SimDuration::from_ticks(14));
        let relaxed = build_distribution(&request(&relaxed_job, &pool, &policy)).unwrap();
        let tight = build_distribution(&request(&tight_job, &pool, &policy)).unwrap();
        assert!(
            tight.cost() > relaxed.cost(),
            "tight {} vs relaxed {}",
            tight.cost(),
            relaxed.cost()
        );
        assert!(tight.makespan() <= SimTime::from_ticks(14));
    }

    #[test]
    fn impossible_deadline_is_reported() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(5));
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let err = build_distribution(&request(&job, &pool, &policy)).unwrap_err();
        assert_eq!(err.scenario, EstimateScenario::BEST);
    }

    #[test]
    fn collisions_recorded_when_chains_contend() {
        // A two-node pool forces the two critical works of the Fig. 2 job
        // to fight over the same nodes.
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::FULL);
        let job = fig2_job_with_deadline(SimDuration::from_ticks(40));
        let policy = DataPolicy::remote_access();
        let dist = build_distribution(&request(&job, &pool, &policy)).unwrap();
        assert!(
            !dist.collisions().is_empty(),
            "sibling chains on two identical nodes must collide"
        );
        assert_eq!(dist.validate(&job, &pool), Ok(()));
    }

    #[test]
    fn background_load_shifts_schedule() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let mut pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let free = build_distribution(&request(&job, &pool, &policy)).unwrap();
        // Occupy every node until t10.
        for i in 0..pool.len() {
            let id = NodeId::new(i as u32);
            pool.timetable_mut(id)
                .reserve(
                    TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap(),
                    ReservationOwner::Background(0),
                )
                .unwrap();
        }
        let loaded = build_distribution(&request(&job, &pool, &policy)).unwrap();
        assert!(loaded.makespan() > free.makespan());
        for p in loaded.placements() {
            assert!(p.window.start() >= SimTime::from_ticks(10));
        }
    }

    #[test]
    fn worst_case_scenario_takes_longer() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(100));
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let mut req = request(&job, &pool, &policy);
        let best = build_distribution(&req).unwrap();
        req.scenario = EstimateScenario::WORST;
        let worst = build_distribution(&req).unwrap();
        assert!(worst.makespan() > best.makespan());
    }

    #[test]
    fn release_time_offsets_schedule() {
        let job = fig2_job();
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let mut req = request(&job, &pool, &policy);
        req.release = SimTime::from_ticks(100);
        let dist = build_distribution(&req).unwrap();
        for p in dist.placements() {
            assert!(p.window.start() >= SimTime::from_ticks(100));
        }
        assert!(dist.meets_deadline(SimTime::from_ticks(120)));
    }

    #[test]
    fn reschedule_keeps_fixed_tasks_and_replans_the_rest() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let original = build_distribution(&request(&job, &pool, &policy)).unwrap();

        // Pretend P1 already started exactly as planned; replan the rest
        // from t3 with the original absolute deadline.
        let fixed: HashMap<TaskId, crate::distribution::Placement> = [TaskId::new(0)]
            .into_iter()
            .map(|t| (t, *original.placement(t)))
            .collect();
        let mut req = request(&job, &pool, &policy);
        req.release = SimTime::from_ticks(3);
        let replanned = reschedule_with_deadline(&req, &fixed, SimTime::from_ticks(60)).unwrap();
        assert_eq!(
            replanned.placement(TaskId::new(0)),
            original.placement(TaskId::new(0))
        );
        assert_eq!(replanned.validate(&job, &pool), Ok(()));
        for p in replanned.placements() {
            if p.task != TaskId::new(0) {
                assert!(p.window.start() >= SimTime::from_ticks(3));
            }
        }
    }

    #[test]
    fn direct_variant_is_collision_free_and_valid() {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::FULL);
        let job = fig2_job_with_deadline(SimDuration::from_ticks(40));
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let direct = build_distribution_direct(&req).unwrap();
        assert!(
            direct.collisions().is_empty(),
            "single-phase never collides"
        );
        assert_eq!(direct.validate(&job, &pool), Ok(()));
        // The two-phase variant on the same input does record collisions.
        let two_phase = build_distribution(&req).unwrap();
        assert!(!two_phase.collisions().is_empty());
    }

    #[test]
    fn domain_restriction_keeps_placements_inside_the_domain() {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::new(0.5).unwrap());
        pool.add_node(DomainId::new(1), Perf::new(0.33).unwrap());
        pool.add_node(DomainId::new(1), Perf::new(0.33).unwrap());
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let slow_domain = DomainId::new(1);
        let dist = build_distribution_in_domain(&req, slow_domain).unwrap();
        for p in dist.placements() {
            assert_eq!(pool.node(p.node).domain(), slow_domain, "{p}");
        }
        assert_eq!(dist.validate(&job, &pool), Ok(()));
        // At a deadline only fast nodes can meet, the slow domain fails
        // while the VO-wide schedule succeeds — the case where Fig. 1's
        // metascheduler reallocates the job to another domain.
        let tight = fig2_job_with_deadline(SimDuration::from_ticks(20));
        let tight_req = request(&tight, &pool, &policy);
        assert!(build_distribution(&tight_req).is_ok());
        assert!(build_distribution_in_domain(&tight_req, slow_domain).is_err());
    }

    #[test]
    #[should_panic(expected = "has no nodes")]
    fn empty_domain_is_rejected() {
        let pool = fig2_pool();
        let job = fig2_job();
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let _ = build_distribution_in_domain(&req, DomainId::new(9));
    }

    #[test]
    fn min_time_objective_is_faster_and_pricier() {
        use crate::objective::Objective;
        use gridsched_model::fixtures::pipeline_job;
        // A single-chain job has no cross-edge constraints, so the pure
        // MinTime criterion is always feasible when MinCost is.
        let job = pipeline_job(
            gridsched_model::ids::JobId::new(1),
            &[20.0, 30.0, 20.0, 10.0],
            SimDuration::from_ticks(100),
        );
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let cheap = build_distribution(&req).unwrap();
        let fast = build_distribution_with_objective(&req, Objective::FASTEST).unwrap();
        assert!(
            fast.makespan() < cheap.makespan(),
            "fast {fast} vs cheap {cheap}"
        );
        assert!(fast.cost() > cheap.cost());
        assert_eq!(fast.validate(&job, &pool), Ok(()));
    }

    #[test]
    fn min_time_budget_caps_spending() {
        use crate::objective::Objective;
        use gridsched_model::fixtures::pipeline_job;
        let job = pipeline_job(
            gridsched_model::ids::JobId::new(1),
            &[20.0, 30.0, 20.0, 10.0],
            SimDuration::from_ticks(100),
        );
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let cheap = build_distribution(&req).unwrap();
        let unlimited = build_distribution_with_objective(&req, Objective::FASTEST).unwrap();
        let capped = build_distribution_with_objective(
            &req,
            Objective::MinTime {
                budget: Some((cheap.cost() + unlimited.cost()) / 2),
            },
        )
        .unwrap();
        // A mid budget lands between the two extremes.
        assert!(capped.cost() <= (cheap.cost() + unlimited.cost()) / 2);
        assert!(capped.makespan() >= unlimited.makespan());
        assert!(capped.makespan() <= cheap.makespan());
        assert_eq!(capped.validate(&job, &pool), Ok(()));
    }

    #[test]
    fn min_time_falls_back_gracefully_on_fork_joins() {
        use crate::objective::Objective;
        // On the Fig. 2 fork-join, zero-slack MinTime chains strand the
        // second critical work; the scheduler degrades to MinCost instead
        // of failing the scenario.
        let job = fig2_job_with_deadline(SimDuration::from_ticks(60));
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let req = request(&job, &pool, &policy);
        let cheap = build_distribution(&req).unwrap();
        let fast = build_distribution_with_objective(&req, Objective::FASTEST).unwrap();
        assert_eq!(
            fast.cost(),
            cheap.cost(),
            "fallback produced the MinCost schedule"
        );
        assert_eq!(fast.validate(&job, &pool), Ok(()));
    }

    #[test]
    fn recovery_variant_schedules_what_chains_alone_cannot() {
        use gridsched_workload::jobs::{generate_job, JobConfig};
        use gridsched_workload::pool::{generate_pool, PoolConfig};
        let pool = generate_pool(
            &PoolConfig::default(),
            &mut gridsched_sim::rng::SimRng::seed_from(1),
        );
        let policy = DataPolicy::remote_access();
        // A deep fork-join where the packed critical-works pass strands a
        // cross task; recovery list-schedules it. The exact shape depends
        // on the PRNG stream, so scan a deterministic seed range for the
        // first stranding instance instead of pinning one seed.
        let make = |seed: u64| {
            generate_job(
                &JobConfig {
                    layers_min: 10,
                    layers_max: 10,
                    width_max: 3,
                    deadline_factor: 20.0,
                    ..JobConfig::default()
                },
                gridsched_model::ids::JobId::new(seed),
                SimTime::ZERO,
                &mut gridsched_sim::rng::SimRng::seed_from(seed),
            )
        };
        let stranded = (0..500u64).map(make).find(|job| {
            let req = request(job, &pool, &policy);
            build_distribution(&req).is_err()
        });
        let job = stranded.expect("some deep fork-join strands the chains-only pass");
        let req = request(&job, &pool, &policy);
        assert!(
            build_distribution(&req).is_err(),
            "chains alone strand this job"
        );
        let recovered = build_distribution_recovering(&req).unwrap();
        assert_eq!(recovered.validate(&job, &pool), Ok(()));
        assert!(recovered.meets_deadline(job.absolute_deadline()));
    }

    #[test]
    fn urgent_reschedule_is_no_slower_than_cheap_reschedule() {
        use crate::objective::Objective;
        let job = fig2_job_with_deadline(SimDuration::from_ticks(80));
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let original = build_distribution(&request(&job, &pool, &policy)).unwrap();
        let fixed: HashMap<TaskId, crate::distribution::Placement> = [TaskId::new(0)]
            .into_iter()
            .map(|t| (t, *original.placement(t)))
            .collect();
        let mut req = request(&job, &pool, &policy);
        req.release = SimTime::from_ticks(3);
        let deadline = SimTime::from_ticks(80);
        let cheap = reschedule_with_objective(&req, &fixed, deadline, Objective::MinCost).unwrap();
        let req2 = {
            let mut r = request(&job, &pool, &policy);
            r.release = SimTime::from_ticks(3);
            r
        };
        let urgent =
            reschedule_with_objective(&req2, &fixed, deadline, Objective::FASTEST).unwrap();
        assert!(urgent.makespan() <= cheap.makespan());
        assert!(urgent.cost() >= cheap.cost());
        assert_eq!(urgent.validate(&job, &pool), Ok(()));
    }

    #[test]
    fn pool_timetables_are_not_mutated() {
        let job = fig2_job();
        let pool = fig2_pool();
        let policy = DataPolicy::remote_access();
        let _ = build_distribution(&request(&job, &pool, &policy)).unwrap();
        for node in pool.nodes() {
            assert!(pool.timetable(node.id()).is_empty());
        }
    }
}
