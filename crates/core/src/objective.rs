//! Optimization objectives for chain allocation.
//!
//! The paper's strategies are *multicriteria* (its refs. [21, 22]): the
//! same supporting-schedule machinery can optimize different criteria
//! depending on the virtual organization's policy and the user's quota.
//! Since the allocation DP keeps a Pareto frontier of `(finish, cost)`
//! states, switching criterion is just a different choice from that
//! frontier.

use std::fmt;

use crate::cost::Cost;

/// What the allocator optimizes, subject to the job's deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the cost function `CF` — the paper's default: meet the
    /// deadline as cheaply as possible.
    #[default]
    MinCost,
    /// Minimize the finish time — the "pay for speed" end of the paper's
    /// economics, optionally capped by a quota budget per critical work.
    MinTime {
        /// Maximum quota the user will spend on one critical work;
        /// `None` means unlimited.
        budget: Option<Cost>,
    },
}

impl Objective {
    /// Minimize time with no budget cap.
    pub const FASTEST: Objective = Objective::MinTime { budget: None };

    /// Compares two `(finish_ticks, cost)` Pareto states; `true` when the
    /// first is preferable under this objective. States violating a
    /// `MinTime` budget should be filtered out with
    /// [`Objective::admits`] before comparison.
    #[must_use]
    pub fn prefers(self, a: (u64, Cost), b: (u64, Cost)) -> bool {
        match self {
            Objective::MinCost => (a.1, a.0) < (b.1, b.0),
            Objective::MinTime { .. } => (a.0, a.1) < (b.0, b.1),
        }
    }

    /// Whether a state's accumulated cost is within the objective's
    /// budget.
    #[must_use]
    pub fn admits(self, cost: Cost) -> bool {
        match self {
            Objective::MinCost => true,
            Objective::MinTime { budget } => budget.is_none_or(|b| cost <= b),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::MinCost => f.write_str("min-cost"),
            Objective::MinTime { budget: None } => f.write_str("min-time"),
            Objective::MinTime { budget: Some(b) } => write!(f, "min-time(budget {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_cost_prefers_cheaper() {
        let o = Objective::MinCost;
        assert!(o.prefers((10, 5), (5, 6)));
        assert!(o.prefers((5, 5), (10, 5)), "ties break on finish");
    }

    #[test]
    fn min_time_prefers_earlier() {
        let o = Objective::FASTEST;
        assert!(o.prefers((5, 100), (10, 1)));
        assert!(o.prefers((5, 1), (5, 2)), "ties break on cost");
    }

    #[test]
    fn budget_gates_admission() {
        let o = Objective::MinTime { budget: Some(10) };
        assert!(o.admits(10));
        assert!(!o.admits(11));
        assert!(Objective::FASTEST.admits(u64::MAX));
        assert!(Objective::MinCost.admits(u64::MAX));
    }

    #[test]
    fn default_is_the_papers_min_cost() {
        assert_eq!(Objective::default(), Objective::MinCost);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Objective::MinCost.to_string(), "min-cost");
        assert_eq!(Objective::FASTEST.to_string(), "min-time");
        assert_eq!(
            Objective::MinTime { budget: Some(7) }.to_string(),
            "min-time(budget 7)"
        );
    }
}
