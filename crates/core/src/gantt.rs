//! ASCII Gantt charts for distributions, in the style of Fig. 2b.

use std::fmt::Write as _;

use gridsched_model::node::ResourcePool;

use crate::distribution::Distribution;

/// Renders a per-node Gantt chart of a distribution.
///
/// Each node gets a row; each task paints its wall window with its id
/// (staging stall shown as `.`, execution as the task number). One column
/// is one tick, starting at the earliest window start.
///
/// # Examples
///
/// ```
/// use gridsched_core::gantt::render_gantt;
/// use gridsched_core::method::{build_distribution, ScheduleRequest};
/// use gridsched_data::policy::DataPolicy;
/// use gridsched_model::estimate::EstimateScenario;
/// use gridsched_model::fixtures::fig2_job;
/// use gridsched_model::ids::DomainId;
/// use gridsched_model::node::ResourcePool;
/// use gridsched_model::perf::Perf;
/// use gridsched_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = fig2_job();
/// let mut pool = ResourcePool::new();
/// for j in 1..=4u32 {
///     pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
/// }
/// let policy = DataPolicy::remote_access();
/// let dist = build_distribution(&ScheduleRequest {
///     job: &job,
///     pool: &pool,
///     policy: &policy,
///     scenario: EstimateScenario::BEST,
///     release: SimTime::ZERO,
/// })?;
/// let chart = render_gantt(&dist, &pool);
/// assert!(chart.contains("N0"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_gantt(dist: &Distribution, pool: &ResourcePool) -> String {
    let start = dist
        .placements()
        .iter()
        .map(|p| p.window.start().ticks())
        .min()
        .unwrap_or(0);
    let end = dist.makespan().ticks();
    let width = (end - start) as usize;

    let mut out = String::new();
    // Per-node rows.
    for node in pool.nodes() {
        let mut row = vec![' '; width];
        let mut used = false;
        for p in dist.placements().iter().filter(|p| p.node == node.id()) {
            used = true;
            let s = (p.window.start().ticks() - start) as usize;
            let e = (p.window.end().ticks() - start) as usize;
            let stall_end = s + p.stall.ticks() as usize;
            let glyph = task_glyph(p.task.raw());
            for (i, cell) in row.iter_mut().enumerate().take(e).skip(s) {
                *cell = if i < stall_end { '.' } else { glyph };
            }
        }
        if used {
            let _ = writeln!(
                out,
                "{:>4} |{}|",
                node.id().to_string(),
                row.iter().collect::<String>()
            );
        }
    }
    // Time axis with a mark every 5 ticks.
    let mut axis = String::new();
    for i in 0..width {
        let t = start + i as u64;
        axis.push(if t.is_multiple_of(5) { '+' } else { '-' });
    }
    let _ = writeln!(out, "{:>4}  {axis}", "");
    let _ = writeln!(out, "{:>4}  t{start}..t{end} ('.' = input staging)", "");
    out
}

/// One printable character per task id: `0..9`, then `a..z`, then `*`.
fn task_glyph(raw: u32) -> char {
    match raw {
        0..=9 => char::from(b'0' + raw as u8),
        10..=35 => char::from(b'a' + (raw - 10) as u8),
        _ => '*',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_distribution, ScheduleRequest};
    use gridsched_data::policy::DataPolicy;
    use gridsched_model::estimate::EstimateScenario;
    use gridsched_model::fixtures::fig2_job;
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;
    use gridsched_sim::time::SimTime;

    fn fig2_chart() -> (String, Distribution, ResourcePool) {
        let job = fig2_job();
        let mut pool = ResourcePool::new();
        for j in 1..=4u32 {
            pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j)).unwrap());
        }
        let policy = DataPolicy::remote_access();
        let dist = build_distribution(&ScheduleRequest {
            job: &job,
            pool: &pool,
            policy: &policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
        })
        .unwrap();
        (render_gantt(&dist, &pool), dist, pool)
    }

    #[test]
    fn chart_mentions_every_used_node_and_task() {
        let (chart, dist, _pool) = fig2_chart();
        for p in dist.placements() {
            assert!(
                chart.contains(&p.node.to_string()),
                "node {} missing from chart:\n{chart}",
                p.node
            );
            assert!(
                chart.contains(task_glyph(p.task.raw())),
                "task {} missing from chart:\n{chart}",
                p.task
            );
        }
    }

    #[test]
    fn row_lengths_are_uniform() {
        let (chart, _, _) = fig2_chart();
        let lengths: Vec<usize> = chart
            .lines()
            .filter(|l| l.contains('|'))
            .map(str::len)
            .collect();
        assert!(!lengths.is_empty());
        assert!(lengths.windows(2).all(|w| w[0] == w[1]), "{chart}");
    }

    #[test]
    fn glyphs_cover_task_id_space() {
        assert_eq!(task_glyph(0), '0');
        assert_eq!(task_glyph(9), '9');
        assert_eq!(task_glyph(10), 'a');
        assert_eq!(task_glyph(35), 'z');
        assert_eq!(task_glyph(36), '*');
    }

    #[test]
    fn busy_cell_count_matches_wall_time() {
        let (chart, dist, _) = fig2_chart();
        let busy: usize = chart
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.chars().filter(|c| *c != ' ' && *c != '|').count() - 2)
            .sum();
        // Row labels contribute the "N?" prefix (2 non-space chars) which
        // we subtracted per line; the remainder is stall + exec cells.
        let expected: u64 = dist
            .placements()
            .iter()
            .map(|p| p.window.duration().ticks())
            .sum();
        assert_eq!(busy as u64, expected, "{chart}");
    }
}
