//! # gridsched-core
//!
//! The primary contribution of Toporkov's PaCT 2009 paper, implemented as a
//! library: **application-level scheduling strategies built with the
//! critical works method**.
//!
//! A compound job (a DAG of tasks, [`gridsched_model::job::Job`]) is
//! scheduled onto heterogeneous processor nodes by:
//!
//! 1. decomposing it into *critical works* — longest chains of unassigned
//!    tasks ([`chains`]);
//! 2. co-allocating each work with a Pareto dynamic program minimizing the
//!    paper's cost function `CF = Σ ceil(V_i / T_i)` subject to the job
//!    deadline ([`allocate`], [`cost`]);
//! 3. detecting and resolving *collisions* between works competing for the
//!    same node ([`method`]);
//! 4. sweeping estimation scenarios and data policies to produce a
//!    **strategy**: a set of supporting schedules the job-flow layer can
//!    switch between at run time ([`strategy`], [`distribution`]).
//!
//! # Examples
//!
//! Schedule the paper's Fig. 2 job on its four node types and inspect the
//! resulting supporting schedule:
//!
//! ```
//! use gridsched_core::method::{build_distribution, ScheduleRequest};
//! use gridsched_data::policy::DataPolicy;
//! use gridsched_model::estimate::EstimateScenario;
//! use gridsched_model::fixtures::fig2_job;
//! use gridsched_model::ids::DomainId;
//! use gridsched_model::node::ResourcePool;
//! use gridsched_model::perf::Perf;
//! use gridsched_sim::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let job = fig2_job();
//! let mut pool = ResourcePool::new();
//! for j in 1..=4u32 {
//!     pool.add_node(DomainId::new(0), Perf::new(1.0 / f64::from(j))?);
//! }
//! let policy = DataPolicy::remote_access();
//! let dist = build_distribution(&ScheduleRequest {
//!     job: &job,
//!     pool: &pool,
//!     policy: &policy,
//!     scenario: EstimateScenario::BEST,
//!     release: SimTime::ZERO,
//! })?;
//! assert!(dist.meets_deadline(SimTime::from_ticks(20)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Persistent worker pool for scenario sweeps.
///
/// The implementation is vendored in the (tiny, dependency-free)
/// `gridsched-exec` crate because the pool needs two narrow `unsafe`
/// ingredients and every other workspace crate — this one included —
/// carries `#![forbid(unsafe_code)]`. Re-exported here so planning code
/// and tests can simply say `gridsched_core::pool::WorkerPool`.
pub mod pool {
    pub use gridsched_exec::WorkerPool;
}

pub mod allocate;
pub mod chains;
pub mod cost;
pub mod distribution;
pub mod gantt;
pub mod granularity;
pub mod method;
pub mod objective;
pub mod scratch;
pub mod session;
pub mod strategy;

pub use allocate::{AllocateError, AllocationContext};
pub use chains::{chain_decomposition, next_critical_work, ranked_maximal_paths, CriticalWork};
pub use cost::{task_cost, Cost};
pub use distribution::{CollisionRecord, Distribution, DistributionError, Placement};
pub use gantt::render_gantt;
pub use granularity::{coarsen, CoarsenedJob};
pub use method::{
    build_distribution, build_distribution_cloning, build_distribution_direct,
    build_distribution_in_domain, build_distribution_recovering, build_distribution_with_objective,
    reschedule, reschedule_with_deadline, reschedule_with_objective, ScheduleError,
    ScheduleRequest,
};
pub use objective::Objective;
pub use scratch::{EngineScratch, Scratch};
pub use session::PlanningSession;
pub use strategy::{Strategy, StrategyConfig, StrategyKind, SweepExecutor, FULL_SWEEP_SCENARIOS};
