//! Distributions: single supporting schedules.
//!
//! §3: `Distribution := <<Task 1/Allocation i, [Start 1, End 1]>, …,
//! <Task N/Allocation j, [Start N, End N]>>` — every task of the job mapped
//! to a node and a reserved wall-time window.

use std::fmt;

use gridsched_sim::time::{SimDuration, SimTime};

use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{NodeId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::perf::PerfGroup;
use gridsched_model::window::TimeWindow;

use crate::cost::Cost;

/// One task's allocation inside a [`Distribution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// The node it is co-allocated to.
    pub node: NodeId,
    /// Reserved wall-time window (input staging + execution).
    pub window: TimeWindow,
    /// The leading part of the window spent staging input data.
    pub stall: SimDuration,
    /// This placement's contribution to the job's cost function.
    pub cost: Cost,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} {} (stall {}, cost {})",
            self.task, self.node, self.window, self.stall, self.cost
        )
    }
}

/// A collision between critical works (§3): a task of a later critical work
/// wanted a slot already reserved by an earlier one on the same node, and
/// had to be reallocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionRecord {
    /// The task that had to move.
    pub task: TaskId,
    /// The contested node.
    pub node: NodeId,
    /// The contested node's performance group (Fig. 3b statistics).
    pub group: PerfGroup,
}

impl fmt::Display for CollisionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collision: {} on {} ({})",
            self.task, self.node, self.group
        )
    }
}

/// One supporting schedule of a strategy: a complete task→node/window
/// mapping for a given estimation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    scenario: EstimateScenario,
    /// Indexed by `TaskId::index()`.
    placements: Vec<Placement>,
    collisions: Vec<CollisionRecord>,
    cf: Cost,
    makespan: SimTime,
}

impl Distribution {
    /// Assembles a distribution from per-task placements.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty or not sorted by task id covering
    /// `0..n` densely — the scheduler must place every task exactly once.
    #[must_use]
    pub fn new(
        scenario: EstimateScenario,
        placements: Vec<Placement>,
        collisions: Vec<CollisionRecord>,
    ) -> Self {
        assert!(
            !placements.is_empty(),
            "a distribution places at least one task"
        );
        for (i, p) in placements.iter().enumerate() {
            assert_eq!(
                p.task.index(),
                i,
                "placements must be dense and ordered by task id"
            );
        }
        let cf = placements.iter().map(|p| p.cost).sum();
        let makespan = placements
            .iter()
            .map(|p| p.window.end())
            .max()
            .expect("non-empty placements");
        Distribution {
            scenario,
            placements,
            collisions,
            cf,
            makespan,
        }
    }

    /// The estimation scenario this schedule was built for.
    #[must_use]
    pub fn scenario(&self) -> EstimateScenario {
        self.scenario
    }

    /// All placements, in task-id order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn placement(&self, task: TaskId) -> &Placement {
        &self.placements[task.index()]
    }

    /// Collisions resolved while building this schedule.
    #[must_use]
    pub fn collisions(&self) -> &[CollisionRecord] {
        &self.collisions
    }

    /// The job's cost function value `CF = Σ ceil(V_i / T_i)` (§3).
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cf
    }

    /// When the last task's window ends.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Whether the schedule completes by `deadline`.
    #[must_use]
    pub fn meets_deadline(&self, deadline: SimTime) -> bool {
        self.makespan <= deadline
    }

    /// Total time tasks spend executing (wall windows minus stalls).
    #[must_use]
    pub fn total_execution_time(&self) -> SimDuration {
        self.placements
            .iter()
            .map(|p| p.window.duration() - p.stall)
            .sum()
    }

    /// Validates the schedule against its job and a resource pool:
    /// every task placed on an existing node it can run on, precedence
    /// respected (a consumer's window starts no earlier than each
    /// producer's window end), and no two placements of this job overlap on
    /// the same node.
    ///
    /// Returns the first violation found, or `Ok(())`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError`] describing the violation.
    pub fn validate(&self, job: &Job, pool: &ResourcePool) -> Result<(), DistributionError> {
        if self.placements.len() != job.task_count() {
            return Err(DistributionError::WrongTaskCount {
                expected: job.task_count(),
                actual: self.placements.len(),
            });
        }
        for p in &self.placements {
            if p.node.index() >= pool.len() {
                return Err(DistributionError::UnknownNode(p.node));
            }
            let perf = pool.node(p.node).perf();
            if !job.task(p.task).runs_on(perf) {
                return Err(DistributionError::NodeTooSlow {
                    task: p.task,
                    node: p.node,
                });
            }
        }
        for e in job.edges() {
            let from = self.placement(e.from());
            let to = self.placement(e.to());
            if to.window.start() < from.window.end() {
                return Err(DistributionError::PrecedenceViolated {
                    from: e.from(),
                    to: e.to(),
                });
            }
        }
        for (i, a) in self.placements.iter().enumerate() {
            for b in &self.placements[i + 1..] {
                if a.node == b.node && a.window.overlaps(b.window) {
                    return Err(DistributionError::SelfOverlap {
                        first: a.task,
                        second: b.task,
                        node: a.node,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Distribution[{} tasks, CF={}, makespan {}, scenario {}]",
            self.placements.len(),
            self.cf,
            self.makespan,
            self.scenario
        )
    }
}

/// Violations detected by [`Distribution::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionError {
    /// Placement count differs from the job's task count.
    WrongTaskCount {
        /// Tasks in the job.
        expected: usize,
        /// Placements in the distribution.
        actual: usize,
    },
    /// A placement references a node outside the pool.
    UnknownNode(NodeId),
    /// A task was placed on a node below its minimum performance.
    NodeTooSlow {
        /// The task.
        task: TaskId,
        /// The too-slow node.
        node: NodeId,
    },
    /// A consumer starts before its producer ends.
    PrecedenceViolated {
        /// Producer task.
        from: TaskId,
        /// Consumer task.
        to: TaskId,
    },
    /// Two placements of the same job overlap on one node.
    SelfOverlap {
        /// Earlier task id.
        first: TaskId,
        /// Later task id.
        second: TaskId,
        /// The shared node.
        node: NodeId,
    },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::WrongTaskCount { expected, actual } => {
                write!(f, "distribution places {actual} tasks, job has {expected}")
            }
            DistributionError::UnknownNode(n) => write!(f, "placement on unknown node {n}"),
            DistributionError::NodeTooSlow { task, node } => {
                write!(f, "task {task} placed on too-slow node {node}")
            }
            DistributionError::PrecedenceViolated { from, to } => {
                write!(f, "task {to} starts before its producer {from} ends")
            }
            DistributionError::SelfOverlap {
                first,
                second,
                node,
            } => write!(f, "tasks {first} and {second} overlap on node {node}"),
        }
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::pipeline_job;
    use gridsched_model::ids::{DomainId, JobId};
    use gridsched_model::perf::Perf;

    fn w(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_ticks(a), SimTime::from_ticks(b)).unwrap()
    }

    fn placement(task: u32, node: u32, a: u64, b: u64, cost: Cost) -> Placement {
        Placement {
            task: TaskId::new(task),
            node: NodeId::new(node),
            window: w(a, b),
            stall: SimDuration::ZERO,
            cost,
        }
    }

    fn pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::new(0.5).unwrap());
        pool
    }

    #[test]
    fn aggregates_cost_and_makespan() {
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 0, 0, 2, 10), placement(1, 1, 3, 9, 4)],
            Vec::new(),
        );
        assert_eq!(d.cost(), 14);
        assert_eq!(d.makespan(), SimTime::from_ticks(9));
        assert!(d.meets_deadline(SimTime::from_ticks(9)));
        assert!(!d.meets_deadline(SimTime::from_ticks(8)));
    }

    #[test]
    fn validate_accepts_good_schedule() {
        let job = pipeline_job(JobId::new(0), &[20.0, 10.0], SimDuration::from_ticks(50));
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 0, 0, 2, 10), placement(1, 1, 3, 6, 4)],
            Vec::new(),
        );
        assert_eq!(d.validate(&job, &pool()), Ok(()));
    }

    #[test]
    fn validate_catches_precedence_violation() {
        let job = pipeline_job(JobId::new(0), &[20.0, 10.0], SimDuration::from_ticks(50));
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 0, 2, 5, 10), placement(1, 1, 1, 4, 4)],
            Vec::new(),
        );
        assert_eq!(
            d.validate(&job, &pool()),
            Err(DistributionError::PrecedenceViolated {
                from: TaskId::new(0),
                to: TaskId::new(1)
            })
        );
    }

    #[test]
    fn validate_catches_self_overlap() {
        // Two independent tasks on the same node at the same time.
        let mut b = gridsched_model::job::JobBuilder::new();
        b.add_task(gridsched_model::volume::Volume::new(10.0));
        b.add_task(gridsched_model::volume::Volume::new(10.0));
        let job = b.build(JobId::new(0)).unwrap();
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 0, 0, 3, 4), placement(1, 0, 2, 5, 4)],
            Vec::new(),
        );
        assert_eq!(
            d.validate(&job, &pool()),
            Err(DistributionError::SelfOverlap {
                first: TaskId::new(0),
                second: TaskId::new(1),
                node: NodeId::new(0)
            })
        );
    }

    #[test]
    fn validate_catches_unknown_node_and_count() {
        let job = pipeline_job(JobId::new(0), &[20.0, 10.0], SimDuration::from_ticks(50));
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 7, 0, 2, 10), placement(1, 0, 3, 6, 4)],
            Vec::new(),
        );
        assert_eq!(
            d.validate(&job, &pool()),
            Err(DistributionError::UnknownNode(NodeId::new(7)))
        );
        let short = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 0, 0, 2, 10)],
            Vec::new(),
        );
        assert!(matches!(
            short.validate(&job, &pool()),
            Err(DistributionError::WrongTaskCount { .. })
        ));
    }

    #[test]
    fn validate_catches_too_slow_node() {
        let mut b = gridsched_model::job::JobBuilder::new();
        b.add_task_with(
            gridsched_model::volume::Volume::new(10.0),
            Some(Perf::new(0.9).unwrap()),
        );
        let job = b.build(JobId::new(0)).unwrap();
        let d = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(0, 1, 0, 2, 5)],
            Vec::new(),
        );
        assert_eq!(
            d.validate(&job, &pool()),
            Err(DistributionError::NodeTooSlow {
                task: TaskId::new(0),
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_placements_rejected() {
        let _ = Distribution::new(
            EstimateScenario::BEST,
            vec![placement(1, 0, 0, 2, 10)],
            Vec::new(),
        );
    }

    #[test]
    fn execution_time_excludes_stall() {
        let mut p = placement(0, 0, 0, 5, 4);
        p.stall = SimDuration::from_ticks(2);
        let d = Distribution::new(EstimateScenario::BEST, vec![p], Vec::new());
        assert_eq!(d.total_execution_time().ticks(), 3);
    }
}
