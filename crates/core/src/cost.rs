//! The paper's cost function.
//!
//! §3 defines a job's execution cost as `CF = Σ V_ij / T_i` over its tasks,
//! "where `V_ij` is the relative computation volume, and `T_i` is the real
//! load time of processor node `j` by task `i` (rounded to nearest
//! not-smaller integer)". `T_i` is the node's *reserved wall time* for the
//! task — input-data staging plus execution — so occupying a fast node
//! briefly costs more quota units than occupying a slow node for long:
//! "user should pay additional cost in order to use more powerful resource
//! or to start the task faster".

use gridsched_sim::time::SimDuration;

use gridsched_model::volume::Volume;

/// Cost, in the virtual organization's conventional quota units.
pub type Cost = u64;

/// Cost of loading a node with a task of `volume` for `wall_time`:
/// `ceil(V / T)`.
///
/// # Panics
///
/// Panics if `wall_time` is zero — a task always occupies its node for at
/// least one tick.
#[must_use]
pub fn task_cost(volume: Volume, wall_time: SimDuration) -> Cost {
    assert!(
        !wall_time.is_zero(),
        "task wall time must be positive for cost evaluation"
    );
    let ratio = volume.units() / wall_time.ticks() as f64;
    (ratio - 1e-9).ceil().max(0.0) as Cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: u64) -> SimDuration {
        SimDuration::from_ticks(x)
    }

    #[test]
    fn fig2_distribution2_task_costs() {
        // Fig. 2, Distribution 2: P1/1, P2/1, P3/3, P4/3, P5/4, P6/1 with
        // wall times equal to the type-j estimates.
        assert_eq!(task_cost(Volume::new(20.0), d(2)), 10); // P1 on type 1
        assert_eq!(task_cost(Volume::new(30.0), d(3)), 10); // P2 on type 1
        assert_eq!(task_cost(Volume::new(10.0), d(3)), 4); // P3 on type 3
        assert_eq!(task_cost(Volume::new(20.0), d(6)), 4); // P4 on type 3
        assert_eq!(task_cost(Volume::new(10.0), d(4)), 3); // P5 on type 4
        assert_eq!(task_cost(Volume::new(20.0), d(2)), 10); // P6 on type 1
    }

    #[test]
    fn cost_decreases_with_longer_occupation() {
        let v = Volume::new(20.0);
        assert!(task_cost(v, d(2)) > task_cost(v, d(4)));
        assert!(task_cost(v, d(4)) > task_cost(v, d(8)));
    }

    #[test]
    fn exact_division_does_not_round_up() {
        assert_eq!(task_cost(Volume::new(20.0), d(4)), 5);
        assert_eq!(task_cost(Volume::new(20.0), d(3)), 7); // 6.67 -> 7
    }

    #[test]
    fn zero_volume_is_free() {
        assert_eq!(task_cost(Volume::ZERO, d(5)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_wall_time_rejected() {
        let _ = task_cost(Volume::new(1.0), SimDuration::ZERO);
    }
}
