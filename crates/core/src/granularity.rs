//! Computation granularity (fine vs coarse grain).
//!
//! §4 separates strategies "with fine-grain computations" (S1, S2: the job
//! keeps its many small tasks and pays for their data exchanges) from
//! "coarse-grain computations" (S3: the computation is decomposed into
//! fewer, larger units with minimal exchange). Coarsening merges every
//! maximal *linear* segment of the information graph — a run of tasks with
//! no fan-in/fan-out between them — into a single task whose volume is the
//! sum of its parts, removing the internal transfer arcs entirely.

use gridsched_model::ids::{JobId, TaskId};
use gridsched_model::job::{Job, JobBuilder};
use gridsched_model::perf::Perf;
use gridsched_model::volume::Volume;

/// A coarsened job plus the task mapping back to the original.
#[derive(Debug, Clone)]
pub struct CoarsenedJob {
    /// The merged job (same id, deadline and release as the original).
    pub job: Job,
    /// `mapping[original_task.index()]` = task in the coarsened job.
    pub mapping: Vec<TaskId>,
}

/// Merges maximal linear segments of `job` into single tasks.
///
/// Tasks `a → b` merge when `a` has exactly one outgoing arc, `b` exactly
/// one incoming arc, and that arc connects them. Volumes add; the stricter
/// of the two minimum-performance requirements wins; the internal arc
/// disappears. Arcs between different groups are kept (parallel arcs
/// between the same pair of groups are combined, volumes summed).
///
/// # Examples
///
/// ```
/// use gridsched_core::granularity::coarsen;
/// use gridsched_model::fixtures::pipeline_job;
/// use gridsched_model::ids::JobId;
/// use gridsched_sim::time::SimDuration;
///
/// let job = pipeline_job(JobId::new(0), &[10.0, 20.0, 30.0], SimDuration::from_ticks(50));
/// let coarse = coarsen(&job);
/// assert_eq!(coarse.job.task_count(), 1); // the whole pipeline fuses
/// ```
#[must_use]
pub fn coarsen(job: &Job) -> CoarsenedJob {
    let n = job.task_count();
    // group[i] = group index of original task i.
    let mut group = vec![usize::MAX; n];
    let mut groups: Vec<Vec<TaskId>> = Vec::new();
    for &t in job.topo_order() {
        if group[t.index()] != usize::MAX {
            continue;
        }
        // `t` starts a new group; absorb a linear run downstream.
        let gi = groups.len();
        let mut run = vec![t];
        group[t.index()] = gi;
        let mut current = t;
        loop {
            let mut outs = job.outgoing(current);
            let (Some(edge), None) = (outs.next(), outs.next()) else {
                break;
            };
            let next = edge.to();
            if job.predecessors(next).count() != 1 || group[next.index()] != usize::MAX {
                break;
            }
            group[next.index()] = gi;
            run.push(next);
            current = next;
        }
        groups.push(run);
    }

    let mut builder = JobBuilder::new();
    for members in &groups {
        let volume: Volume = members.iter().map(|&t| job.task(t).volume()).sum();
        let min_perf: Option<Perf> = members.iter().filter_map(|&t| job.task(t).min_perf()).max();
        builder.add_task_with(volume, min_perf);
    }
    // Cross-group arcs, with parallel arcs combined.
    let mut combined: std::collections::BTreeMap<(usize, usize), Volume> =
        std::collections::BTreeMap::new();
    for e in job.edges() {
        let (gf, gt) = (group[e.from().index()], group[e.to().index()]);
        if gf != gt {
            let slot = combined.entry((gf, gt)).or_insert(Volume::ZERO);
            *slot = *slot + e.volume();
        }
    }
    for ((gf, gt), volume) in combined {
        builder.add_edge(TaskId::new(gf as u32), TaskId::new(gt as u32), volume);
    }
    builder.deadline(job.deadline());
    builder.release_at(job.release());
    let coarse = builder
        .build(JobId::new(job.id().raw()))
        .expect("coarsening a valid DAG yields a valid DAG");
    CoarsenedJob {
        job: coarse,
        mapping: group.into_iter().map(|g| TaskId::new(g as u32)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::{fig2_job, pipeline_job};
    use gridsched_sim::time::SimDuration;

    #[test]
    fn pipeline_fuses_to_one_task() {
        let job = pipeline_job(
            JobId::new(3),
            &[10.0, 20.0, 30.0],
            SimDuration::from_ticks(50),
        );
        let c = coarsen(&job);
        assert_eq!(c.job.task_count(), 1);
        assert_eq!(c.job.edges().len(), 0);
        assert_eq!(c.job.task(TaskId::new(0)).volume(), Volume::new(60.0));
        assert_eq!(c.mapping, vec![TaskId::new(0); 3]);
        assert_eq!(c.job.deadline(), job.deadline());
        assert_eq!(c.job.id(), job.id());
    }

    #[test]
    fn fig2_fork_join_is_not_merged() {
        // Every task of the Fig. 2 job sits at a fan-in or fan-out, so
        // coarsening changes nothing structurally.
        let job = fig2_job();
        let c = coarsen(&job);
        assert_eq!(c.job.task_count(), 6);
        assert_eq!(c.job.edges().len(), 8);
        assert_eq!(c.job.total_volume(), job.total_volume());
    }

    #[test]
    fn diamond_with_linear_arms_merges_arms() {
        // A -> (B1 -> B2) -> C and A -> D -> C: the B1-B2 run fuses.
        let v = Volume::new;
        let mut b = JobBuilder::new();
        let a = b.add_task(v(10.0));
        let b1 = b.add_task(v(10.0));
        let b2 = b.add_task(v(10.0));
        let d = b.add_task(v(10.0));
        let c = b.add_task(v(10.0));
        b.add_edge(a, b1, v(1.0));
        b.add_edge(b1, b2, v(1.0));
        b.add_edge(b2, c, v(1.0));
        b.add_edge(a, d, v(1.0));
        b.add_edge(d, c, v(1.0));
        b.deadline(SimDuration::from_ticks(100));
        let job = b.build(JobId::new(0)).unwrap();
        let coarse = coarsen(&job);
        assert_eq!(coarse.job.task_count(), 4);
        assert_eq!(coarse.job.edges().len(), 4);
        // Total volume preserved.
        assert_eq!(coarse.job.total_volume(), job.total_volume());
    }

    #[test]
    fn volume_is_always_preserved() {
        let job = fig2_job();
        assert_eq!(coarsen(&job).job.total_volume(), job.total_volume());
        let pipe = pipeline_job(JobId::new(1), &[5.0, 5.0], SimDuration::from_ticks(10));
        assert_eq!(coarsen(&pipe).job.total_volume(), pipe.total_volume());
    }

    #[test]
    fn coarse_job_has_no_fewer_constraints() {
        // Min-perf requirements survive merging (strictest wins).
        let mut b = JobBuilder::new();
        let a = b.add_task_with(Volume::new(10.0), Some(Perf::new(0.5).unwrap()));
        let c = b.add_task_with(Volume::new(10.0), Some(Perf::new(0.9).unwrap()));
        b.add_edge(a, c, Volume::new(1.0));
        b.deadline(SimDuration::from_ticks(100));
        let job = b.build(JobId::new(0)).unwrap();
        let coarse = coarsen(&job);
        assert_eq!(coarse.job.task_count(), 1);
        assert_eq!(
            coarse.job.task(TaskId::new(0)).min_perf(),
            Some(Perf::new(0.9).unwrap())
        );
    }
}
