//! Dynamic-programming co-allocation of one critical work.
//!
//! §2: "The strategy is built by using methods of dynamic programming in a
//! way that allows optimizing scheduling and resource allocation for a set
//! of tasks". For one critical work (a chain of tasks) we run a Pareto
//! dynamic program over `(chain position, candidate node)`:
//! each state keeps the non-dominated `(finish time, accumulated cost)`
//! frontier, so the final choice can minimize the paper's cost function
//! `CF` subject to the job's deadline.
//!
//! Constraints honoured per task:
//!
//! - node availability windows (the local timetables' free slots);
//! - precedence against *already placed* tasks: placed producers set the
//!   earliest start and the input-staging stall, placed consumers bound the
//!   latest finish (minus the transfer back);
//! - the job deadline, tightened by an optimistic estimate of the work
//!   remaining downstream of each task.

use std::collections::HashMap;
use std::fmt;

use gridsched_sim::time::{SimDuration, SimTime};

use gridsched_data::policy::DataPolicy;
use gridsched_model::availability::{Availability, ProbeRequest};
use gridsched_model::estimate::EstimateScenario;
use gridsched_model::ids::{NodeId, TaskId};
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;
use gridsched_model::window::TimeWindow;

use crate::cost::{task_cost, Cost};
use crate::distribution::Placement;

/// Shared inputs of one scheduling run.
#[derive(Debug)]
pub struct AllocationContext<'a> {
    /// The compound job being scheduled.
    pub job: &'a Job,
    /// The virtual organization's nodes.
    pub pool: &'a ResourcePool,
    /// Data-access policy (decides staging delays).
    pub policy: &'a DataPolicy,
    /// Estimation scenario (duration multiplier).
    pub scenario: EstimateScenario,
    /// Earliest instant any task may start.
    pub release: SimTime,
    /// Absolute completion deadline.
    pub deadline: SimTime,
    /// Restrict placement to one domain's nodes (Fig. 1: a job manager
    /// controls a single domain). `None` allocates VO-wide.
    pub domain: Option<gridsched_model::ids::DomainId>,
    /// Optimization criterion for picking among Pareto-optimal schedules.
    pub objective: crate::objective::Objective,
}

impl AllocationContext<'_> {
    /// Optimistic remaining work downstream of each task: longest path of
    /// scenario-scaled durations on the fastest node class, zero transfer.
    /// Used to tighten per-task finish bounds under the job deadline.
    ///
    /// Hot paths should prefer [`Self::remaining_optimistic_into`] (or the
    /// [`AllocScratch`] pass machinery, which computes this once per pass);
    /// this wrapper allocates a fresh vector per call and is kept for tests
    /// and one-shot callers.
    #[must_use]
    pub fn remaining_optimistic(&self) -> Vec<SimDuration> {
        let mut rem = Vec::new();
        self.remaining_optimistic_into(&mut rem);
        rem
    }

    /// Allocation-free variant of [`Self::remaining_optimistic`]: fills
    /// `rem` (cleared first) in place, reusing its capacity.
    pub fn remaining_optimistic_into(&self, rem: &mut Vec<SimDuration>) {
        let fastest = self.pool.fastest_perf();
        let n = self.job.task_count();
        rem.clear();
        rem.resize(n, SimDuration::ZERO);
        for &t in self.job.topo_order().iter().rev() {
            let mut best = SimDuration::ZERO;
            for e in self.job.outgoing(t) {
                let succ = e.to();
                let candidate =
                    self.scenario.duration(self.job.task(succ), fastest) + rem[succ.index()];
                if candidate > best {
                    best = candidate;
                }
            }
            rem[t.index()] = best;
        }
    }
}

/// Failure to allocate a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocateError {
    /// The first task for which no feasible placement exists.
    pub task: TaskId,
}

impl fmt::Display for AllocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no feasible placement for task {}", self.task)
    }
}

impl std::error::Error for AllocateError {}

#[derive(Debug, Clone, Copy)]
struct State {
    start: SimTime,
    finish: SimTime,
    stall: SimDuration,
    cost: Cost,
    /// `(node index at previous position, state index in its frontier)`.
    parent: Option<(usize, usize)>,
}

/// Reusable buffers for the co-allocation dynamic program.
///
/// One scheduling pass allocates several chains against the same
/// [`AllocationContext`]; the downstream-slack table (`rem`) and the node
/// list are invariant across those chains, and the Pareto `frontiers`
/// triple-nested vector is by far the hottest allocation in the whole
/// planner. An `AllocScratch` computes the invariants once per pass
/// ([`Self::begin_pass`]) and recycles the frontier levels across chains
/// so steady-state planning performs no per-chain heap allocation.
#[derive(Debug, Default)]
pub struct AllocScratch {
    rem: Vec<SimDuration>,
    nodes: Vec<NodeId>,
    /// `frontiers[position][node index] -> Pareto states`. Levels beyond
    /// the current chain length are stale leftovers from longer chains and
    /// are ignored.
    frontiers: Vec<Vec<Vec<State>>>,
    /// Chain-head probes gathered per eligible node, emitted in ascending
    /// node order so [`Availability::earliest_fit_batch`] may fan them out
    /// across worker threads.
    probe_requests: Vec<ProbeRequest>,
    /// `(node index, stall, cost)` alongside each gathered probe.
    probe_meta: Vec<(usize, SimDuration, Cost)>,
    probe_results: Vec<Option<SimTime>>,
}

impl AllocScratch {
    /// Prepares the pass-invariant tables (`rem`, `nodes`) for `ctx`.
    ///
    /// Must be called once before the first [`allocate_chain_into`] of a
    /// pass and again whenever the context changes (different scenario,
    /// deadline, pool, ...).
    pub fn begin_pass(&mut self, ctx: &AllocationContext<'_>) {
        ctx.remaining_optimistic_into(&mut self.rem);
        self.nodes.clear();
        self.nodes.extend(ctx.pool.nodes().map(|n| n.id()));
    }
}

/// Allocates `chain` onto `availability` (any [`Availability`] view —
/// a planning-session [`gridsched_model::availability::TimetableOverlay`]
/// or materialized `Vec<Timetable>` clones), minimizing accumulated cost
/// subject to the deadline.
///
/// `placed` holds placements committed by earlier critical works of the
/// same job; their times constrain this chain.
///
/// # Errors
///
/// Returns [`AllocateError`] naming the first chain task that cannot be
/// placed feasibly.
///
/// # Panics
///
/// Panics if `chain` is empty or `availability.node_count() != pool.len()`.
///
/// Hot paths should prefer [`allocate_chain_into`], which reuses a
/// caller-owned [`AllocScratch`] and output vector; this wrapper allocates
/// fresh ones per call and is kept for tests and one-shot callers.
pub fn allocate_chain<A: Availability>(
    ctx: &AllocationContext<'_>,
    chain: &[TaskId],
    placed: &HashMap<TaskId, Placement>,
    availability: &A,
) -> Result<Vec<Placement>, AllocateError> {
    let mut scratch = AllocScratch::default();
    scratch.begin_pass(ctx);
    let mut out = Vec::new();
    allocate_chain_into(ctx, chain, placed, availability, &mut scratch, &mut out)?;
    Ok(out)
}

/// Allocation-free variant of [`allocate_chain`].
///
/// Fills `out` (cleared first) with the chain's placements, reusing the DP
/// buffers in `scratch`. [`AllocScratch::begin_pass`] must have been called
/// for this `ctx` beforehand. Produces bit-identical results to the
/// allocating wrapper.
///
/// # Errors
///
/// Returns [`AllocateError`] naming the first chain task that cannot be
/// placed feasibly.
///
/// # Panics
///
/// Panics if `chain` is empty or `availability.node_count() != pool.len()`.
pub fn allocate_chain_into<A: Availability>(
    ctx: &AllocationContext<'_>,
    chain: &[TaskId],
    placed: &HashMap<TaskId, Placement>,
    availability: &A,
    scratch: &mut AllocScratch,
    out: &mut Vec<Placement>,
) -> Result<(), AllocateError> {
    assert!(!chain.is_empty(), "cannot allocate an empty chain");
    assert_eq!(
        availability.node_count(),
        ctx.pool.len(),
        "availability view must cover every node"
    );
    out.clear();
    let AllocScratch {
        rem,
        nodes,
        frontiers,
        probe_requests,
        probe_meta,
        probe_results,
    } = scratch;
    let rem: &[SimDuration] = rem;
    let nodes: &[NodeId] = nodes;
    // Recycle frontier levels: make sure there are enough, clear the ones
    // this chain will use (keeping inner capacity), leave the rest stale.
    if frontiers.len() < chain.len() {
        frontiers.resize_with(chain.len(), Vec::new);
    }
    for level in frontiers.iter_mut().take(chain.len()) {
        for states in level.iter_mut() {
            states.clear();
        }
        if level.len() != nodes.len() {
            level.resize_with(nodes.len(), Vec::new);
        }
    }

    for (pos, &task_id) in chain.iter().enumerate() {
        let task = ctx.job.task(task_id);
        // Split so the previous level stays readable while this one fills.
        let (done, rest) = frontiers.split_at_mut(pos);
        let level = &mut rest[0];
        let prev_level = done.last();
        if pos == 0 {
            probe_requests.clear();
            probe_meta.clear();
        }
        for (ni, &node_id) in nodes.iter().enumerate() {
            if let Some(domain) = ctx.domain {
                if ctx.pool.node(node_id).domain() != domain {
                    continue;
                }
            }
            let perf = ctx.pool.node(node_id).perf();
            if !task.runs_on(perf) {
                continue;
            }
            let exec = ctx.scenario.duration(task, perf);
            // Constraints from placed neighbours, independent of the DP
            // predecessor state.
            let mut ready_placed = ctx.release;
            let mut stall_placed = SimDuration::ZERO;
            for e in ctx.job.incoming(task_id) {
                if let Some(p) = placed.get(&e.from()) {
                    ready_placed = ready_placed.max_of(p.window.end());
                    let d = ctx
                        .policy
                        .consumer_delay(e.volume(), p.node, node_id, ctx.pool);
                    if d > stall_placed {
                        stall_placed = d;
                    }
                }
            }
            let mut finish_bound = saturating_deadline(ctx.deadline, rem[task_id.index()]);
            for e in ctx.job.outgoing(task_id) {
                if let Some(p) = placed.get(&e.to()) {
                    let d = ctx
                        .policy
                        .consumer_delay(e.volume(), node_id, p.node, ctx.pool);
                    let bound = saturating_deadline(p.window.start(), d);
                    if bound < finish_bound {
                        finish_bound = bound;
                    }
                }
            }
            if pos == 0 {
                // Gather the chain-head probe instead of fitting inline:
                // nodes iterate in ascending id order, so the batch meets
                // `earliest_fit_batch`'s strictly-ascending precondition
                // and is eligible for cross-node fan-out.
                let dur = stall_placed + exec;
                probe_requests.push(ProbeRequest {
                    node: node_id,
                    not_before: ready_placed,
                    duration: dur,
                    deadline: finish_bound,
                });
                probe_meta.push((ni, stall_placed, task_cost(task.volume(), dur)));
            } else {
                // The arc connecting the previous chain element to this one.
                let prev_task = chain[pos - 1];
                let chain_edge = ctx
                    .job
                    .incoming(task_id)
                    .find(|e| e.from() == prev_task)
                    .expect("consecutive chain tasks are connected");
                let prev_frontier = prev_level.expect("pos > 0 has a previous level");
                for (pni, prev_states) in prev_frontier.iter().enumerate() {
                    let prev_node = nodes[pni];
                    let chain_stall = ctx.policy.consumer_delay(
                        chain_edge.volume(),
                        prev_node,
                        node_id,
                        ctx.pool,
                    );
                    let stall = stall_placed.max(chain_stall);
                    let dur = stall + exec;
                    let step_cost = task_cost(task.volume(), dur);
                    for (si, prev) in prev_states.iter().enumerate() {
                        let ready = ready_placed.max_of(prev.finish);
                        if let Some(state) = fit_state(
                            availability,
                            node_id,
                            ready,
                            dur,
                            stall,
                            finish_bound,
                            prev.cost + step_cost,
                            Some((pni, si)),
                        ) {
                            level[ni].push(state);
                        }
                    }
                }
            }
        }
        if pos == 0 {
            // Resolve the gathered probes in one batch, then materialize
            // states in the same ascending node order the inline loop used.
            availability.earliest_fit_batch(probe_requests, probe_results);
            for ((req, &(ni, stall, cost)), start) in probe_requests
                .iter()
                .zip(probe_meta.iter())
                .zip(probe_results.iter())
            {
                if let Some(start) = *start {
                    level[ni].push(State {
                        start,
                        finish: start + req.duration,
                        stall,
                        cost,
                        parent: None,
                    });
                }
            }
        }
        for states in level.iter_mut() {
            prune_pareto(states);
        }
        if level.iter().all(Vec::is_empty) {
            return Err(AllocateError { task: task_id });
        }
    }

    // Pick the best final state under the objective (ties: smaller node
    // index, for determinism). A MinTime budget filters the frontier; if
    // nothing fits the budget the cheapest state is the fallback.
    let last = &frontiers[chain.len() - 1];
    let mut best: Option<(usize, usize)> = None;
    let mut cheapest: Option<(usize, usize)> = None;
    for (ni, states) in last.iter().enumerate() {
        for (si, s) in states.iter().enumerate() {
            let key = (s.finish.ticks(), s.cost);
            if ctx.objective.admits(s.cost) {
                let better = match best {
                    None => true,
                    Some((bni, bsi)) => {
                        let b = &last[bni][bsi];
                        let bkey = (b.finish.ticks(), b.cost);
                        ctx.objective.prefers(key, bkey) || (key == bkey && ni < bni)
                    }
                };
                if better {
                    best = Some((ni, si));
                }
            }
            let cheaper = match cheapest {
                None => true,
                Some((bni, bsi)) => {
                    let b = &last[bni][bsi];
                    (s.cost, s.finish, ni) < (b.cost, b.finish, bni)
                }
            };
            if cheaper {
                cheapest = Some((ni, si));
            }
        }
    }
    let (mut ni, mut si) = best.or(cheapest).expect("non-empty final frontier");

    // Backtrack into the caller's buffer.
    for pos in (0..chain.len()).rev() {
        let state = frontiers[pos][ni][si];
        let prev_cost = state
            .parent
            .map(|(pni, psi)| frontiers[pos - 1][pni][psi].cost)
            .unwrap_or(0);
        out.push(Placement {
            task: chain[pos],
            node: nodes[ni],
            window: TimeWindow::new(state.start, state.finish)
                .expect("placement windows are non-empty"),
            stall: state.stall,
            cost: state.cost - prev_cost,
        });
        if let Some((pni, psi)) = state.parent {
            ni = pni;
            si = psi;
        }
    }
    out.reverse();
    Ok(())
}

/// `deadline - slack`, clamped at the epoch.
fn saturating_deadline(deadline: SimTime, slack: SimDuration) -> SimTime {
    SimTime::from_ticks(deadline.ticks().saturating_sub(slack.ticks()))
}

#[allow(clippy::too_many_arguments)]
fn fit_state<A: Availability>(
    availability: &A,
    node: NodeId,
    ready: SimTime,
    duration: SimDuration,
    stall: SimDuration,
    finish_bound: SimTime,
    cost: Cost,
    parent: Option<(usize, usize)>,
) -> Option<State> {
    let start = availability.earliest_fit(node, ready, duration, finish_bound)?;
    Some(State {
        start,
        finish: start + duration,
        stall,
        cost,
        parent,
    })
}

/// Keeps only non-dominated `(finish, cost)` states, sorted by finish.
fn prune_pareto(states: &mut Vec<State>) {
    states.sort_by_key(|s| (s.finish, s.cost));
    let mut best_cost = Cost::MAX;
    states.retain(|s| {
        if s.cost < best_cost {
            best_cost = s.cost;
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::fixtures::pipeline_job;
    use gridsched_model::ids::{DomainId, JobId};
    use gridsched_model::perf::Perf;
    use gridsched_model::timetable::{ReservationOwner, Timetable};
    use gridsched_model::volume::Volume;

    fn pool_two_nodes() -> ResourcePool {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL); // N0 fast
        pool.add_node(DomainId::new(0), Perf::new(0.5).unwrap()); // N1 slow
        pool
    }

    fn ctx<'a>(
        job: &'a Job,
        pool: &'a ResourcePool,
        policy: &'a DataPolicy,
        deadline: u64,
    ) -> AllocationContext<'a> {
        AllocationContext {
            job,
            pool,
            policy,
            scenario: EstimateScenario::BEST,
            release: SimTime::ZERO,
            deadline: SimTime::from_ticks(deadline),
            domain: None,
            objective: crate::objective::Objective::MinCost,
        }
    }

    #[test]
    fn single_task_prefers_cheaper_slow_node_when_deadline_allows() {
        let job = pipeline_job(JobId::new(0), &[20.0], SimDuration::from_ticks(100));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 100);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let ps = allocate_chain(&c, &[TaskId::new(0)], &HashMap::new(), &tts).unwrap();
        // N1 (perf 0.5): dur 4, cost ceil(20/4)=5 < N0: dur 2, cost 10.
        assert_eq!(ps[0].node, NodeId::new(1));
        assert_eq!(ps[0].cost, 5);
        assert_eq!(ps[0].window.duration().ticks(), 4);
    }

    #[test]
    fn tight_deadline_forces_fast_node() {
        let job = pipeline_job(JobId::new(0), &[20.0], SimDuration::from_ticks(3));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 3);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let ps = allocate_chain(&c, &[TaskId::new(0)], &HashMap::new(), &tts).unwrap();
        assert_eq!(ps[0].node, NodeId::new(0));
        assert_eq!(ps[0].cost, 10);
    }

    #[test]
    fn impossible_deadline_reports_task() {
        let job = pipeline_job(JobId::new(0), &[20.0], SimDuration::from_ticks(1));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 1);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let err = allocate_chain(&c, &[TaskId::new(0)], &HashMap::new(), &tts).unwrap_err();
        assert_eq!(err.task, TaskId::new(0));
        assert!(err.to_string().contains("P0"));
    }

    #[test]
    fn chain_respects_precedence_and_transfers() {
        let job = pipeline_job(JobId::new(0), &[20.0, 20.0], SimDuration::from_ticks(100));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 100);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let chain = [TaskId::new(0), TaskId::new(1)];
        let ps = allocate_chain(&c, &chain, &HashMap::new(), &tts).unwrap();
        assert!(ps[1].window.start() >= ps[0].window.end());
        if ps[0].node != ps[1].node {
            // Cross-node hop pays a staging stall inside the second window.
            assert!(ps[1].stall.ticks() > 0);
        }
    }

    #[test]
    fn busy_timetable_delays_start() {
        let job = pipeline_job(JobId::new(0), &[20.0], SimDuration::from_ticks(10));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 10);
        let mut tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        // Block the slow node entirely and the fast node until t3.
        tts[1]
            .reserve(
                TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(10)).unwrap(),
                ReservationOwner::Background(0),
            )
            .unwrap();
        tts[0]
            .reserve(
                TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(3)).unwrap(),
                ReservationOwner::Background(1),
            )
            .unwrap();
        let ps = allocate_chain(&c, &[TaskId::new(0)], &HashMap::new(), &tts).unwrap();
        assert_eq!(ps[0].node, NodeId::new(0));
        assert_eq!(ps[0].window.start(), SimTime::from_ticks(3));
    }

    #[test]
    fn placed_predecessor_sets_ready_time_and_stall() {
        let job = pipeline_job(JobId::new(0), &[20.0, 20.0], SimDuration::from_ticks(100));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 100);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let mut placed = HashMap::new();
        placed.insert(
            TaskId::new(0),
            Placement {
                task: TaskId::new(0),
                node: NodeId::new(0),
                window: TimeWindow::new(SimTime::from_ticks(5), SimTime::from_ticks(7)).unwrap(),
                stall: SimDuration::ZERO,
                cost: 10,
            },
        );
        let ps = allocate_chain(&c, &[TaskId::new(1)], &placed, &tts).unwrap();
        assert!(ps[0].window.start() >= SimTime::from_ticks(7));
    }

    #[test]
    fn placed_successor_bounds_finish() {
        let job = pipeline_job(JobId::new(0), &[20.0, 20.0], SimDuration::from_ticks(100));
        let pool = pool_two_nodes();
        let policy = DataPolicy::remote_access();
        let c = ctx(&job, &pool, &policy, 100);
        let tts: Vec<Timetable> = (0..pool.len()).map(|_| Timetable::new()).collect();
        let mut placed = HashMap::new();
        // Successor starts at t4 on N0: producer must finish by then
        // (minus the transfer if cross-node).
        placed.insert(
            TaskId::new(1),
            Placement {
                task: TaskId::new(1),
                node: NodeId::new(0),
                window: TimeWindow::new(SimTime::from_ticks(4), SimTime::from_ticks(6)).unwrap(),
                stall: SimDuration::ZERO,
                cost: 10,
            },
        );
        let ps = allocate_chain(&c, &[TaskId::new(0)], &placed, &tts).unwrap();
        assert!(ps[0].window.end() <= SimTime::from_ticks(4));
        // Only the fast node can run 20 units in ≤4 ticks from t0 — well,
        // the slow node needs 4 ticks exactly, but then the cross-node
        // transfer bound bites. Verify feasibility was respected instead:
        let slack = if ps[0].node == NodeId::new(0) {
            SimDuration::ZERO
        } else {
            policy.consumer_delay(
                Volume::new(gridsched_model::fixtures::FIG2_EDGE_VOLUME),
                ps[0].node,
                NodeId::new(0),
                &pool,
            )
        };
        assert!(ps[0].window.end() + slack <= SimTime::from_ticks(4));
    }

    #[test]
    fn pareto_prune_keeps_tradeoff_frontier() {
        let mk = |finish: u64, cost: Cost| State {
            start: SimTime::ZERO,
            finish: SimTime::from_ticks(finish),
            stall: SimDuration::ZERO,
            cost,
            parent: None,
        };
        let mut states = vec![mk(10, 5), mk(5, 10), mk(7, 7), mk(12, 5), mk(6, 12)];
        prune_pareto(&mut states);
        let kept: Vec<(u64, Cost)> = states.iter().map(|s| (s.finish.ticks(), s.cost)).collect();
        // Sorted by finish, strictly decreasing cost: (5,10), (7,7), (10,5).
        assert_eq!(kept, vec![(5, 10), (7, 7), (10, 5)]);
    }
}
