//! Strategies: sets of supporting schedules.
//!
//! §3: "The strategy is a set of possible resource allocation and schedules
//! (distributions) for all N tasks in the job". §4 studies four strategy
//! types, distinguished by computation granularity, data policy and
//! estimate coverage:
//!
//! | type | granularity | data policy         | scenarios          |
//! |------|-------------|---------------------|--------------------|
//! | S1   | fine        | active replication  | full sweep         |
//! | S2   | fine        | remote data access  | full sweep         |
//! | S3   | coarse      | static data storage | full sweep         |
//! | MS1  | fine        | active replication  | best + worst only  |

use std::borrow::Cow;
use std::fmt;

use gridsched_exec::WorkerPool;
use gridsched_sim::time::SimTime;

use gridsched_data::policy::DataPolicy;
use gridsched_metrics::telemetry::{Counter, SpanId, Telemetry};
use gridsched_model::estimate::ScenarioSweep;
use gridsched_model::job::Job;
use gridsched_model::node::ResourcePool;

use crate::distribution::{CollisionRecord, Distribution};
use crate::granularity::coarsen;
use crate::method::{build_distribution_cloning, ScheduleError, ScheduleRequest};
use crate::session::PlanningSession;

/// Number of scenarios in the full sweeps of S1/S2/S3.
pub const FULL_SWEEP_SCENARIOS: usize = 4;

/// How a scenario sweep is executed.
///
/// All three executors are **bit-identical** in output: each scenario's
/// schedule depends only on the immutable session snapshot, and results are
/// always collected in sweep order regardless of completion order (the
/// determinism suite pins this three ways). They differ only in cost:
///
/// * [`Sequential`](SweepExecutor::Sequential) — one scenario after another
///   on the calling thread. The baseline, and what small sweeps resolve to.
/// * [`Scoped`](SweepExecutor::Scoped) — the legacy one-OS-thread-per-
///   scenario `std::thread::scope` sweep. Kept as a differential reference;
///   spawn/join churn makes it *slower* than sequential for ~500µs
///   scenarios.
/// * [`Pooled`](SweepExecutor::Pooled) — scenarios drained by a persistent
///   [`WorkerPool`] (see [`crate::pool`]), reused across sweeps and across
///   the whole campaign.
///
/// Small sweeps are not worth fanning out: `Pooled` resolves to
/// `Sequential` when the sweep has ≤ 2 scenarios or the machine offers no
/// parallelism (a zero-worker pool — [`WorkerPool::global`] has zero
/// workers exactly when `available_parallelism() == 1`). This fixes the
/// old regression where `Strategy::generate` spawned threads
/// unconditionally, even for MS1's two scenarios on a single core.
/// `Scoped` deliberately keeps spawning — it exists as a faithful
/// differential reference for what the pool replaced.
#[derive(Clone, Copy)]
pub enum SweepExecutor<'e> {
    /// Plan scenarios one after another on the calling thread.
    Sequential,
    /// Spawn one scoped OS thread per scenario (legacy reference path).
    Scoped,
    /// Drain scenarios through a persistent worker pool.
    Pooled(&'e WorkerPool),
}

impl SweepExecutor<'static> {
    /// The default executor: the process-wide persistent pool
    /// ([`WorkerPool::global`]), which resolves to a sequential sweep on
    /// single-core machines and for ≤ 2-scenario sweeps.
    #[must_use]
    pub fn auto() -> Self {
        SweepExecutor::Pooled(WorkerPool::global())
    }
}

/// A borrow-free name for a [`SweepExecutor`] choice, so configurations
/// (which are plain `Clone + PartialEq` data) can carry the executor
/// selection without holding a pool reference.
///
/// All three choices are bit-identical in observable behaviour — that is
/// the whole point of naming them: the chaos harness runs the same
/// campaign under every kind and asserts the trace fingerprints agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepExecutorKind {
    /// [`SweepExecutor::auto`]: the persistent global pool, with the
    /// small-sweep / single-core sequential fallback.
    #[default]
    Auto,
    /// [`SweepExecutor::Sequential`].
    Sequential,
    /// [`SweepExecutor::Scoped`] — the legacy thread-per-scenario sweep.
    Scoped,
}

impl SweepExecutorKind {
    /// Materializes the named executor.
    #[must_use]
    pub fn executor(self) -> SweepExecutor<'static> {
        match self {
            SweepExecutorKind::Auto => SweepExecutor::auto(),
            SweepExecutorKind::Sequential => SweepExecutor::Sequential,
            SweepExecutorKind::Scoped => SweepExecutor::Scoped,
        }
    }
}

impl<'e> SweepExecutor<'e> {
    /// Applies the small-sweep / no-parallelism fallback.
    fn resolve(self, scenario_count: usize) -> SweepExecutor<'e> {
        match self {
            SweepExecutor::Pooled(pool) if scenario_count <= 2 || pool.workers() == 0 => {
                SweepExecutor::Sequential
            }
            other => other,
        }
    }
}

/// The four strategy types of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Fine-grain computations, active data replication.
    S1,
    /// Fine-grain computations, remote data access.
    S2,
    /// Coarse-grain computations, static data storage.
    S3,
    /// S1 economized to best-/worst-case estimations only.
    Ms1,
}

impl StrategyKind {
    /// All kinds, in the paper's order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::S1,
        StrategyKind::S2,
        StrategyKind::S3,
        StrategyKind::Ms1,
    ];

    /// The paper's name for the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::S1 => "S1",
            StrategyKind::S2 => "S2",
            StrategyKind::S3 => "S3",
            StrategyKind::Ms1 => "MS1",
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully resolved strategy configuration.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    kind: StrategyKind,
    policy: DataPolicy,
    sweep: ScenarioSweep,
    coarse_grain: bool,
}

impl StrategyConfig {
    /// The standard configuration of a strategy kind against a pool.
    ///
    /// S3's static-storage policy stages through the pool's fastest node
    /// (ties towards the smaller id) — data services live on the strongest
    /// resource.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    #[must_use]
    pub fn for_kind(kind: StrategyKind, pool: &ResourcePool) -> Self {
        assert!(
            !pool.is_empty(),
            "cannot configure a strategy for an empty pool"
        );
        match kind {
            StrategyKind::S1 => StrategyConfig {
                kind,
                policy: DataPolicy::active_replication(),
                sweep: ScenarioSweep::full(FULL_SWEEP_SCENARIOS),
                coarse_grain: false,
            },
            StrategyKind::S2 => StrategyConfig {
                kind,
                policy: DataPolicy::remote_access(),
                sweep: ScenarioSweep::full(FULL_SWEEP_SCENARIOS),
                coarse_grain: false,
            },
            StrategyKind::S3 => {
                let storage = pool
                    .nodes()
                    .max_by(|a, b| a.perf().cmp(&b.perf()).then(b.id().cmp(&a.id())))
                    .expect("non-empty pool")
                    .id();
                StrategyConfig {
                    kind,
                    policy: DataPolicy::static_storage(storage),
                    sweep: ScenarioSweep::full(FULL_SWEEP_SCENARIOS),
                    coarse_grain: true,
                }
            }
            StrategyKind::Ms1 => StrategyConfig {
                kind,
                policy: DataPolicy::active_replication(),
                sweep: ScenarioSweep::best_worst(),
                coarse_grain: false,
            },
        }
    }

    /// The strategy kind.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// The data policy.
    #[must_use]
    pub fn policy(&self) -> &DataPolicy {
        &self.policy
    }

    /// The scenario sweep.
    #[must_use]
    pub fn sweep(&self) -> &ScenarioSweep {
        &self.sweep
    }

    /// Whether the job is coarsened before scheduling.
    #[must_use]
    pub fn coarse_grain(&self) -> bool {
        self.coarse_grain
    }

    /// Overrides the scenario sweep (for ablations).
    #[must_use]
    pub fn with_sweep(mut self, sweep: ScenarioSweep) -> Self {
        self.sweep = sweep;
        self
    }

    /// Overrides the data policy (for ablations).
    #[must_use]
    pub fn with_policy(mut self, policy: DataPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// A generated strategy: the supporting schedules that could be built, plus
/// the scenarios that admitted none.
#[derive(Debug, Clone)]
pub struct Strategy {
    kind: StrategyKind,
    config: StrategyConfig,
    /// The job the schedules refer to (coarsened for S3).
    job: Job,
    distributions: Vec<Distribution>,
    failures: Vec<ScheduleError>,
}

impl Strategy {
    /// Generates the strategy for `job` on `pool` under `config`, planning
    /// from `release`.
    ///
    /// One supporting schedule is attempted per scenario in the sweep;
    /// scenarios with no feasible schedule are recorded as failures (their
    /// collisions still count).
    ///
    /// All scenarios plan inside **one** [`PlanningSession`] (a single
    /// availability snapshot shared by reference) and are drained by the
    /// process-wide persistent [`WorkerPool`] ([`SweepExecutor::auto`]);
    /// the result is bit-identical to the sequential sweep
    /// ([`Strategy::generate_sequential`]) because each scenario's
    /// schedule depends only on the immutable snapshot and the results are
    /// collected in sweep order. Sweeps with ≤ 2 scenarios, and any sweep
    /// on a machine without parallelism, fall back to the sequential path
    /// instead of paying thread hand-off for sub-millisecond work.
    #[must_use]
    pub fn generate(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        Strategy::generate_with(job, pool, config, release, SweepExecutor::auto())
    }

    /// [`Strategy::generate`] with an explicit [`SweepExecutor`] — how the
    /// determinism suite cross-checks the pooled, scoped and sequential
    /// sweeps against each other (optionally on a caller-built
    /// [`WorkerPool`], so multi-worker pooling is exercised even on
    /// single-core machines).
    #[must_use]
    pub fn generate_with(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        executor: SweepExecutor<'_>,
    ) -> Strategy {
        Strategy::generate_prepared(
            Self::planning_job(job, config),
            pool,
            config,
            release,
            executor,
            &Telemetry::disabled(),
            None,
        )
    }

    /// [`Strategy::generate_with`] with a telemetry recorder attached.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn generate_with_instrumented(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        executor: SweepExecutor<'_>,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        Strategy::generate_prepared(
            Self::planning_job(job, config),
            pool,
            config,
            release,
            executor,
            telemetry,
            parent,
        )
    }

    /// The legacy spawn-per-scenario sweep on scoped OS threads, kept as a
    /// differential reference for the persistent-pool path (and for the
    /// `strategy_sweep` bench's historical "parallel" column).
    #[must_use]
    pub fn generate_scoped(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        Strategy::generate_with(job, pool, config, release, SweepExecutor::Scoped)
    }

    /// [`Strategy::generate`] with a telemetry recorder attached: the whole
    /// sweep runs under a `strategy_generation` span (parented under
    /// `parent`), each scenario under its own `scenario` span, and
    /// [`Counter::ScenariosPlanned`] / [`Counter::ScenariosFailed`] tally
    /// the sweep outcome. Schedules are bit-identical to
    /// [`Strategy::generate`].
    #[must_use]
    pub fn generate_instrumented(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        Strategy::generate_with_instrumented(
            job,
            pool,
            config,
            release,
            SweepExecutor::auto(),
            telemetry,
            parent,
        )
    }

    /// [`Strategy::generate`] taking the job by value — the metascheduler
    /// hand-off path, where the caller is done with the job and no clone
    /// is needed even for fine-grain strategies.
    #[must_use]
    pub fn generate_owned(
        job: Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        Strategy::generate_owned_inner(
            job,
            pool,
            config,
            release,
            SweepExecutor::auto(),
            &Telemetry::disabled(),
            None,
        )
    }

    /// [`Strategy::generate_owned`] with a telemetry recorder attached;
    /// `parallel` selects between the pooled sweep ([`SweepExecutor::auto`])
    /// and the sequential baseline (both bit-identical). This is the
    /// job-flow campaign's hand-off path.
    #[must_use]
    pub fn generate_owned_instrumented(
        job: Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        parallel: bool,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        let executor = if parallel {
            SweepExecutor::auto()
        } else {
            SweepExecutor::Sequential
        };
        Strategy::generate_owned_inner(job, pool, config, release, executor, telemetry, parent)
    }

    /// [`Strategy::generate_owned_instrumented`] generalized to any named
    /// executor — the hand-off path for callers that select the sweep
    /// executor by configuration (the flow campaign's
    /// `CampaignConfig::executor`, the chaos harness's executor axis).
    #[must_use]
    pub fn generate_owned_kind(
        job: Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        kind: SweepExecutorKind,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        Strategy::generate_owned_inner(
            job,
            pool,
            config,
            release,
            kind.executor(),
            telemetry,
            parent,
        )
    }

    /// [`Strategy::generate_owned`] with the scenario sweep forced
    /// sequential — the campaign-level determinism baseline
    /// (`CampaignConfig::sequential_planning` routes here).
    #[must_use]
    pub fn generate_owned_sequential(
        job: Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        Strategy::generate_owned_inner(
            job,
            pool,
            config,
            release,
            SweepExecutor::Sequential,
            &Telemetry::disabled(),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_owned_inner(
        job: Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        executor: SweepExecutor<'_>,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        let planning_job = if config.coarse_grain {
            Cow::Owned(coarsen(&job).job)
        } else {
            Cow::Owned(job)
        };
        Strategy::generate_prepared(
            planning_job,
            pool,
            config,
            release,
            executor,
            telemetry,
            parent,
        )
    }

    /// [`Strategy::generate`] with the scenario sweep forced sequential —
    /// the determinism baseline the parallel sweep is checked against.
    #[must_use]
    pub fn generate_sequential(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        Strategy::generate_with(job, pool, config, release, SweepExecutor::Sequential)
    }

    /// The pre-refactor baseline sweep: sequential, with every scenario
    /// materializing two full `Vec<Timetable>` clones of the pool
    /// ([`build_distribution_cloning`]) instead of sharing one snapshot.
    ///
    /// Kept for the determinism suite and the `strategy_sweep` bench; it
    /// must produce bit-identical strategies to [`Strategy::generate`].
    #[must_use]
    pub fn generate_cloning(
        job: &Job,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
    ) -> Strategy {
        let planning_job = Self::planning_job(job, config);
        let mut distributions = Vec::new();
        let mut failures = Vec::new();
        for &scenario in config.sweep.scenarios() {
            let req = ScheduleRequest {
                job: &planning_job,
                pool,
                policy: &config.policy,
                scenario,
                release,
            };
            match build_distribution_cloning(&req) {
                Ok(d) => distributions.push(d),
                Err(e) => failures.push(e),
            }
        }
        Strategy {
            kind: config.kind,
            config: config.clone(),
            job: planning_job.into_owned(),
            distributions,
            failures,
        }
    }

    /// The job actually planned: borrowed as-is for fine-grain
    /// strategies, an owned coarsened copy for S3. Only the coarse path
    /// pays an allocation.
    fn planning_job<'j>(job: &'j Job, config: &StrategyConfig) -> Cow<'j, Job> {
        if config.coarse_grain {
            Cow::Owned(coarsen(job).job)
        } else {
            Cow::Borrowed(job)
        }
    }

    /// Sweeps the scenarios of `config` over one planning session.
    ///
    /// `planning_job` must already be in planning granularity (coarsened
    /// for S3) — this is what lets [`Strategy::refresh`] reuse its stored
    /// job without re-coarsening. Whatever the executor, results are
    /// collected in sweep order, so output is bit-identical across all of
    /// them.
    #[allow(clippy::too_many_arguments)]
    fn generate_prepared(
        planning_job: Cow<'_, Job>,
        pool: &ResourcePool,
        config: &StrategyConfig,
        release: SimTime,
        executor: SweepExecutor<'_>,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        let sweep_span = telemetry.span_under("strategy_generation", parent);
        let sweep_id = sweep_span.id();
        let session = PlanningSession::open_instrumented(pool, telemetry, sweep_id);
        let job: &Job = &planning_job;
        let plan = |scenario| {
            // Each scenario gets its own span; its critical-works passes
            // nest under it via the scoped session view. The view shares
            // the snapshot by reference, so parallel determinism holds.
            let scenario_span = telemetry.span_under("scenario", sweep_id);
            session
                .scoped_under(scenario_span.id())
                .build_distribution(&ScheduleRequest {
                    job,
                    pool,
                    policy: &config.policy,
                    scenario,
                    release,
                })
        };
        let scenarios = config.sweep.scenarios();
        let results: Vec<Result<Distribution, ScheduleError>> = match executor
            .resolve(scenarios.len())
        {
            SweepExecutor::Sequential => scenarios.iter().map(|&scenario| plan(scenario)).collect(),
            SweepExecutor::Pooled(worker_pool) => {
                // Persistent workers drain the sweep (the calling
                // thread participates); results land in slots addressed
                // by sweep index, so collection order is sweep order
                // regardless of completion order.
                telemetry.incr(Counter::PooledSweeps);
                worker_pool.scatter(scenarios.len(), |i| plan(scenarios[i]))
            }
            SweepExecutor::Scoped => {
                // Legacy path: first scenario on the current thread,
                // the rest on freshly spawned scoped threads.
                std::thread::scope(|s| {
                    let plan = &plan;
                    let handles: Vec<_> = scenarios[1..]
                        .iter()
                        .map(|&scenario| s.spawn(move || plan(scenario)))
                        .collect();
                    let first = plan(scenarios[0]);
                    std::iter::once(first)
                        .chain(
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("scenario planning never panics")),
                        )
                        .collect()
                })
            }
        };
        let mut distributions = Vec::new();
        let mut failures = Vec::new();
        for result in results {
            match result {
                Ok(d) => distributions.push(d),
                Err(e) => failures.push(e),
            }
        }
        telemetry.add(Counter::ScenariosPlanned, distributions.len() as u64);
        telemetry.add(Counter::ScenariosFailed, failures.len() as u64);
        Strategy {
            kind: config.kind,
            config: config.clone(),
            job: planning_job.into_owned(),
            distributions,
            failures,
        }
    }

    /// Regenerates the strategy against the pool's *current* availability,
    /// planning from `now` — the "supporting and updating strategies based
    /// on cooperation with local managers" of §2. The original
    /// configuration (policy, sweep, granularity) is reused.
    ///
    /// The stored planning job is reused **as-is**: for S3 it is already
    /// coarsened, and running it through [`Strategy::generate`] (which
    /// coarsens again when `coarse_grain` is set) would both redo the
    /// grouping work and rely on coarsening being idempotent. The
    /// `refresh_matches_fresh_s3_strategy` regression test pins the
    /// equivalence with a freshly generated strategy.
    #[must_use]
    pub fn refresh(&self, pool: &ResourcePool, now: SimTime) -> Strategy {
        self.refresh_instrumented(pool, now, &Telemetry::disabled(), None)
    }

    /// [`Strategy::refresh`] with a telemetry recorder attached — the
    /// fault-driven replan path of the job-flow layer.
    #[must_use]
    pub fn refresh_instrumented(
        &self,
        pool: &ResourcePool,
        now: SimTime,
        telemetry: &Telemetry,
        parent: Option<SpanId>,
    ) -> Strategy {
        Strategy::generate_prepared(
            Cow::Borrowed(&self.job),
            pool,
            &self.config,
            now,
            SweepExecutor::auto(),
            telemetry,
            parent,
        )
    }

    /// The configuration this strategy was generated with.
    #[must_use]
    pub fn config(&self) -> &StrategyConfig {
        &self.config
    }

    /// The strategy's kind.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// The job the supporting schedules place (coarsened for S3).
    #[must_use]
    pub fn job(&self) -> &Job {
        &self.job
    }

    /// The supporting schedules, in sweep order (best-case scenario first).
    #[must_use]
    pub fn distributions(&self) -> &[Distribution] {
        &self.distributions
    }

    /// Scenarios for which no schedule could be built.
    #[must_use]
    pub fn failures(&self) -> &[ScheduleError] {
        &self.failures
    }

    /// Whether at least one supporting schedule exists — the paper's
    /// "admissible solution" criterion (Fig. 3a).
    #[must_use]
    pub fn is_admissible(&self) -> bool {
        !self.distributions.is_empty()
    }

    /// The cheapest supporting schedule (the default the metascheduler
    /// activates).
    #[must_use]
    pub fn best_by_cost(&self) -> Option<&Distribution> {
        self.distributions
            .iter()
            .min_by_key(|d| (d.cost(), d.makespan()))
    }

    /// The fastest supporting schedule.
    #[must_use]
    pub fn fastest(&self) -> Option<&Distribution> {
        self.distributions
            .iter()
            .min_by_key(|d| (d.makespan(), d.cost()))
    }

    /// All collisions across schedules and failed scenarios (Fig. 3b).
    pub fn collisions(&self) -> impl Iterator<Item = &CollisionRecord> {
        self.distributions
            .iter()
            .flat_map(|d| d.collisions().iter())
            .chain(self.failures.iter().flat_map(|f| f.collisions.iter()))
    }

    /// Fraction of the sweep that yielded a schedule — the "coverage of
    /// events in distributed environment" §4 attributes to fuller
    /// strategies.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.distributions.len() + self.failures.len();
        if total == 0 {
            0.0
        } else {
            self.distributions.len() as f64 / total as f64
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} schedules, {} failures]",
            self.kind,
            self.distributions.len(),
            self.failures.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_data::policy::DataPolicyKind;
    use gridsched_model::fixtures::{fig2_job, fig2_job_with_deadline};
    use gridsched_model::ids::DomainId;
    use gridsched_model::perf::Perf;
    use gridsched_sim::time::SimDuration;

    fn pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        // Two domains, mixed speeds.
        for (d, p) in [(0, 1.0), (0, 0.5), (1, 0.8), (1, 0.33)] {
            pool.add_node(DomainId::new(d), Perf::new(p).unwrap());
        }
        pool
    }

    #[test]
    fn kind_configs_match_paper_table() {
        let pool = pool();
        let s1 = StrategyConfig::for_kind(StrategyKind::S1, &pool);
        assert_eq!(s1.policy().kind(), DataPolicyKind::ActiveReplication);
        assert_eq!(s1.sweep().len(), FULL_SWEEP_SCENARIOS);
        assert!(!s1.coarse_grain());

        let s2 = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        assert_eq!(s2.policy().kind(), DataPolicyKind::RemoteAccess);

        let s3 = StrategyConfig::for_kind(StrategyKind::S3, &pool);
        assert_eq!(s3.policy().kind(), DataPolicyKind::StaticStorage);
        assert!(s3.coarse_grain());
        // Storage on the fastest node (N0, perf 1.0).
        assert_eq!(
            s3.policy().storage_node(),
            Some(gridsched_model::ids::NodeId::new(0))
        );

        let ms1 = StrategyConfig::for_kind(StrategyKind::Ms1, &pool);
        assert_eq!(ms1.policy().kind(), DataPolicyKind::ActiveReplication);
        assert_eq!(ms1.sweep().len(), 2);
    }

    #[test]
    fn full_strategy_has_one_schedule_per_scenario_when_relaxed() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S1, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        assert!(s.is_admissible());
        assert_eq!(s.distributions().len(), FULL_SWEEP_SCENARIOS);
        assert_eq!(s.coverage(), 1.0);
    }

    #[test]
    fn ms1_generates_at_most_two_schedules() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::Ms1, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        assert!(s.distributions().len() <= 2);
        assert!(s.is_admissible());
    }

    #[test]
    fn tight_deadline_drops_worst_case_scenarios_first() {
        // Pick a deadline only the faster scenarios can meet.
        let job = fig2_job_with_deadline(SimDuration::from_ticks(18));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        assert!(s.is_admissible());
        assert!(
            !s.failures().is_empty(),
            "the worst-case scenario should be infeasible at deadline 18"
        );
        // Surviving schedules are the optimistic ones.
        for d in s.distributions() {
            assert!(d.scenario() < gridsched_model::estimate::EstimateScenario::WORST);
        }
    }

    #[test]
    fn impossible_deadline_is_inadmissible() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(4));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        assert!(!s.is_admissible());
        assert_eq!(s.coverage(), 0.0);
        assert!(s.best_by_cost().is_none());
    }

    #[test]
    fn best_by_cost_and_fastest_are_consistent() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        let cheap = s.best_by_cost().unwrap();
        let fast = s.fastest().unwrap();
        assert!(cheap.cost() <= fast.cost());
        assert!(fast.makespan() <= cheap.makespan());
    }

    #[test]
    fn s3_plans_on_the_coarsened_job() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S3, &pool);
        let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        // Fig. 2's fork-join graph does not coarsen, so counts match; the
        // planning job is still a distinct owned copy.
        assert_eq!(s.job().task_count(), fig2_job().task_count());
        for d in s.distributions() {
            assert_eq!(d.validate(s.job(), &pool), Ok(()));
        }
    }

    #[test]
    fn refresh_replans_against_current_availability() {
        use gridsched_model::timetable::ReservationOwner;
        use gridsched_model::window::TimeWindow;

        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let mut pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let original = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        assert!(original.is_admissible());
        // The environment moves on: every node is busy until t30.
        for i in 0..pool.len() {
            let id = gridsched_model::ids::NodeId::new(i as u32);
            pool.timetable_mut(id)
                .reserve(
                    TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(30)).unwrap(),
                    ReservationOwner::Background(0),
                )
                .unwrap();
        }
        let refreshed = original.refresh(&pool, SimTime::from_ticks(10));
        assert_eq!(refreshed.kind(), original.kind());
        assert!(refreshed.is_admissible());
        for d in refreshed.distributions() {
            for p in d.placements() {
                assert!(p.window.start() >= SimTime::from_ticks(30));
            }
        }
    }

    /// Everything observable about a strategy, for bit-exact comparisons.
    fn fingerprint(s: &Strategy) -> impl PartialEq + std::fmt::Debug {
        (
            s.kind(),
            s.job().task_count(),
            s.distributions()
                .iter()
                .map(|d| {
                    (
                        d.scenario(),
                        d.cost(),
                        d.makespan(),
                        d.placements().to_vec(),
                        d.collisions().to_vec(),
                    )
                })
                .collect::<Vec<_>>(),
            s.failures().to_vec(),
        )
    }

    #[test]
    fn parallel_sequential_and_cloning_sweeps_are_bit_identical() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(100));
        let mut pool = pool();
        // Background load so overlay merging is exercised.
        for i in 0..pool.len() {
            let id = gridsched_model::ids::NodeId::new(i as u32);
            pool.timetable_mut(id)
                .reserve(
                    gridsched_model::window::TimeWindow::new(
                        SimTime::from_ticks(3 * i as u64),
                        SimTime::from_ticks(3 * i as u64 + 4),
                    )
                    .unwrap(),
                    gridsched_model::timetable::ReservationOwner::Background(i as u64),
                )
                .unwrap();
        }
        for kind in StrategyKind::ALL {
            let cfg = StrategyConfig::for_kind(kind, &pool);
            let par = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
            let seq = Strategy::generate_sequential(&job, &pool, &cfg, SimTime::ZERO);
            let cloning = Strategy::generate_cloning(&job, &pool, &cfg, SimTime::ZERO);
            let owned = Strategy::generate_owned(job.clone(), &pool, &cfg, SimTime::ZERO);
            assert_eq!(fingerprint(&par), fingerprint(&seq), "{kind}");
            assert_eq!(fingerprint(&par), fingerprint(&cloning), "{kind}");
            assert_eq!(fingerprint(&par), fingerprint(&owned), "{kind}");
        }
    }

    #[test]
    fn refresh_matches_fresh_s3_strategy() {
        use gridsched_model::timetable::ReservationOwner;
        use gridsched_model::window::TimeWindow;

        // Regression for the double-coarsening bug: refresh used to route
        // the *already coarsened* S3 planning job back through
        // `Strategy::generate`, whose `coarse_grain` config coarsened it a
        // second time. Refresh must reuse the planning job as-is and match
        // a freshly generated strategy on the same pool state exactly.
        let job = fig2_job_with_deadline(SimDuration::from_ticks(200));
        let mut pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S3, &pool);
        let original = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        for i in 0..pool.len() {
            let id = gridsched_model::ids::NodeId::new(i as u32);
            pool.timetable_mut(id)
                .reserve(
                    TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(25)).unwrap(),
                    ReservationOwner::Background(7),
                )
                .unwrap();
        }
        let refreshed = original.refresh(&pool, SimTime::from_ticks(10));
        let fresh = Strategy::generate(&job, &pool, &cfg, SimTime::from_ticks(10));
        assert_eq!(fingerprint(&refreshed), fingerprint(&fresh));
        // The planning job is passed through untouched — same task count,
        // no re-coarsening artifacts.
        assert_eq!(refreshed.job().task_count(), original.job().task_count());
    }

    #[test]
    fn instrumented_sweep_is_bit_identical_and_tallies_counters() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(100));
        let pool = pool();
        let cfg = StrategyConfig::for_kind(StrategyKind::S2, &pool);
        let plain = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
        let telemetry = Telemetry::new();
        let instrumented =
            Strategy::generate_instrumented(&job, &pool, &cfg, SimTime::ZERO, &telemetry, None);
        assert_eq!(fingerprint(&plain), fingerprint(&instrumented));
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("scenarios_planned"),
            plain.distributions().len() as u64
        );
        assert_eq!(
            snap.counter("scenarios_failed"),
            plain.failures().len() as u64
        );
        assert_eq!(snap.counter("sessions_opened"), 1);
        assert_eq!(
            snap.counter("critical_works_passes"),
            FULL_SWEEP_SCENARIOS as u64
        );
        // The sweep's span tree covers the full planning hierarchy even
        // though scenarios ran on scoped threads.
        for phase in [
            "strategy_generation",
            "session_open",
            "scenario",
            "critical_works_pass",
        ] {
            assert!(snap.phases().contains(&phase), "missing phase {phase}");
        }
        let spans = snap.spans();
        let sweep = spans
            .iter()
            .find(|s| s.name == "strategy_generation")
            .unwrap();
        for scenario in spans.iter().filter(|s| s.name == "scenario") {
            assert_eq!(scenario.parent, Some(sweep.id));
        }
        let scenario_ids: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "scenario")
            .map(|s| s.id)
            .collect();
        for pass in spans.iter().filter(|s| s.name == "critical_works_pass") {
            assert!(pass.parent.is_some_and(|p| scenario_ids.contains(&p)));
        }
    }

    #[test]
    fn every_distribution_validates() {
        let job = fig2_job_with_deadline(SimDuration::from_ticks(100));
        let pool = pool();
        for kind in StrategyKind::ALL {
            let cfg = StrategyConfig::for_kind(kind, &pool);
            let s = Strategy::generate(&job, &pool, &cfg, SimTime::ZERO);
            for d in s.distributions() {
                assert_eq!(d.validate(s.job(), &pool), Ok(()), "{kind}");
            }
        }
    }
}
