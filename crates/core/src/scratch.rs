//! Reusable planning scratch: a thread-local arena of overlay views and
//! engine buffers.
//!
//! A strategy sweep runs the critical-works engine once per scenario, and
//! a VO campaign runs thousands of sweeps. Before this module, every pass
//! allocated its working set from scratch — two availability overlays, the
//! unassigned/remaining task sets, the critical-work task vectors, the
//! placed-map and the Pareto frontier triple-vector — then dropped it all
//! on exit. A [`Scratch`] arena keeps that working set alive per thread
//! (planning threads are exactly the sweep workers, so one arena per
//! worker) and the engine reuses the buffers' capacity, making the
//! steady-state hot path allocation-free apart from the output
//! [`crate::distribution::Distribution`] itself.
//!
//! Reuse never changes results: every buffer is cleared (or
//! [`gridsched_model::availability::TimetableOverlay::reset_to`]) before
//! use, and the determinism suite pins the scratch path bit-identical to
//! the allocating baselines.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use gridsched_model::availability::{AvailabilitySnapshot, TimetableOverlay};
use gridsched_model::ids::TaskId;

use crate::allocate::AllocScratch;
use crate::chains::{ChainScratch, CriticalWork};
use crate::distribution::Placement;

/// Reusable buffers of one critical-works engine pass.
///
/// All fields are crate-internal; the engine
/// (`crate::method::run_method_chains`) clears each one before use, so a
/// default-constructed value and a recycled one behave identically.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Tasks not fixed by the caller.
    pub(crate) unassigned: HashSet<TaskId>,
    /// Working copy of `unassigned` consumed by chain decomposition.
    pub(crate) remaining: HashSet<TaskId>,
    /// The pass's critical works (task vectors recycled via `spare_tasks`).
    pub(crate) works: Vec<CriticalWork>,
    /// Retired task vectors awaiting reuse by the next decomposition.
    pub(crate) spare_tasks: Vec<Vec<TaskId>>,
    /// Longest-chain DP buffers.
    pub(crate) chain: ChainScratch,
    /// Co-allocation DP buffers (pass-invariant tables + Pareto frontiers).
    pub(crate) alloc: AllocScratch,
    /// Placements committed so far in the pass.
    pub(crate) placed: HashMap<TaskId, Placement>,
    /// Phase-1 (ideal, background-only) placements of the current chain.
    pub(crate) ideal: Vec<Placement>,
    /// Phase-2 (collision-resolved) placements of the current chain.
    pub(crate) resolved: Vec<Placement>,
}

/// Cap on retained overlays per thread; a pass needs two, a little slack
/// covers re-entrant planning without hoarding memory.
const MAX_RETAINED_OVERLAYS: usize = 8;

/// A per-thread planning arena: recycled overlay views plus the engine's
/// [`EngineScratch`].
#[derive(Debug, Default)]
pub struct Scratch {
    overlays: Vec<TimetableOverlay>,
    pub(crate) engine: EngineScratch,
}

impl Scratch {
    /// Runs `f` with this thread's arena.
    ///
    /// Re-entrant calls (a planner invoked from inside a planner) get a
    /// fresh throwaway arena instead of panicking on the occupied
    /// thread-local.
    pub fn with<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => f(&mut scratch),
            Err(_) => f(&mut Scratch::default()),
        })
    }

    /// An overlay over `base`: recycled (rebased via
    /// [`TimetableOverlay::reset_to`]) when one is cached, fresh otherwise.
    pub(crate) fn take_overlay(&mut self, base: &AvailabilitySnapshot) -> TimetableOverlay {
        match self.overlays.pop() {
            Some(mut overlay) => {
                overlay.reset_to(base.clone());
                overlay
            }
            None => TimetableOverlay::new(base.clone()),
        }
    }

    /// Returns an overlay to the arena for later reuse.
    pub(crate) fn recycle_overlay(&mut self, overlay: TimetableOverlay) {
        if self.overlays.len() < MAX_RETAINED_OVERLAYS {
            self.overlays.push(overlay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_model::ids::{DomainId, NodeId};
    use gridsched_model::node::ResourcePool;
    use gridsched_model::perf::Perf;
    use gridsched_model::window::TimeWindow;
    use gridsched_sim::time::SimTime;

    fn snapshot() -> AvailabilitySnapshot {
        let mut pool = ResourcePool::new();
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.add_node(DomainId::new(0), Perf::FULL);
        pool.snapshot()
    }

    #[test]
    fn recycled_overlays_forget_previous_tentative_state() {
        let snap = snapshot();
        let node = NodeId::new(0);
        let w = TimeWindow::new(SimTime::ZERO, SimTime::from_ticks(5)).unwrap();
        Scratch::with(|scratch| {
            let mut a = scratch.take_overlay(&snap);
            a.reserve_window(node, w).unwrap();
            assert!(!a.is_free(node, w));
            scratch.recycle_overlay(a);
            let b = scratch.take_overlay(&snap);
            assert!(b.is_free(node, w), "recycled overlay must start clean");
            scratch.recycle_overlay(b);
        });
    }

    #[test]
    fn reentrant_with_does_not_panic() {
        let outer = Scratch::with(|_| Scratch::with(|_| 42));
        assert_eq!(outer, 42);
    }

    #[test]
    fn overlay_retention_is_bounded() {
        let snap = snapshot();
        Scratch::with(|scratch| {
            let taken: Vec<_> = (0..20).map(|_| scratch.take_overlay(&snap)).collect();
            for overlay in taken {
                scratch.recycle_overlay(overlay);
            }
            assert!(scratch.overlays.len() <= MAX_RETAINED_OVERLAYS);
        });
    }
}
