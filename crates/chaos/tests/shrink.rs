//! The catch → shrink → replay pipeline, end to end, on an injected
//! divergence.
//!
//! The injection hook (`SweepConfig::inject`) XORs a mask into one
//! axis's fingerprint, forcing a known-divergent synthetic campaign
//! without touching product code. These tests assert the full contract:
//! the divergence is caught, shrunk to a stable small repro (identical
//! across two runs with the same seed), serialized to an artifact that
//! round-trips through JSON, and reproduced by replaying that artifact.

use gridsched::metrics::telemetry::{Counter, Telemetry};
use gridsched_chaos::{
    replay, run_sweep, Axis, ChaosFailure, ReproArtifact, SweepConfig, SweepOutcome,
};

fn injected_sweep() -> SweepConfig {
    SweepConfig {
        master_seed: 0xBAD_5EED,
        campaigns: 4,
        inject: Some(Axis::Executors),
        ..SweepConfig::default()
    }
}

fn run_injected() -> SweepOutcome {
    run_sweep(&injected_sweep(), &Telemetry::disabled())
}

#[test]
fn injected_divergence_is_caught_and_shrunk() {
    let telemetry = Telemetry::new();
    let outcome = run_sweep(&injected_sweep(), &telemetry);
    let repro = outcome.repro.expect("injected divergence must be caught");
    // The very first campaign diverges; the sweep stops there.
    assert_eq!(outcome.campaigns_run, 1);
    assert_eq!(telemetry.counter(Counter::ChaosDivergences), 1);
    assert_eq!(repro.axis, Axis::Executors);
    assert!(repro.injected);
    assert!(repro.shrink_attempts > 0);
    // The repro is small: the shrinker flattened every dimension the
    // injected failure does not depend on (which is all of them — the
    // injection diverges unconditionally).
    assert_eq!(repro.campaign.jobs, 1);
    assert_eq!(repro.campaign.perturbations, 0);
    assert_eq!(repro.campaign.outages, 0);
    assert_eq!(repro.campaign.degradations, 0);
    assert_eq!(repro.campaign.transfer_faults, 0);
    assert_eq!(repro.campaign.domains, 1);
    assert_eq!(repro.campaign.job_gap, 0);
}

#[test]
fn index_cache_axis_injection_is_caught() {
    let outcome = run_sweep(
        &SweepConfig {
            master_seed: 0xBAD_5EED,
            campaigns: 1,
            inject: Some(Axis::IndexCache),
            ..SweepConfig::default()
        },
        &Telemetry::disabled(),
    );
    let repro = outcome
        .repro
        .expect("injected index-cache divergence must be caught");
    assert_eq!(repro.axis, Axis::IndexCache);
    assert!(repro.injected);
}

#[test]
fn shrinking_twice_with_the_same_seed_is_stable() {
    let a = run_injected().repro.expect("caught");
    let b = run_injected().repro.expect("caught");
    assert_eq!(a, b, "same seed must minimize to the same repro");
}

#[test]
fn artifact_round_trips_and_replays() {
    let repro = run_injected().repro.expect("caught");
    let json = repro.to_json("chaos-repro.json");
    let parsed = ReproArtifact::from_json(&json).expect("artifact parses back");
    assert_eq!(parsed, repro);
    // Replaying the parsed artifact reproduces the same failure on the
    // same axis with the same fingerprints.
    let failure = replay(&parsed).expect("failure must reproduce from the artifact");
    match failure {
        ChaosFailure::Divergence {
            axis,
            expected,
            actual,
            ..
        } => {
            assert_eq!(axis, parsed.axis);
            assert_eq!(expected, parsed.expected);
            assert_eq!(actual, parsed.actual);
        }
        other => panic!("expected a divergence, got {other}"),
    }
}

#[test]
fn clean_campaigns_do_not_replay_as_failures() {
    // An artifact for a campaign that does not actually fail (injection
    // flag off) replays clean — the signal a fix landed.
    let mut repro = run_injected().repro.expect("caught");
    repro.injected = false;
    assert!(replay(&repro).is_none());
}
