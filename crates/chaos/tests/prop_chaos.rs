//! Differential property tests: generated campaigns agree across every
//! axis, and the sweep machinery is deterministic end to end.

use gridsched::metrics::telemetry::{Counter, Telemetry};
use gridsched_chaos::{run_axes, run_sweep, ChaosCampaign, SweepConfig};

/// A handful of fixed generator seeds must run the full differential
/// clean: executors, collapse, telemetry and (where comparable)
/// batch-vs-online all agree, and every trace passes the oracle.
#[test]
fn fixed_seeds_run_the_full_differential_clean() {
    for generator_seed in [0, 1, 2, 3, 4, 1_000_003, 0xfeed_f00d] {
        let campaign = ChaosCampaign::generate(generator_seed);
        let report = run_axes(&campaign, None);
        assert!(
            report.failure.is_none(),
            "generator seed {generator_seed} diverged: {:?}\ncampaign: {campaign:?}",
            report.failure
        );
    }
}

/// The same campaign always yields the same axis report — the runner
/// itself is part of the determinism contract.
#[test]
fn run_axes_is_deterministic() {
    let campaign = ChaosCampaign::generate(11);
    assert_eq!(run_axes(&campaign, None), run_axes(&campaign, None));
}

/// A short sweep from a fixed master seed completes clean, counts its
/// campaigns and exercises the batch-vs-online comparison on at least
/// one of them.
#[test]
fn short_sweep_is_clean_and_counted() {
    let telemetry = Telemetry::new();
    let config = SweepConfig {
        master_seed: 0x5EED_0001,
        campaigns: 6,
        ..SweepConfig::default()
    };
    let outcome = run_sweep(&config, &telemetry);
    assert!(outcome.clean(), "unexpected failure: {:?}", outcome.repro);
    assert_eq!(outcome.campaigns_run, 6);
    assert_eq!(outcome.online_compared + outcome.online_skipped, 6);
    assert!(
        outcome.online_compared > 0,
        "no campaign exercised the batch-vs-online comparison"
    );
    assert_eq!(telemetry.counter(Counter::ChaosCampaigns), 6);
    assert_eq!(telemetry.counter(Counter::ChaosDivergences), 0);
}
