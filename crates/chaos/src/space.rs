//! The campaign space: one `u64` seed → one complete campaign description.
//!
//! A [`ChaosCampaign`] is a plain-data superset of everything the
//! differential axes need: it expands to a batch [`CampaignConfig`], to
//! its degenerate zero-gap variant, and to an [`OnlineConfig`] over the
//! matching all-zero arrival trace. All fields are numbers so the repro
//! artifact can serialize a campaign as flat JSON and rebuild it exactly.

use gridsched::core::strategy::{StrategyKind, SweepExecutorKind};
use gridsched::flow::faults::FaultConfig;
use gridsched::flow::metascheduler::FlowAssignment;
use gridsched::flow::online::OnlineConfig;
use gridsched::flow::simulation::CampaignConfig;
use gridsched::sim::rng::SimRng;
use gridsched::sim::time::SimDuration;
use gridsched::workload::arrivals::ArrivalProcess;
use gridsched::workload::jobs::JobConfig;
use gridsched::workload::pool::PoolConfig;

/// One generated campaign: the random point the differential runner
/// executes across every configuration axis.
///
/// The bounds are deliberately small — chaos earns its keep from *many*
/// diverse campaigns per second, not from big ones — but they cover every
/// dynamic the simulator has: multi-domain pools, background load,
/// perturbations, all three fault kinds, tight-ish deadlines and bursty
/// release gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaign {
    /// Campaign seed: drives the pool, jobs, perturbations and faults of
    /// every expanded configuration (it is **not** the generator seed —
    /// see [`ChaosCampaign::generate`]).
    pub seed: u64,
    /// Index into [`StrategyKind::ALL`].
    pub strategy: u64,
    /// Number of jobs submitted / offered.
    pub jobs: u64,
    /// Minimum pool size.
    pub nodes_min: u64,
    /// Maximum pool size.
    pub nodes_max: u64,
    /// Domain count the pool shards into (≤ `nodes_min`).
    pub domains: u64,
    /// Static background load level in `[0, 1)`.
    pub background_load: f64,
    /// Maximum inter-release gap of the batch stream, in ticks.
    pub job_gap: u64,
    /// External perturbation events over the horizon.
    pub perturbations: u64,
    /// Upper bound of a perturbation reservation, in ticks (lower is 1).
    pub perturbation_len_max: u64,
    /// Node outages injected by the fault plan.
    pub outages: u64,
    /// Upper bound of an outage, in ticks (lower is 3).
    pub outage_len_max: u64,
    /// Node degradations injected by the fault plan.
    pub degradations: u64,
    /// Data-transfer faults injected by the fault plan.
    pub transfer_faults: u64,
    /// Campaign horizon, in ticks.
    pub horizon: u64,
    /// Deadline = factor × critical path (generous values keep the
    /// batch-vs-online axis comparable: first-probe admissions).
    pub deadline_factor: f64,
    /// Maximum DAG depth (minimum is 3).
    pub layers_max: u64,
    /// Maximum parallel tasks per middle layer.
    pub width_max: u64,
    /// Half-width of the per-task slowdown jitter.
    pub task_jitter: f64,
    /// Urgency escalation slack factor; `0.0` disables escalation.
    pub urgency_slack: f64,
}

impl ChaosCampaign {
    /// Generates the campaign at `generator_seed` in the campaign space.
    ///
    /// Every field is drawn from a [`SimRng`] seeded with
    /// `generator_seed` in a fixed order, so the mapping seed → campaign
    /// is part of the determinism contract: the same seed reproduces the
    /// same campaign forever (the repro artifact still stores the
    /// expanded fields, so shrunken campaigns — which left the image of
    /// this map — round-trip too).
    #[must_use]
    pub fn generate(generator_seed: u64) -> Self {
        let mut rng = SimRng::seed_from(generator_seed);
        let seed = rng.next_u64();
        let strategy = rng.uniform_u64(0, StrategyKind::ALL.len() as u64 - 1);
        let jobs = rng.uniform_u64(3, 10);
        let nodes_min = rng.uniform_u64(6, 10);
        let nodes_max = nodes_min + rng.uniform_u64(0, 6);
        let domains = rng.uniform_u64(1, 4).min(nodes_min);
        let background_load = rng.uniform_f64(0.0, 0.35);
        let job_gap = rng.uniform_u64(0, 10);
        let perturbations = rng.uniform_u64(0, 25);
        let perturbation_len_max = rng.uniform_u64(2, 8);
        let outages = rng.uniform_u64(0, 5);
        let outage_len_max = rng.uniform_u64(4, 14);
        let degradations = rng.uniform_u64(0, 4);
        let transfer_faults = rng.uniform_u64(0, 5);
        let horizon = rng.uniform_u64(250, 800);
        let deadline_factor = rng.uniform_f64(3.0, 6.0);
        let layers_max = rng.uniform_u64(3, 5);
        let width_max = rng.uniform_u64(1, 3);
        let task_jitter = rng.uniform_f64(0.0, 0.2);
        let urgency_slack = if rng.chance(0.7) {
            rng.uniform_f64(1.2, 2.5)
        } else {
            0.0
        };
        ChaosCampaign {
            seed,
            strategy,
            jobs,
            nodes_min,
            nodes_max,
            domains,
            background_load,
            job_gap,
            perturbations,
            perturbation_len_max,
            outages,
            outage_len_max,
            degradations,
            transfer_faults,
            horizon,
            deadline_factor,
            layers_max,
            width_max,
            task_jitter,
            urgency_slack,
        }
    }

    /// The strategy flow every expanded configuration assigns.
    #[must_use]
    pub fn strategy_kind(&self) -> StrategyKind {
        StrategyKind::ALL[(self.strategy as usize).min(StrategyKind::ALL.len() - 1)]
    }

    /// The batch campaign this point describes, with the default (`Auto`)
    /// executor and the sharded flow layer — the reference variant every
    /// axis compares against. Traces are always collected: they are the
    /// fingerprint input and what the oracle audits.
    #[must_use]
    pub fn base_config(&self) -> CampaignConfig {
        CampaignConfig {
            assignment: FlowAssignment::Single(self.strategy_kind()),
            jobs: self.jobs as usize,
            job_config: JobConfig {
                layers_min: 3,
                layers_max: self.layers_max.max(3) as usize,
                width_max: self.width_max.max(1) as usize,
                deadline_factor: self.deadline_factor,
                ..JobConfig::default()
            },
            pool_config: PoolConfig {
                nodes_min: self.nodes_min as usize,
                nodes_max: self.nodes_max.max(self.nodes_min) as usize,
                domains: u32::try_from(self.domains.max(1)).expect("small domain count"),
                ..PoolConfig::default()
            },
            background_load: self.background_load,
            job_gap: SimDuration::from_ticks(self.job_gap),
            perturbations: self.perturbations as usize,
            perturbation_len: (1, self.perturbation_len_max.max(1)),
            faults: FaultConfig {
                outages: self.outages as usize,
                outage_len: (3, self.outage_len_max.max(3)),
                degradations: self.degradations as usize,
                transfer_faults: self.transfer_faults as usize,
                ..FaultConfig::none()
            },
            horizon: SimDuration::from_ticks(self.horizon),
            task_jitter: self.task_jitter,
            collect_trace: true,
            executor: SweepExecutorKind::Auto,
            urgency_slack_factor: (self.urgency_slack > 0.0).then_some(self.urgency_slack),
            seed: self.seed,
            ..CampaignConfig::default()
        }
    }

    /// [`ChaosCampaign::base_config`] with every release gap collapsed to
    /// zero — the degenerate stream the batch-vs-online axis runs, where
    /// neither generator consumes gap randomness and both produce the
    /// same jobs.
    #[must_use]
    pub fn zero_gap_config(&self) -> CampaignConfig {
        CampaignConfig {
            job_gap: SimDuration::ZERO,
            ..self.base_config()
        }
    }

    /// The online serving run the zero-gap batch campaign must match: an
    /// all-zero arrival trace (same jobs, same instants), a queue wide
    /// enough that no arrival is rejected for capacity, and a probe on
    /// deadline alone.
    #[must_use]
    pub fn online_config(&self) -> OnlineConfig {
        OnlineConfig {
            base: self.zero_gap_config(),
            arrivals: ArrivalProcess::Trace { gaps: vec![0] },
            queue_capacity: self.jobs as usize,
            probe_budget: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        for generator_seed in 0..64 {
            let a = ChaosCampaign::generate(generator_seed);
            let b = ChaosCampaign::generate(generator_seed);
            assert_eq!(a, b);
            assert!((3..=10).contains(&a.jobs));
            assert!(a.nodes_min >= 6 && a.nodes_max >= a.nodes_min);
            assert!(a.domains >= 1 && a.domains <= a.nodes_min);
            assert!((250..=800).contains(&a.horizon));
            assert!(a.deadline_factor >= 3.0);
            // The expansions must be buildable (their validators panic on
            // nonsense bounds).
            let _ = a.base_config();
            let _ = a.zero_gap_config();
            let _ = a.online_config();
        }
    }

    #[test]
    fn seeds_spread_over_the_space() {
        let campaigns: Vec<ChaosCampaign> = (0..32).map(ChaosCampaign::generate).collect();
        assert!(campaigns.iter().any(|c| c.outages > 0));
        assert!(campaigns.iter().any(|c| c.outages == 0));
        assert!(campaigns.iter().any(|c| c.domains > 1));
        assert!(campaigns.iter().any(|c| c.job_gap == 0));
        assert!(campaigns.iter().any(|c| c.job_gap > 0));
        assert!(campaigns.iter().any(|c| c.urgency_slack == 0.0));
        assert!(campaigns.iter().any(|c| c.urgency_slack > 0.0));
    }
}
