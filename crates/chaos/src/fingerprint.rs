//! Trace fingerprints: the equality the differential axes assert.
//!
//! Mirrors the fingerprint idiom of the hierarchy guard-rail tests:
//! FNV-1a 64-bit over the `Debug` form of everything a campaign
//! observably produced — per-job records, fault accounting and the full
//! chronological trace. Plain derived formatting of plain data, so the
//! bytes are stable across platforms and toolchains.

use gridsched::flow::online::{AdmissionOutcome, OnlineReport};
use gridsched::flow::trace::CampaignEvent;
use gridsched::flow::VoReport;
use gridsched::model::ids::JobId;
use gridsched::sim::time::SimTime;

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything a campaign observably produced: records,
/// fault accounting and the chronological trace.
#[must_use]
pub fn report_fingerprint(report: &VoReport) -> u64 {
    fnv1a64(format!("{:?}", (&report.records, &report.faults, &report.trace)).as_bytes())
}

/// Whether an online run is *comparable* to its batch twin: every arrival
/// was admitted on its first probe at its arrival instant. Under the
/// degenerate zero-gap stream that means the online loop made exactly the
/// decisions the batch campaign makes — admission control never kicked
/// in, so the two runs must agree event for event.
///
/// Deferral, rejection or any re-probe makes the runs legitimately
/// different (that is admission control working); the differential axis
/// skips those campaigns rather than comparing apples to oranges.
#[must_use]
pub fn online_comparable(online: &OnlineReport) -> bool {
    let s = &online.summary;
    s.arrived == s.admitted
        && s.probes == s.arrived
        && online
            .admission
            .iter()
            .all(|a| a.outcome == AdmissionOutcome::Admitted { at: a.arrival })
}

/// Fingerprint of a report *normalized* for the batch-vs-online
/// comparison.
///
/// The two flavours legitimately differ in how they narrate terminal
/// events: the online loop traces `Arrived` per arrival and observes
/// `Completed` at its realized instant, while the batch campaign has no
/// arrival notion and stamps completions at the horizon. Both carry the
/// same realized `end`, so the normalization drops `Arrived`, compares
/// the remaining trace verbatim, and compares completions as a sorted
/// `(job, realized end)` set.
#[must_use]
pub fn normalized_fingerprint(report: &VoReport) -> u64 {
    let events: &[(SimTime, CampaignEvent)] =
        report.trace.as_ref().map_or(&[], |trace| trace.events());
    let kept: Vec<&(SimTime, CampaignEvent)> = events
        .iter()
        .filter(|(_, e)| {
            !matches!(
                e,
                CampaignEvent::Arrived { .. } | CampaignEvent::Completed { .. }
            )
        })
        .collect();
    let mut completions: Vec<(JobId, SimTime)> = events
        .iter()
        .filter_map(|(_, e)| match e {
            CampaignEvent::Completed { job, end } => Some((*job, *end)),
            _ => None,
        })
        .collect();
    completions.sort_unstable();
    fnv1a64(
        format!(
            "{:?}",
            (&report.records, &report.faults, &kept, &completions)
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched::flow::simulation::{run_campaign, CampaignConfig};

    fn traced() -> CampaignConfig {
        CampaignConfig {
            jobs: 6,
            perturbations: 5,
            collect_trace: true,
            seed: 99,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a's published 64-bit test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fingerprints_are_deterministic_and_sensitive() {
        let a = run_campaign(&traced());
        let b = run_campaign(&traced());
        assert_eq!(report_fingerprint(&a), report_fingerprint(&b));
        assert_eq!(normalized_fingerprint(&a), normalized_fingerprint(&b));
        let other = run_campaign(&CampaignConfig {
            seed: 100,
            ..traced()
        });
        assert_ne!(report_fingerprint(&a), report_fingerprint(&other));
    }
}
