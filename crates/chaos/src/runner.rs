//! The campaign sweep: generate → differentiate → shrink → report.
//!
//! [`run_sweep`] drives the whole pipeline: it draws campaign seeds from
//! one master seed, runs every campaign across the differential axes,
//! and on the first failure shrinks the campaign while the same kind of
//! failure reproduces, packaging the minimum as a [`ReproArtifact`].
//! [`replay`] is the other direction: given a parsed artifact, re-run
//! its campaign and report whether the recorded failure still shows.

use std::time::Instant;

use gridsched::metrics::telemetry::{Counter, Telemetry};
use gridsched::sim::rng::SimRng;

use crate::differential::{run_axes, Axis, ChaosFailure};
use crate::repro::ReproArtifact;
use crate::shrink::shrink;
use crate::space::ChaosCampaign;

/// Configuration of one differential sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed the per-campaign generator seeds are drawn from.
    pub master_seed: u64,
    /// Campaigns to run (the sweep may stop earlier on `deadline` or on
    /// the first failure).
    pub campaigns: usize,
    /// Wall-clock cutoff: no new campaign starts past this instant.
    /// Campaigns already running finish — the budget time-boxes the
    /// sweep, it does not abort mid-campaign.
    pub deadline: Option<Instant>,
    /// Test-only divergence injection (see
    /// [`crate::differential::run_axes`]).
    pub inject: Option<Axis>,
    /// Shrink budget: maximum predicate evaluations (each one a full
    /// differential re-run of a candidate campaign).
    pub max_shrink_attempts: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            master_seed: 0xC4A0_5EED,
            campaigns: 64,
            deadline: None,
            inject: None,
            max_shrink_attempts: 200,
        }
    }
}

/// What a sweep did and found.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Campaigns fully executed across all axes.
    pub campaigns_run: usize,
    /// Campaigns whose batch-vs-online axis actually compared.
    pub online_compared: usize,
    /// Campaigns where admission control intervened and the
    /// batch-vs-online comparison was skipped as incomparable.
    pub online_skipped: usize,
    /// The shrunken repro of the first failure, if any was found.
    pub repro: Option<ReproArtifact>,
}

impl SweepOutcome {
    /// Whether the sweep completed without finding any failure.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.repro.is_none()
    }
}

/// Runs a differential sweep over generated campaigns.
///
/// Campaign generator seeds are drawn one `next_u64` each from a
/// [`SimRng`] seeded with `config.master_seed`, so a sweep is fully
/// reproducible from that one number. On the first failing campaign the
/// sweep stops, shrinks the campaign while the same kind of failure
/// keeps reproducing (re-running the full differential per candidate),
/// and returns the minimum as a [`ReproArtifact`].
///
/// Counters: [`Counter::ChaosCampaigns`] per campaign executed (shrink
/// re-runs not counted), [`Counter::ChaosDivergences`] per failure found.
#[must_use]
pub fn run_sweep(config: &SweepConfig, telemetry: &Telemetry) -> SweepOutcome {
    let mut rng = SimRng::seed_from(config.master_seed);
    let mut outcome = SweepOutcome {
        campaigns_run: 0,
        online_compared: 0,
        online_skipped: 0,
        repro: None,
    };
    for _ in 0..config.campaigns {
        if config.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let campaign = ChaosCampaign::generate(rng.next_u64());
        let report = run_axes(&campaign, config.inject);
        outcome.campaigns_run += 1;
        telemetry.incr(Counter::ChaosCampaigns);
        if report.online_compared {
            outcome.online_compared += 1;
        }
        let Some(original) = report.failure else {
            if !report.online_compared {
                outcome.online_skipped += 1;
            }
            continue;
        };
        telemetry.incr(Counter::ChaosDivergences);
        let (minimized, attempts) = shrink(
            &campaign,
            |candidate| {
                run_axes(candidate, config.inject)
                    .failure
                    .as_ref()
                    .is_some_and(|f| f.same_kind(&original))
            },
            config.max_shrink_attempts,
        );
        // Re-derive the failure on the minimized campaign so the artifact
        // records *its* fingerprints, not the original's.
        let failure = run_axes(&minimized, config.inject)
            .failure
            .unwrap_or(original);
        outcome.repro = Some(ReproArtifact::new(
            minimized,
            &failure,
            config.inject.is_some(),
            attempts as u64,
        ));
        break;
    }
    outcome
}

/// Replays a repro artifact: re-runs its campaign across the axes
/// (re-applying the injection if the artifact records one) and returns
/// the failure observed, or `None` if the failure no longer reproduces
/// (e.g. after a fix landed).
#[must_use]
pub fn replay(artifact: &ReproArtifact) -> Option<ChaosFailure> {
    let inject = artifact.injected.then_some(artifact.axis);
    run_axes(&artifact.campaign, inject).failure
}
