//! Greedy campaign shrinking: minimize a failing campaign while the
//! failure keeps reproducing.
//!
//! Classic delta-debugging adapted to the campaign space: each round
//! proposes single-dimension reductions in a fixed order — fewer jobs,
//! fewer perturbations, no faults, fewer domains, fewer nodes, a shorter
//! horizon — and greedily accepts the first reduction whose campaign
//! still fails (as judged by the caller's predicate). Rounds repeat until
//! no candidate is accepted or the attempt budget runs out.
//!
//! Everything is deterministic: candidates are a pure function of the
//! current campaign, so the same failing campaign always shrinks to the
//! same minimized repro.

use crate::space::ChaosCampaign;

/// Floor the horizon shrinker will not go below — campaigns need room
/// for at least a couple of scheduling windows to mean anything.
const HORIZON_FLOOR: u64 = 120;

/// Single-dimension reductions of `c`, largest cuts first per dimension.
///
/// Every candidate preserves the space's internal invariants
/// (`domains ≤ nodes_min`, at least one job, one node, one domain).
fn candidates(c: &ChaosCampaign) -> Vec<ChaosCampaign> {
    let mut out = Vec::new();
    let mut push = |mutate: &dyn Fn(&mut ChaosCampaign)| {
        let mut cand = c.clone();
        mutate(&mut cand);
        if cand != *c {
            out.push(cand);
        }
    };
    // Jobs: try the floor, then halving, then decrement.
    push(&|m| m.jobs = 1);
    push(&|m| m.jobs = (m.jobs / 2).max(1));
    push(&|m| m.jobs = m.jobs.saturating_sub(1).max(1));
    // Dynamics: drop whole streams first.
    push(&|m| m.perturbations = 0);
    push(&|m| m.perturbations /= 2);
    push(&|m| m.outages = 0);
    push(&|m| m.degradations = 0);
    push(&|m| m.transfer_faults = 0);
    // Flow-layer width.
    push(&|m| m.domains = 1);
    push(&|m| m.domains = m.domains.saturating_sub(1).max(1));
    // Pool size: pin the draw range shut, then walk it down.
    push(&|m| m.nodes_max = m.nodes_min);
    push(&|m| {
        let floor = m.domains.max(2);
        if m.nodes_min > floor {
            m.nodes_min = floor;
            m.nodes_max = floor;
        }
    });
    // Timing: release everything at once, end sooner.
    push(&|m| m.job_gap = 0);
    push(&|m| m.horizon = (m.horizon / 2).max(HORIZON_FLOOR));
    out
}

/// Greedily shrinks `start` while `still_fails` accepts the reduction.
///
/// `still_fails` must be true for `start` itself (the caller observed the
/// failure there); the function never re-checks it. Returns the minimized
/// campaign and the number of predicate evaluations spent. `max_attempts`
/// bounds the total work — on exhaustion the best campaign so far is
/// returned, which is still a valid (if not minimal) repro.
pub fn shrink<F: FnMut(&ChaosCampaign) -> bool>(
    start: &ChaosCampaign,
    mut still_fails: F,
    max_attempts: usize,
) -> (ChaosCampaign, usize) {
    let mut current = start.clone();
    let mut attempts = 0;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if attempts >= max_attempts {
                return (current, attempts);
            }
            attempts += 1;
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, attempts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bulky() -> ChaosCampaign {
        ChaosCampaign {
            seed: 7,
            strategy: 0,
            jobs: 9,
            nodes_min: 8,
            nodes_max: 12,
            domains: 3,
            background_load: 0.2,
            job_gap: 6,
            perturbations: 18,
            perturbation_len_max: 5,
            outages: 3,
            outage_len_max: 9,
            degradations: 2,
            transfer_faults: 3,
            horizon: 600,
            deadline_factor: 4.0,
            layers_max: 4,
            width_max: 2,
            task_jitter: 0.1,
            urgency_slack: 1.5,
        }
    }

    #[test]
    fn always_failing_predicate_shrinks_to_the_floor() {
        let (min, attempts) = shrink(&bulky(), |_| true, 500);
        assert_eq!(min.jobs, 1);
        assert_eq!(min.perturbations, 0);
        assert_eq!(min.outages, 0);
        assert_eq!(min.degradations, 0);
        assert_eq!(min.transfer_faults, 0);
        assert_eq!(min.domains, 1);
        assert_eq!(min.nodes_min, min.nodes_max);
        assert_eq!(min.job_gap, 0);
        assert_eq!(min.horizon, HORIZON_FLOOR);
        assert!(attempts > 0);
        // Fixpoint: shrinking the minimum changes nothing.
        let (again, _) = shrink(&min, |_| true, 500);
        assert_eq!(again, min);
    }

    #[test]
    fn never_failing_predicate_keeps_the_campaign() {
        let start = bulky();
        let (kept, attempts) = shrink(&start, |_| false, 500);
        assert_eq!(kept, start);
        // One full candidate round was probed, nothing accepted.
        assert_eq!(attempts, candidates(&start).len());
    }

    #[test]
    fn predicate_can_pin_dimensions() {
        // A failure that needs at least one outage and two jobs: the
        // shrinker must keep both while flattening everything else.
        let (min, _) = shrink(&bulky(), |c| c.outages >= 1 && c.jobs >= 2, 500);
        assert_eq!(min.jobs, 2);
        assert_eq!(min.outages, 3, "outages only shrink to zero, kept");
        assert_eq!(min.perturbations, 0);
        assert_eq!(min.domains, 1);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let pred = |c: &ChaosCampaign| c.jobs >= 3;
        let a = shrink(&bulky(), pred, 500);
        let b = shrink(&bulky(), pred, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let (_, attempts) = shrink(&bulky(), |_| true, 5);
        assert_eq!(attempts, 5);
    }
}
