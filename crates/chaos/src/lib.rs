//! Seeded chaos harness: differential campaign fuzzing for the whole
//! scheduling stack.
//!
//! The workspace's QoS story rests on a pile of *bit-identity contracts*:
//! the `Sequential`, `Scoped` and pooled scenario-sweep executors must
//! plan identically; collapsing the domain-sharded flow layer to a single
//! job manager must not change a single campaign decision; telemetry must
//! be strictly observational; and a batch campaign over a degenerate
//! zero-gap release stream must match an online serving run over the same
//! arrivals. Each contract is pinned by hand-picked seeds in the test
//! suite — this crate turns them into *continuously fuzzed invariants*:
//!
//! 1. [`space::ChaosCampaign::generate`] forks an entire campaign
//!    description — pool size, domain count, fault plan, perturbation
//!    stream, deadlines, arrival gaps — from one `u64` seed.
//! 2. [`differential::run_axes`] executes the campaign across every
//!    configuration axis that must agree and asserts trace-fingerprint
//!    equality plus [`gridsched::flow::oracle`] cleanliness on every run.
//! 3. On divergence, [`shrink::shrink`] greedily drops jobs, faults,
//!    perturbations, domains and nodes while the failure still
//!    reproduces, and [`repro::ReproArtifact`] serializes the minimized
//!    campaign as a self-contained `chaos-repro.json` with the exact
//!    `chaos_run` CLI to replay it.
//!
//! The differential style follows the deadline/budget stress regimes and
//! hierarchy stress scenarios of the related-work experiments: instead of
//! asserting absolute numbers, every run is its own reference — two
//! configurations that must agree either do, or the harness ships a
//! minimal counterexample.
//!
//! Everything is deterministic: the same master seed yields the same
//! campaigns, the same verdicts and the same shrunken repro, byte for
//! byte. A test-only injection hook ([`differential::Axis`] passed as
//! `inject`) forces a divergence so the catch→shrink→replay pipeline is
//! itself under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod fingerprint;
pub mod repro;
pub mod runner;
pub mod shrink;
pub mod space;

pub use differential::{run_axes, Axis, AxisReport, ChaosFailure};
pub use repro::ReproArtifact;
pub use runner::{replay, run_sweep, SweepConfig, SweepOutcome};
pub use space::ChaosCampaign;
