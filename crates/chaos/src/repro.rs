//! Self-contained repro artifacts: a minimized failing campaign as flat
//! JSON, plus the exact CLI to replay it.
//!
//! The workspace is dependency-free, so the artifact format is a flat
//! JSON object written and parsed by hand: integer fields as plain
//! numbers, `u64` seeds and fingerprints as quoted hex strings (they can
//! exceed the 2^53 range a JSON number round-trips exactly), floats in
//! Rust's shortest-round-trip formatting. `from_json` rebuilds the exact
//! campaign `to_json` described, which is what makes a `chaos-repro.json`
//! a complete bug report: anyone can replay it with one command.

use crate::differential::{Axis, ChaosFailure};
use crate::space::ChaosCampaign;

/// A minimized failing campaign, ready to serialize and replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproArtifact {
    /// The (shrunken) campaign that still fails.
    pub campaign: ChaosCampaign,
    /// The failing axis.
    pub axis: Axis,
    /// The variant that broke away (or whose trace was unlawful).
    pub variant: String,
    /// Reference fingerprint (0 for oracle violations).
    pub expected: u64,
    /// Diverging fingerprint (0 for oracle violations).
    pub actual: u64,
    /// Human-readable failure description.
    pub message: String,
    /// Whether the divergence was forced by the test-only injection hook
    /// (replay must re-apply it to reproduce).
    pub injected: bool,
    /// Predicate evaluations the shrinker spent.
    pub shrink_attempts: u64,
}

impl ReproArtifact {
    /// Builds an artifact from a failure observed on `campaign`.
    #[must_use]
    pub fn new(
        campaign: ChaosCampaign,
        failure: &ChaosFailure,
        injected: bool,
        shrink_attempts: u64,
    ) -> Self {
        let message = failure.to_string();
        match failure {
            ChaosFailure::Divergence {
                axis,
                variant,
                expected,
                actual,
            } => ReproArtifact {
                campaign,
                axis: *axis,
                variant: (*variant).to_owned(),
                expected: *expected,
                actual: *actual,
                message,
                injected,
                shrink_attempts,
            },
            ChaosFailure::Oracle { variant, .. } => ReproArtifact {
                campaign,
                // Oracle violations are not tied to one axis; attribute
                // them to the axis order's first for a stable field.
                axis: Axis::Executors,
                variant: (*variant).to_owned(),
                expected: 0,
                actual: 0,
                message,
                injected,
                shrink_attempts,
            },
        }
    }

    /// The exact command line that replays this artifact.
    #[must_use]
    pub fn replay_command(&self, artifact_path: &str) -> String {
        format!(
            "cargo run --release -p gridsched-bench --bin chaos_run -- --replay {artifact_path}"
        )
    }

    /// Serializes the artifact as flat JSON. `artifact_path` is embedded
    /// in the `replay` field so the file documents its own usage.
    #[must_use]
    pub fn to_json(&self, artifact_path: &str) -> String {
        let c = &self.campaign;
        let mut out = String::from("{\n");
        let mut field = |key: &str, value: String| {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("chaos_repro_version", "1".to_owned());
        field("axis", format!("\"{}\"", self.axis.name()));
        field("variant", format!("\"{}\"", self.variant));
        field("expected_fingerprint", format!("\"{:#x}\"", self.expected));
        field("actual_fingerprint", format!("\"{:#x}\"", self.actual));
        field(
            "message",
            format!(
                "\"{}\"",
                self.message.replace('\\', "\\\\").replace('"', "\\\"")
            ),
        );
        field("injected", u64::from(self.injected).to_string());
        field("shrink_attempts", self.shrink_attempts.to_string());
        field("seed", format!("\"{:#x}\"", c.seed));
        field("strategy", c.strategy.to_string());
        field("jobs", c.jobs.to_string());
        field("nodes_min", c.nodes_min.to_string());
        field("nodes_max", c.nodes_max.to_string());
        field("domains", c.domains.to_string());
        field("background_load", c.background_load.to_string());
        field("job_gap", c.job_gap.to_string());
        field("perturbations", c.perturbations.to_string());
        field("perturbation_len_max", c.perturbation_len_max.to_string());
        field("outages", c.outages.to_string());
        field("outage_len_max", c.outage_len_max.to_string());
        field("degradations", c.degradations.to_string());
        field("transfer_faults", c.transfer_faults.to_string());
        field("horizon", c.horizon.to_string());
        field("deadline_factor", c.deadline_factor.to_string());
        field("layers_max", c.layers_max.to_string());
        field("width_max", c.width_max.to_string());
        field("task_jitter", c.task_jitter.to_string());
        field("urgency_slack", c.urgency_slack.to_string());
        out.push_str(&format!(
            "  \"replay\": \"{}\"\n}}\n",
            self.replay_command(artifact_path)
        ));
        out
    }

    /// Parses an artifact back from [`ReproArtifact::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(json: &str) -> Result<ReproArtifact, String> {
        let axis_name = string_field(json, "axis")?;
        let axis = Axis::parse(&axis_name).ok_or_else(|| format!("unknown axis {axis_name:?}"))?;
        Ok(ReproArtifact {
            campaign: ChaosCampaign {
                seed: hex_field(json, "seed")?,
                strategy: u64_field(json, "strategy")?,
                jobs: u64_field(json, "jobs")?,
                nodes_min: u64_field(json, "nodes_min")?,
                nodes_max: u64_field(json, "nodes_max")?,
                domains: u64_field(json, "domains")?,
                background_load: f64_field(json, "background_load")?,
                job_gap: u64_field(json, "job_gap")?,
                perturbations: u64_field(json, "perturbations")?,
                perturbation_len_max: u64_field(json, "perturbation_len_max")?,
                outages: u64_field(json, "outages")?,
                outage_len_max: u64_field(json, "outage_len_max")?,
                degradations: u64_field(json, "degradations")?,
                transfer_faults: u64_field(json, "transfer_faults")?,
                horizon: u64_field(json, "horizon")?,
                deadline_factor: f64_field(json, "deadline_factor")?,
                layers_max: u64_field(json, "layers_max")?,
                width_max: u64_field(json, "width_max")?,
                task_jitter: f64_field(json, "task_jitter")?,
                urgency_slack: f64_field(json, "urgency_slack")?,
            },
            axis,
            variant: string_field(json, "variant")?,
            expected: hex_field(json, "expected_fingerprint")?,
            actual: hex_field(json, "actual_fingerprint")?,
            message: string_field(json, "message")?,
            injected: u64_field(json, "injected")? != 0,
            shrink_attempts: u64_field(json, "shrink_attempts")?,
        })
    }
}

/// The raw token following `"key":`, trimmed, up to the next `,` or `}`
/// (strings keep their quotes; parsed separately).
fn raw_field<'a>(json: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\"");
    let idx = json
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = json[idx + pat.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("field {key:?} has no value"))?
        .trim_start();
    if rest.starts_with('"') {
        // A string value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, ch) in rest.char_indices().skip(1) {
            match ch {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => return Ok(&rest[..=i]),
                _ => escaped = false,
            }
        }
        Err(format!("unterminated string for field {key:?}"))
    } else {
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        Ok(rest[..end].trim())
    }
}

fn u64_field(json: &str, key: &str) -> Result<u64, String> {
    raw_field(json, key)?
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn f64_field(json: &str, key: &str) -> Result<f64, String> {
    raw_field(json, key)?
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn string_field(json: &str, key: &str) -> Result<String, String> {
    let raw = raw_field(json, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string"))?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn hex_field(json: &str, key: &str) -> Result<u64, String> {
    let value = string_field(json, key)?;
    let digits = value
        .strip_prefix("0x")
        .ok_or_else(|| format!("field {key:?} is not hex: {value:?}"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("field {key:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> ReproArtifact {
        ReproArtifact {
            campaign: ChaosCampaign {
                seed: 0xdead_beef_dead_beef,
                strategy: 2,
                jobs: 3,
                nodes_min: 6,
                nodes_max: 6,
                domains: 2,
                background_load: 0.125,
                job_gap: 0,
                perturbations: 4,
                perturbation_len_max: 5,
                outages: 1,
                outage_len_max: 8,
                degradations: 0,
                transfer_faults: 0,
                horizon: 300,
                deadline_factor: 4.5,
                layers_max: 4,
                width_max: 2,
                task_jitter: 0.07,
                urgency_slack: 0.0,
            },
            axis: Axis::Collapse,
            variant: "collapsed".to_owned(),
            expected: u64::MAX,
            actual: 0x1234,
            message: "axis collapse: variant \"collapsed\" diverged".to_owned(),
            injected: true,
            shrink_attempts: 17,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let a = artifact();
        let json = a.to_json("chaos-repro.json");
        let parsed = ReproArtifact::from_json(&json).expect("parses");
        assert_eq!(parsed, a);
        // u64::MAX exceeds 2^53: the hex-string encoding is what keeps
        // the fingerprint exact through the round trip.
        assert_eq!(parsed.expected, u64::MAX);
        assert!(json.contains("\"replay\""));
        assert!(json.contains("--replay chaos-repro.json"));
    }

    #[test]
    fn parse_reports_missing_fields() {
        let err = ReproArtifact::from_json("{}").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
        let err = ReproArtifact::from_json("{\"axis\": \"bogus\"}").unwrap_err();
        assert!(err.contains("unknown axis"), "{err}");
    }
}
