//! The differential axes: configurations of one campaign that must agree.
//!
//! Six axes, each a bit-identity contract the test suite pins with
//! hand-picked seeds and this module fuzzes with generated ones:
//!
//! * [`Axis::Executors`] — `Sequential`, `Scoped` and the pooled `Auto`
//!   scenario-sweep executors plan identically.
//! * [`Axis::Collapse`] — collapsing the domain-sharded flow layer to a
//!   single job manager (`single_manager`) changes nothing observable.
//! * [`Axis::Telemetry`] — attaching a live telemetry recorder is
//!   strictly observational.
//! * [`Axis::ProbeIndex`] — forcing the snapshot gap index onto every
//!   calendar (dropping the engagement floor to zero, so cold
//!   `earliest_fit` probes that would stay on the linear merged walk go
//!   through the index instead) changes nothing observable: the two
//!   probe paths are bit-identical by the DESIGN.md §9 contract.
//! * [`Axis::IndexCache`] — the cross-snapshot calendar cache is a pure
//!   reuse layer: forcing every capture through it (cache on with the
//!   engagement floor at zero, so cached gap indexes actually serve
//!   probes) and switching it off entirely both replay the campaign
//!   bit-identically.
//! * [`Axis::BatchOnline`] — a batch campaign over a degenerate zero-gap
//!   release stream matches an online serving run over the same arrivals,
//!   whenever admission control stayed out of the way (see
//!   [`online_comparable`]).
//!
//! Every variant run is additionally audited by the trace oracle; an
//! oracle violation fails the campaign even if all fingerprints agree.

use gridsched::core::strategy::SweepExecutorKind;
use gridsched::flow::online::run_online;
use gridsched::flow::oracle;
use gridsched::flow::simulation::{run_campaign, run_campaign_instrumented, CampaignConfig};
use gridsched::flow::VoReport;
use gridsched::metrics::telemetry::Telemetry;
use gridsched::model::availability::ProbeIndexGuard;
use gridsched::model::index_cache::set_index_cache_enabled;

use crate::fingerprint::{normalized_fingerprint, online_comparable, report_fingerprint};
use crate::space::ChaosCampaign;

/// The mask the test-only injection hook XORs into a variant's
/// fingerprint to force a divergence.
pub const INJECTION_MASK: u64 = 0xd1ff_d1ff_d1ff_d1ff;

/// One differential axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Sequential vs scoped vs pooled sweep executors.
    Executors,
    /// Sharded vs `single_manager` flow layer.
    Collapse,
    /// Telemetry-off vs telemetry-on.
    Telemetry,
    /// Gap-indexed vs linear cold `earliest_fit` probes.
    ProbeIndex,
    /// Calendar-cache-forced vs calendar-cache-disabled captures.
    IndexCache,
    /// Batch vs online on degenerate zero-gap arrivals.
    BatchOnline,
}

impl Axis {
    /// Every axis, in execution order.
    pub const ALL: [Axis; 6] = [
        Axis::Executors,
        Axis::Collapse,
        Axis::Telemetry,
        Axis::ProbeIndex,
        Axis::IndexCache,
        Axis::BatchOnline,
    ];

    /// Stable CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Axis::Executors => "executors",
            Axis::Collapse => "collapse",
            Axis::Telemetry => "telemetry",
            Axis::ProbeIndex => "probe-index",
            Axis::IndexCache => "index-cache",
            Axis::BatchOnline => "batch-online",
        }
    }

    /// Parses a [`Axis::name`] back.
    #[must_use]
    pub fn parse(name: &str) -> Option<Axis> {
        Axis::ALL.iter().copied().find(|a| a.name() == name)
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a campaign failed the differential check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFailure {
    /// Two variants that must agree produced different fingerprints.
    Divergence {
        /// The axis that disagreed.
        axis: Axis,
        /// The variant whose fingerprint broke away from the reference.
        variant: &'static str,
        /// The reference fingerprint.
        expected: u64,
        /// The diverging fingerprint.
        actual: u64,
    },
    /// A variant's trace failed the invariant oracle.
    Oracle {
        /// The variant whose trace was unlawful.
        variant: &'static str,
        /// The oracle's violation message.
        message: String,
    },
}

impl ChaosFailure {
    /// Whether `other` is the *same* failure for shrinking purposes: a
    /// divergence on the same axis, or any oracle violation. Shrinking
    /// only accepts reductions that keep reproducing the same kind of
    /// failure, so a minimized campaign demonstrates the bug it was
    /// reported for — not whatever else small campaigns can trip.
    #[must_use]
    pub fn same_kind(&self, other: &ChaosFailure) -> bool {
        match (self, other) {
            (
                ChaosFailure::Divergence { axis: a, .. },
                ChaosFailure::Divergence { axis: b, .. },
            ) => a == b,
            (ChaosFailure::Oracle { .. }, ChaosFailure::Oracle { .. }) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::Divergence {
                axis,
                variant,
                expected,
                actual,
            } => write!(
                f,
                "axis {axis}: variant {variant} diverged \
                 (expected {expected:#018x}, got {actual:#018x})"
            ),
            ChaosFailure::Oracle { variant, message } => {
                write!(f, "variant {variant} failed the trace oracle: {message}")
            }
        }
    }
}

/// The verdict of one campaign across every axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisReport {
    /// The first failure encountered, if any (axes run in
    /// [`Axis::ALL`] order and stop at the first).
    pub failure: Option<ChaosFailure>,
    /// Whether the batch-vs-online axis actually compared (admission
    /// control admitted every arrival on first probe). `false` when the
    /// axis was skipped as incomparable or a failure stopped the run
    /// earlier.
    pub online_compared: bool,
}

/// Runs one variant and audits its trace.
fn audited(config: &CampaignConfig, variant: &'static str) -> Result<VoReport, ChaosFailure> {
    let report = run_campaign(config);
    audit(&report, variant)?;
    Ok(report)
}

fn audit(report: &VoReport, variant: &'static str) -> Result<(), ChaosFailure> {
    match oracle::audit(report) {
        Ok(()) => Ok(()),
        Err(violation) => Err(ChaosFailure::Oracle {
            variant,
            message: violation.to_string(),
        }),
    }
}

/// Executes `campaign` across every differential axis, asserting
/// trace-fingerprint equality and oracle cleanliness on every run.
///
/// `inject` is the test-only divergence hook: the named axis's last
/// variant gets its computed fingerprint XORed with [`INJECTION_MASK`]
/// before comparison, forcing a divergence the catch→shrink→replay
/// pipeline must handle. For [`Axis::BatchOnline`] the injection also
/// bypasses the comparability gate, so the forced failure cannot be
/// shrunk away by making admission control kick in.
#[must_use]
pub fn run_axes(campaign: &ChaosCampaign, inject: Option<Axis>) -> AxisReport {
    let failed = |failure| AxisReport {
        failure: Some(failure),
        online_compared: false,
    };
    let base_config = campaign.base_config();
    let base = match audited(&base_config, "pooled") {
        Ok(report) => report_fingerprint(&report),
        Err(failure) => return failed(failure),
    };

    // Axis 1: sweep executors.
    for (variant, kind) in [
        ("sequential", SweepExecutorKind::Sequential),
        ("scoped", SweepExecutorKind::Scoped),
    ] {
        let config = CampaignConfig {
            executor: kind,
            ..base_config.clone()
        };
        let mut fp = match audited(&config, variant) {
            Ok(report) => report_fingerprint(&report),
            Err(failure) => return failed(failure),
        };
        if inject == Some(Axis::Executors) && variant == "scoped" {
            fp ^= INJECTION_MASK;
        }
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::Executors,
                variant,
                expected: base,
                actual: fp,
            });
        }
    }

    // Axis 2: flow-layer collapse.
    {
        let config = CampaignConfig {
            single_manager: true,
            ..base_config.clone()
        };
        let mut fp = match audited(&config, "collapsed") {
            Ok(report) => report_fingerprint(&report),
            Err(failure) => return failed(failure),
        };
        if inject == Some(Axis::Collapse) {
            fp ^= INJECTION_MASK;
        }
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::Collapse,
                variant: "collapsed",
                expected: base,
                actual: fp,
            });
        }
    }

    // Axis 3: telemetry bit-identity.
    {
        let telemetry = Telemetry::new();
        let report = run_campaign_instrumented(&base_config, &telemetry);
        if let Err(failure) = audit(&report, "instrumented") {
            return failed(failure);
        }
        let mut fp = report_fingerprint(&report);
        if inject == Some(Axis::Telemetry) {
            fp ^= INJECTION_MASK;
        }
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::Telemetry,
                variant: "instrumented",
                expected: base,
                actual: fp,
            });
        }
    }

    // Axis 4: gap-indexed vs linear cold probes. Campaign calendars sit
    // below the default engagement floor, so the base run probes
    // linearly; this variant replays the whole campaign with the floor
    // dropped to zero, forcing every cold probe through the gap index.
    // The guard restores the floor before any verdict so later axes (and
    // other campaigns in the same process, which tolerate either path by
    // the same contract) see the default again.
    {
        let result = {
            let _knobs = ProbeIndexGuard::with_floor(0);
            audited(&base_config, "probe-index-forced")
        };
        let mut fp = match result {
            Ok(report) => report_fingerprint(&report),
            Err(failure) => return failed(failure),
        };
        if inject == Some(Axis::ProbeIndex) {
            fp ^= INJECTION_MASK;
        }
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::ProbeIndex,
                variant: "probe-index-forced",
                expected: base,
                actual: fp,
            });
        }
    }

    // Axis 5: the cross-snapshot calendar cache. Replay once with the
    // cache forced on and the engagement floor at zero (every capture
    // consults the cache and cached gap indexes actually answer probes),
    // then once with the cache disabled outright; both must match the
    // base fingerprint bit for bit.
    {
        let forced = {
            let _knobs = ProbeIndexGuard::with_floor(0);
            set_index_cache_enabled(true);
            audited(&base_config, "index-cache-forced")
        };
        let fp = match forced {
            Ok(report) => report_fingerprint(&report),
            Err(failure) => return failed(failure),
        };
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::IndexCache,
                variant: "index-cache-forced",
                expected: base,
                actual: fp,
            });
        }
        let disabled = {
            let _knobs = ProbeIndexGuard::capture();
            set_index_cache_enabled(false);
            audited(&base_config, "index-cache-disabled")
        };
        let mut fp = match disabled {
            Ok(report) => report_fingerprint(&report),
            Err(failure) => return failed(failure),
        };
        if inject == Some(Axis::IndexCache) {
            fp ^= INJECTION_MASK;
        }
        if fp != base {
            return failed(ChaosFailure::Divergence {
                axis: Axis::IndexCache,
                variant: "index-cache-disabled",
                expected: base,
                actual: fp,
            });
        }
    }

    // Axis 6: batch vs online on degenerate zero-gap arrivals.
    let batch = match audited(&campaign.zero_gap_config(), "batch-zero-gap") {
        Ok(report) => report,
        Err(failure) => return failed(failure),
    };
    let online = run_online(&campaign.online_config());
    if let Err(failure) = audit(&online.report, "online-zero-gap") {
        return failed(failure);
    }
    let comparable = online_comparable(&online);
    if comparable || inject == Some(Axis::BatchOnline) {
        let expected = normalized_fingerprint(&batch);
        let mut actual = normalized_fingerprint(&online.report);
        if inject == Some(Axis::BatchOnline) {
            actual ^= INJECTION_MASK;
        }
        if actual != expected {
            return AxisReport {
                failure: Some(ChaosFailure::Divergence {
                    axis: Axis::BatchOnline,
                    variant: "online-zero-gap",
                    expected,
                    actual,
                }),
                online_compared: comparable,
            };
        }
    }
    AxisReport {
        failure: None,
        online_compared: comparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_round_trip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.name()), Some(axis));
        }
        assert_eq!(Axis::parse("bogus"), None);
    }

    #[test]
    fn same_kind_matches_axis_not_payload() {
        let a = ChaosFailure::Divergence {
            axis: Axis::Executors,
            variant: "scoped",
            expected: 1,
            actual: 2,
        };
        let b = ChaosFailure::Divergence {
            axis: Axis::Executors,
            variant: "sequential",
            expected: 3,
            actual: 4,
        };
        let c = ChaosFailure::Divergence {
            axis: Axis::Collapse,
            variant: "collapsed",
            expected: 1,
            actual: 2,
        };
        let o = ChaosFailure::Oracle {
            variant: "pooled",
            message: "m".into(),
        };
        assert!(a.same_kind(&b));
        assert!(!a.same_kind(&c));
        assert!(!a.same_kind(&o));
        assert!(o.same_kind(&o.clone()));
    }
}
